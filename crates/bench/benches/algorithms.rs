//! End-to-end algorithm benchmarks on small fixed workloads — one group
//! per paper experiment family, wall-clock companions to the simulated
//! numbers the table binaries report.

use criterion::{criterion_group, criterion_main, Criterion};
use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::gen_matrix::GenMatrix;
use ij_core::hybrid::{AllSeqMatrix, Pasm};
use ij_core::rccis::Rccis;
use ij_core::{Algorithm, JoinInput, OutputMode};
use ij_datagen::SynthConfig;
use ij_interval::AllenPredicate::{Before, Overlaps};
use ij_interval::{Interval, Relation};
use ij_mapreduce::{ClusterConfig, Engine};
use ij_query::{Condition, JoinQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine() -> Engine {
    Engine::new(ClusterConfig::with_slots(16))
}

fn bench_colocation(c: &mut Criterion) {
    // Table 1 shape at micro scale: Q1 = R1 ov R2 ov R3.
    let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let rels = (0..3)
        .map(|r| SynthConfig::table1(5_000, 100 + r).generate(format!("R{}", r + 1)))
        .collect();
    let input = JoinInput::bind_owned(&q, rels).unwrap();
    let engine = engine();

    let mut group = c.benchmark_group("table1_q1_5k");
    group.sample_size(20);
    group.bench_function("rccis", |b| {
        let alg = Rccis {
            partitions: 16,
            mode: OutputMode::Count,
            mark_options: Default::default(),
            partition_strategy: Default::default(),
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.bench_function("all_replicate", |b| {
        let alg = AllReplicate {
            partitions: 16,
            mode: OutputMode::Count,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.bench_function("cascade", |b| {
        let alg = TwoWayCascade {
            partitions: 16,
            per_dim_2d: 4,
            mode: OutputMode::Count,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.finish();
}

fn bench_sequence(c: &mut Criterion) {
    // Figure 5 shape at micro scale: Q2 = R1 before R2 before R3.
    let q = JoinQuery::chain(&[Before, Before]).unwrap();
    let rels = (0..3)
        .map(|r| SynthConfig::fig5a(300, 200 + r).generate(format!("R{}", r + 1)))
        .collect();
    let input = JoinInput::bind_owned(&q, rels).unwrap();
    let engine = engine();

    let mut group = c.benchmark_group("fig5_q2_300");
    group.sample_size(15);
    group.bench_function("all_matrix_o6", |b| {
        let alg = AllMatrix {
            per_dim: 6,
            mode: OutputMode::Count,
            prune_inconsistent: true,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.bench_function("all_replicate_64", |b| {
        let alg = AllReplicate {
            partitions: 64,
            mode: OutputMode::Count,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    // Table 3 shape at micro scale: Q4 = R1 before R2 and R1 ov R3.
    let q = JoinQuery::new(
        3,
        vec![
            Condition::whole(0, Before, 1),
            Condition::whole(0, Overlaps, 2),
        ],
    )
    .unwrap();
    let mk = |n: usize, seed: u64| SynthConfig {
        n,
        t_min: 0,
        t_max: 200_000,
        i_min: 1,
        i_max: 600,
        seed,
        ..SynthConfig::table1(n, seed)
    };
    let input = JoinInput::bind_owned(
        &q,
        vec![
            mk(8_000, 1).generate("R1"),
            mk(300, 2).generate("R2"),
            mk(500, 3).generate("R3"),
        ],
    )
    .unwrap();
    let engine = engine();

    let mut group = c.benchmark_group("table3_q4");
    group.sample_size(15);
    group.bench_function("all_seq_matrix", |b| {
        let alg = AllSeqMatrix {
            per_dim: 6,
            mode: OutputMode::Count,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.bench_function("pasm", |b| {
        let alg = Pasm {
            per_dim: 6,
            mode: OutputMode::Count,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.finish();
}

fn bench_gen_matrix(c: &mut Criterion) {
    // Table 4 shape at micro scale: Q5 with two equi-join attributes.
    use ij_query::query::RelationMeta;
    use ij_query::AttrRef;
    let q = JoinQuery::with_relations(
        vec![
            RelationMeta {
                name: "R1".into(),
                attr_names: vec!["I".into(), "A".into()],
            },
            RelationMeta {
                name: "R2".into(),
                attr_names: vec!["I".into(), "B".into()],
            },
            RelationMeta {
                name: "R3".into(),
                attr_names: vec!["I".into(), "A".into(), "B".into()],
            },
        ],
        vec![
            Condition::new(AttrRef::new(0, 0), Before, AttrRef::new(1, 0)),
            Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(2, 0)),
            Condition::new(
                AttrRef::new(0, 1),
                ij_interval::AllenPredicate::Equals,
                AttrRef::new(2, 1),
            ),
            Condition::new(
                AttrRef::new(1, 1),
                ij_interval::AllenPredicate::Equals,
                AttrRef::new(2, 2),
            ),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let iv = |rng: &mut StdRng| {
        let s = rng.gen_range(0..99_000i64);
        Interval::new(s, s + rng.gen_range(1..1000)).unwrap()
    };
    let r1 = Relation::from_rows(
        "R1",
        (0..2000).map(|_| vec![iv(&mut rng), Interval::point(rng.gen_range(0..100))]),
    );
    let r2 = Relation::from_rows(
        "R2",
        (0..200).map(|_| vec![iv(&mut rng), Interval::point(rng.gen_range(0..100))]),
    );
    let r3 = Relation::from_rows(
        "R3",
        (0..2000).map(|_| {
            vec![
                iv(&mut rng),
                Interval::point(rng.gen_range(0..100)),
                Interval::point(rng.gen_range(0..100)),
            ]
        }),
    );
    let input = JoinInput::bind_owned(&q, vec![r1, r2, r3]).unwrap();
    let engine = engine();

    let mut group = c.benchmark_group("table4_q5");
    group.sample_size(15);
    group.bench_function("gen_matrix_o5", |b| {
        let alg = GenMatrix {
            per_dim: 5,
            mode: OutputMode::Count,
        };
        b.iter(|| alg.run(&q, &input, &engine).unwrap().count)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_colocation,
    bench_sequence,
    bench_hybrid,
    bench_gen_matrix
);
criterion_main!(benches);
