//! Benchmarks of the reducer-side backtracking join executor, including
//! the windowed-vs-scan comparison that motivates the start-ordered binding
//! order (see `ij_core::executor`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ij_core::executor::{join_single_attr, Candidates};
use ij_interval::AllenPredicate::{Before, Contains, Overlaps};
use ij_interval::Interval;
use ij_query::JoinQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn candidates(m: usize, n: usize, span: i64, max_len: i64, seed: u64) -> Candidates {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Candidates::new(m);
    for r in 0..m {
        for t in 0..n as u32 {
            let s = rng.gen_range(0..span);
            c.push(
                r,
                Interval::new(s, s + rng.gen_range(0..=max_len)).unwrap(),
                t,
            );
        }
    }
    c.finish();
    c
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");

    for &n in &[500usize, 2000] {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let cands = candidates(3, n, 50_000, 100, 7);
        group.bench_with_input(BenchmarkId::new("overlap_chain_3way", n), &n, |b, _| {
            b.iter(|| {
                let mut outs = 0u64;
                join_single_attr(&q, &cands, |_| true, |_| outs += 1);
                outs
            })
        });
    }

    // Sequence joins have inherently unbounded windows; output-sized work.
    let q = JoinQuery::chain(&[Before]).unwrap();
    let cands = candidates(2, 400, 5_000, 50, 8);
    group.bench_function("before_2way_400", |b| {
        b.iter(|| {
            let mut outs = 0u64;
            join_single_attr(&q, &cands, |_| true, |_| outs += 1);
            outs
        })
    });

    // Containment chains exercise the both-sided windows.
    let q = JoinQuery::chain(&[Contains, Contains]).unwrap();
    let cands = candidates(3, 1000, 20_000, 400, 9);
    group.bench_function("contains_chain_1k", |b| {
        b.iter(|| {
            let mut outs = 0u64;
            join_single_attr(&q, &cands, |_| true, |_| outs += 1);
            outs
        })
    });

    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
