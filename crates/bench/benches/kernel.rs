//! Join-kernel micro-benchmarks: the dispatching kernel (plane sweep /
//! sort-merge) against the windowed-backtracking fallback and two
//! single-node oracles, on the bucket shapes reducers actually see.
//!
//! `overlap_heavy` is the case the sweep kernel targets: long outer
//! intervals whose start windows cover a large fraction of the inner list
//! while only a thin end-window slice actually matches — exactly where the
//! backtracking path degrades to wide scans with per-candidate `holds`
//! re-checks. `sequence_heavy` exercises the sort-merge path on `before`
//! chains. The dispatching kernel must beat `windowed_backtracking` by ≥2×
//! on `overlap_heavy` (checked in CI via the BENCH_JSON summary).
//!
//! `event_sweep` pits the merged-event-list sweep against the dual-window
//! scan on an overlap-heavy arity-3 colocation *clique* — the multi-way
//! shape the event kernel targets, where per-level binary searches and
//! wide windows dominate the dual-window path while the gapless active
//! arrays stay small. The event sweep must beat `dual_window_sweep` by
//! ≥2× here (same BENCH_JSON trend gate).
//!
//! `schedule_bench` drives the whole engine (map → shuffle → reduce) on a
//! skewed clique bucket mix — one dominant hot bucket plus a light tail —
//! under each intra-reduce grant policy. The skew-driven scheduler should
//! beat the uniform split on the reduce makespan at 8 worker threads
//! (target ≥1.3×, checked in CI via the BENCH_JSON trend; not asserted at
//! runtime since single-core hosts cannot show it). Outputs are verified
//! byte-identical across policies before timing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ij_core::executor::Candidates;
use ij_core::kernel::{self, KernelConfig};
use ij_interval::{Interval, TupleId};
use ij_mapreduce::{
    ClusterConfig, CostModel, Emitter, Engine, ReduceCtx, SchedConfig, SchedPolicy, ValueStream,
};
use ij_query::JoinQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn iv(s: i64, e: i64) -> Interval {
    Interval::new(s, e).unwrap()
}

/// An overlap-heavy bucket: `n` long outer intervals (relation 0) and `n`
/// short inner intervals (relation 1). Most inners start inside an outer
/// (huge start windows) but end inside it too, failing `overlaps`' `e2 >
/// e1` end range — the join is highly selective while the windowed scan
/// stays quadratic-ish.
fn overlap_bucket(n: usize, seed: u64) -> Candidates {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = 10 * n as i64;
    let mut c = Candidates::new(2);
    for t in 0..n {
        let s = rng.gen_range(0..span);
        c.push(
            0,
            iv(s, s + rng.gen_range(span / 4..span / 2)),
            t as TupleId,
        );
        let s2 = rng.gen_range(0..span);
        c.push(1, iv(s2, s2 + rng.gen_range(0..30)), t as TupleId);
    }
    c.finish();
    c
}

/// A sequence-heavy bucket: two relations of short intervals spread over a
/// wide span, joined by `before` (half-open windows).
fn sequence_bucket(n: usize, seed: u64) -> Candidates {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = 20 * n as i64;
    let mut c = Candidates::new(2);
    for t in 0..n {
        for r in 0..2 {
            let s = rng.gen_range(0..span);
            c.push(r, iv(s, s + rng.gen_range(0..40)), t as TupleId);
        }
    }
    c.finish();
    c
}

/// Nested-loop oracle: every pair, `holds` per pair.
fn nested_loop_count(q: &JoinQuery, c: &Candidates) -> u64 {
    let pred = q.conditions()[0].pred;
    let mut count = 0u64;
    for &(a, _) in c.list(0) {
        for &(b, _) in c.list(1) {
            if pred.holds(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Classic Brinkhoff-style plane-sweep oracle over *intersecting* pairs
/// (valid for colocation predicates, whose matches always intersect as
/// closed intervals), filtered by the predicate.
fn plane_sweep_oracle_count(q: &JoinQuery, c: &Candidates) -> u64 {
    let pred = q.conditions()[0].pred;
    let (l0, l1) = (c.list(0), c.list(1));
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    let scan = |a: Interval, list: &[(Interval, TupleId)], from: usize, left: bool| {
        let mut n = 0u64;
        for &(b, _) in &list[from..] {
            if b.start() > a.end() {
                break;
            }
            let ok = if left {
                pred.holds(a, b)
            } else {
                pred.holds(b, a)
            };
            if ok {
                n += 1;
            }
        }
        n
    };
    while i < l0.len() && j < l1.len() {
        if l0[i].0.start() <= l1[j].0.start() {
            count += scan(l0[i].0, l1, j, true);
            i += 1;
        } else {
            count += scan(l1[j].0, l0, i, false);
            j += 1;
        }
    }
    count
}

fn bench_overlap_heavy(c: &mut Criterion) {
    let n = 3000;
    let q = JoinQuery::chain(&[ij_interval::AllenPredicate::Overlaps]).unwrap();
    let cands = overlap_bucket(n, 7);
    let expect = nested_loop_count(&q, &cands);

    let count_with = |run: &dyn Fn(&mut u64)| {
        let mut count = 0u64;
        run(&mut count);
        assert_eq!(count, expect);
        count
    };

    let mut group = c.benchmark_group("kernel_overlap_heavy");
    group.throughput(Throughput::Elements((2 * n) as u64));
    group.bench_function("nested_loop_oracle", |b| {
        b.iter(|| criterion::black_box(nested_loop_count(&q, &cands)))
    });
    group.bench_function("plane_sweep_oracle", |b| {
        b.iter(|| criterion::black_box(plane_sweep_oracle_count(&q, &cands)))
    });
    group.bench_function("windowed_backtracking", |b| {
        b.iter(|| {
            count_with(&|count| {
                kernel::backtrack_join(&q, &cands, |_| true, |_| *count += 1);
            })
        })
    });
    group.bench_function("dispatching_kernel", |b| {
        b.iter(|| {
            count_with(&|count| {
                kernel::execute_serial(&q, &cands, |_| true, |_| *count += 1);
            })
        })
    });
    group.bench_function("dispatching_kernel_parallel4", |b| {
        let cfg = KernelConfig {
            threads: 4,
            parallel_threshold: 0,
        };
        b.iter(|| {
            count_with(&|count| {
                kernel::execute(&q, &cands, &cfg, |_| true, |_| *count += 1);
            })
        })
    });
    group.finish();
}

fn bench_sequence_heavy(c: &mut Criterion) {
    let n = 1200;
    let q = JoinQuery::chain(&[ij_interval::AllenPredicate::Before]).unwrap();
    let cands = sequence_bucket(n, 11);
    let expect = nested_loop_count(&q, &cands);

    let mut group = c.benchmark_group("kernel_sequence_heavy");
    group.throughput(Throughput::Elements((2 * n) as u64));
    group.bench_function("nested_loop_oracle", |b| {
        b.iter(|| criterion::black_box(nested_loop_count(&q, &cands)))
    });
    group.bench_function("windowed_backtracking", |b| {
        b.iter(|| {
            let mut count = 0u64;
            kernel::backtrack_join(&q, &cands, |_| true, |_| count += 1);
            assert_eq!(count, expect);
            criterion::black_box(count)
        })
    });
    group.bench_function("dispatching_kernel", |b| {
        b.iter(|| {
            let mut count = 0u64;
            kernel::execute_serial(&q, &cands, |_| true, |_| count += 1);
            assert_eq!(count, expect);
            criterion::black_box(count)
        })
    });
    group.finish();
}

/// A satisfiable arity-3 colocation clique: r0 ov r1, r1 ⊇ r2, r0 ov r2.
/// Every pair is directly conditioned, so the dispatcher routes the
/// bucket to the event sweep.
fn clique3() -> JoinQuery {
    use ij_interval::AllenPredicate::{Contains, Overlaps};
    JoinQuery::new(
        3,
        vec![
            ij_query::Condition::whole(0, Overlaps, 1),
            ij_query::Condition::whole(1, Contains, 2),
            ij_query::Condition::whole(0, Overlaps, 2),
        ],
    )
    .unwrap()
}

/// An overlap-heavy arity-3 bucket: short-to-medium intervals over a
/// wide span, nested lengths (r0 longest, r2 shortest) so the clique
/// actually fires, with skewed cardinalities (r0 largest) as reducer
/// buckets typically have. Instantaneous concurrency — the gapless
/// active-array size — stays small while every dual-window binding level
/// still pays four `partition_point` searches per visited tuple; the
/// event sweep replaces all of that with linear scans of the tiny active
/// arrays, and its start-order pruning probes only at r2 starts (the
/// clique forces `s0 < s1 < s2`).
fn clique_bucket(counts: [usize; 3], span: i64, seed: u64) -> Candidates {
    let mut rng = StdRng::seed_from_u64(seed);
    let lens = [30..90, 15..60, 0..25];
    let mut c = Candidates::new(3);
    for (r, (n, len)) in counts.into_iter().zip(lens).enumerate() {
        for t in 0..n {
            let s = rng.gen_range(0..span);
            c.push(r, iv(s, s + rng.gen_range(len.clone())), t as TupleId);
        }
    }
    c.finish();
    c
}

/// Triple nested-loop oracle for the clique, with the (0,1) pair check
/// hoisted out of the innermost loop so the count stays tractable.
fn clique_nested_loop_count(q: &JoinQuery, c: &Candidates) -> u64 {
    let conds = q.conditions();
    let pair_conds: Vec<_> = conds
        .iter()
        .filter(|cd| cd.left.rel.idx() < 2 && cd.right.rel.idx() < 2)
        .collect();
    let rest: Vec<_> = conds
        .iter()
        .filter(|cd| cd.left.rel.idx() == 2 || cd.right.rel.idx() == 2)
        .collect();
    let mut count = 0u64;
    for &(a, _) in c.list(0) {
        for &(b, _) in c.list(1) {
            let asg = [a, b, a];
            if !pair_conds.iter().all(|cd| {
                cd.pred
                    .holds(asg[cd.left.rel.idx()], asg[cd.right.rel.idx()])
            }) {
                continue;
            }
            for &(d, _) in c.list(2) {
                let asg = [a, b, d];
                if rest.iter().all(|cd| {
                    cd.pred
                        .holds(asg[cd.left.rel.idx()], asg[cd.right.rel.idx()])
                }) {
                    count += 1;
                }
            }
        }
    }
    count
}

fn bench_event_sweep(c: &mut Criterion) {
    let n = 12000;
    let q = clique3();
    let cands = clique_bucket([6000, 4000, 2000], 8000, 13);
    let expect = clique_nested_loop_count(&q, &cands);
    assert!(expect > 0, "clique workload too sparse");

    let count_with = |run: &dyn Fn(&mut u64)| {
        let mut count = 0u64;
        run(&mut count);
        assert_eq!(count, expect);
        count
    };

    let mut group = c.benchmark_group("kernel_event_sweep");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("windowed_backtracking", |b| {
        b.iter(|| {
            count_with(&|count| {
                kernel::backtrack_join(&q, &cands, |_| true, |_| *count += 1);
            })
        })
    });
    group.bench_function("dual_window_sweep", |b| {
        b.iter(|| {
            count_with(&|count| {
                kernel::sweep_join(&q, &cands, |_| true, |_| *count += 1);
            })
        })
    });
    group.bench_function("event_sweep", |b| {
        b.iter(|| {
            count_with(&|count| {
                kernel::event_sweep_join(&q, &cands, |_| true, |_| *count += 1);
            })
        })
    });
    group.bench_function("event_sweep_parallel4", |b| {
        let cfg = KernelConfig {
            threads: 4,
            parallel_threshold: 0,
        };
        b.iter(|| {
            count_with(&|count| {
                kernel::execute(&q, &cands, &cfg, |_| true, |_| *count += 1);
            })
        })
    });
    group.finish();
}

/// One record of the scheduler workload: (reduce bucket, relation,
/// interval endpoints). Bucket 0 carries a `clique_bucket`-shaped heavy
/// mix; the tail buckets get the same shape scaled down ~30×, so the
/// reduce makespan is set by when bucket 0 starts and how many threads it
/// holds — exactly what the grant policy controls.
fn skewed_clique_records(light_buckets: u64, seed: u64) -> Vec<(u64, u32, (i64, i64))> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lens = [30i64..90, 15..60, 0..25];
    let mut recs = Vec::new();
    let mut emit_bucket = |rng: &mut StdRng, bucket: u64, counts: [usize; 3], span: i64| {
        for (r, n) in counts.into_iter().enumerate() {
            for _ in 0..n {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(lens[r].clone());
                recs.push((bucket, r as u32, (s, e)));
            }
        }
    };
    emit_bucket(&mut rng, 0, [1200, 800, 400], 4000);
    for b in 1..=light_buckets {
        emit_bucket(&mut rng, b, [40, 26, 14], 400);
    }
    recs
}

/// Runs the clique join over the skewed bucket mix through the engine
/// under `policy`, returning per-bucket match counts (key order).
fn run_scheduled(
    engine: &Engine,
    q: &JoinQuery,
    input: &[(u64, u32, (i64, i64))],
) -> Vec<(u64, u64)> {
    engine
        .run_job(
            "schedule-bench",
            input,
            |&(b, r, iv): &(u64, u32, (i64, i64)), e: &mut Emitter<(u32, (i64, i64))>| {
                e.emit(b, (r, iv));
            },
            |ctx: &mut ReduceCtx,
             vs: &mut ValueStream<(u32, (i64, i64))>,
             out: &mut Vec<(u64, u64)>| {
                let mut cands = Candidates::new(3);
                let mut next_id = [0 as TupleId; 3];
                for (r, (s, e)) in vs.by_ref() {
                    let r = r as usize;
                    cands.push(r, iv(s, e), next_id[r]);
                    next_id[r] += 1;
                }
                cands.finish();
                let mut count = 0u64;
                kernel::reduce_join(ctx, q, &cands, |_| true, |_| count += 1);
                out.push((ctx.key, count));
            },
        )
        .expect("schedule bench job runs")
        .outputs
}

fn sched_engine(policy: SchedPolicy) -> Engine {
    Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: 8,
        intra_reduce_threads: 8,
        // Well under the hot bucket's 2,400 pairs and above the light
        // buckets' 80, so exactly one bucket is classified heavy and the
        // kernel's intra-bucket parallelism engages on it.
        heavy_bucket_threshold: 1000,
        reduce_memory_budget: None,
        sched: SchedConfig::with_policy(policy),
        cost: CostModel::default(),
    })
}

fn bench_schedule(c: &mut Criterion) {
    let q = clique3();
    let input = skewed_clique_records(15, 17);
    let policies = [
        SchedPolicy::Uniform,
        SchedPolicy::SkewDriven,
        SchedPolicy::AllSerial,
    ];
    // The scheduler contract before any timing: every policy produces the
    // same bytes, and the mix really joins.
    let expect = run_scheduled(&sched_engine(SchedPolicy::AllSerial), &q, &input);
    assert!(expect.iter().any(|&(_, n)| n > 0), "clique mix too sparse");
    for policy in policies {
        assert_eq!(
            run_scheduled(&sched_engine(policy), &q, &input),
            expect,
            "policy {policy} changed output bytes"
        );
    }

    let mut group = c.benchmark_group("schedule_bench");
    group.throughput(Throughput::Elements(input.len() as u64));
    group.sample_size(10);
    for policy in policies {
        let engine = sched_engine(policy);
        group.bench_function(policy.name(), |b| {
            b.iter(|| criterion::black_box(run_scheduled(&engine, &q, &input)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_overlap_heavy,
    bench_sequence_heavy,
    bench_event_sweep,
    bench_schedule
);
criterion_main!(benches);
