//! Benchmarks of the RCCIS replication-marking computation (cycle 1's
//! reducer work) — the paper's key overhead for solving colocation joins
//! in "one go plus a marking round".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ij_core::rccis::marking::mark;
use ij_interval::AllenPredicate::{Contains, Overlaps};
use ij_interval::{Interval, Partitioning, TupleId};
use ij_query::JoinQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn partition_input(
    m: usize,
    n_per_rel: usize,
    part: &Partitioning,
    p: usize,
    seed: u64,
) -> Vec<Vec<(Interval, TupleId)>> {
    // Intervals concentrated around partition p, as a splitting reducer
    // would receive them.
    let window = part.partition(p);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            (0..n_per_rel as u32)
                .map(|t| {
                    let s = rng.gen_range(window.start() - 400..window.end());
                    let iv =
                        Interval::new(s.max(0), (s.max(0) + rng.gen_range(0..300)).min(99_999))
                            .unwrap();
                    (iv, t)
                })
                .filter(|(iv, _)| part.intersects_partition(*iv, p))
                .collect()
        })
        .collect()
}

fn bench_marking(c: &mut Criterion) {
    let part = Partitioning::equi_width(0, 100_000, 16).unwrap();
    let mut group = c.benchmark_group("rccis_marking");

    for &n in &[200usize, 1000] {
        let q2 = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let input = partition_input(3, n, &part, 7, 11);
        group.bench_with_input(BenchmarkId::new("q1_chain", n), &n, |b, _| {
            b.iter(|| mark(&q2, &part, 7, input.clone()).work)
        });
    }

    let q0 = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
    let input = partition_input(4, 300, &part, 7, 12);
    group.bench_function("q0_4way_300", |b| {
        b.iter(|| mark(&q0, &part, 7, input.clone()).work)
    });

    group.finish();
}

criterion_group!(benches, bench_marking);
criterion_main!(benches);
