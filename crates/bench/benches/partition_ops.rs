//! Micro-benchmarks of the partitioning lookups and the
//! project/split/replicate map operations (the map-side hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ij_interval::{ops, Interval, Partitioning};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_partition(c: &mut Criterion) {
    let part16 = Partitioning::equi_width(0, 100_000, 16).unwrap();
    let part256 = Partitioning::equi_width(0, 100_000, 256).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let ivs: Vec<Interval> = (0..4096)
        .map(|_| {
            let s = rng.gen_range(0..99_000);
            Interval::new(s, s + rng.gen_range(0..1000)).unwrap()
        })
        .collect();

    c.bench_function("partition/index_of_4k_k16", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for iv in &ivs {
                acc += part16.index_of(black_box(iv.start()));
            }
            acc
        })
    });

    c.bench_function("partition/index_of_4k_k256", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for iv in &ivs {
                acc += part256.index_of(black_box(iv.start()));
            }
            acc
        })
    });

    c.bench_function("ops/split_4k_k16", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &iv in &ivs {
                acc += ops::split(black_box(iv), &part16).len();
            }
            acc
        })
    });

    c.bench_function("ops/replicate_4k_k16", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &iv in &ivs {
                acc += ops::replicate(black_box(iv), &part16).len();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
