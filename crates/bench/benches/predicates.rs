//! Micro-benchmarks of Allen's algebra primitives — the innermost loops of
//! every reducer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ij_interval::{AllenPredicate, Interval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn intervals(n: usize, seed: u64) -> Vec<Interval> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0..10_000);
            Interval::new(s, s + rng.gen_range(0..200)).unwrap()
        })
        .collect()
}

fn bench_predicates(c: &mut Criterion) {
    let a = intervals(1024, 1);
    let b = intervals(1024, 2);

    c.bench_function("allen/relate_1k_pairs", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for (&x, &y) in a.iter().zip(&b) {
                acc += AllenPredicate::relate(black_box(x), black_box(y)) as usize;
            }
            acc
        })
    });

    c.bench_function("allen/holds_overlaps_1k_pairs", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for (&x, &y) in a.iter().zip(&b) {
                acc += AllenPredicate::Overlaps.holds(black_box(x), black_box(y)) as usize;
            }
            acc
        })
    });

    c.bench_function("allen/all_13_holds_1k_pairs", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for (&x, &y) in a.iter().zip(&b) {
                for p in AllenPredicate::ALL {
                    acc += p.holds(black_box(x), black_box(y)) as usize;
                }
            }
            acc
        })
    });

    c.bench_function("allen/right_start_bounds_1k", |bch| {
        bch.iter(|| {
            let mut acc = 0i64;
            for &x in &a {
                if let (std::ops::Bound::Excluded(lo), _) =
                    AllenPredicate::Overlaps.right_start_bounds(black_box(x))
                {
                    acc += lo;
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_predicates);
criterion_main!(benches);
