//! Shuffle micro-benchmarks: grouping throughput of the partitioned
//! k-way merge at 10^5–10^7 pairs, under uniform and zipf-skewed key
//! distributions, and the end-to-end reduce path with and without a fault
//! plan (i.e. the zero-clone move path vs. the clone-per-attempt path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ij_datagen::Distribution;
use ij_mapreduce::{
    merge_sorted_runs, ClusterConfig, CostModel, Emitter, Engine, FaultPlan, ReduceCtx, ReducerId,
    SortedRun, ValueStream,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEYS: i64 = 1024;

/// Generates `n` intermediate pairs with the given key distribution, split
/// into `workers` locally sorted runs — the shape the map phase hands to
/// the shuffle.
fn make_runs(n: usize, workers: usize, dist: Distribution, seed: u64) -> Vec<SortedRun<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(ReducerId, u64)> = (0..n)
        .map(|i| (dist.sample(&mut rng, 0, KEYS - 1) as ReducerId, i as u64))
        .collect();
    pairs
        .chunks(n.div_ceil(workers))
        .map(|c| {
            let mut run = c.to_vec();
            run.sort_by_key(|(k, _)| *k);
            run
        })
        .collect()
}

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_sorted_runs");
    for &n in &[100_000usize, 1_000_000, 10_000_000] {
        for (name, dist) in [
            ("uniform", Distribution::Uniform),
            ("zipf", Distribution::Zipf { theta: 2.0 }),
        ] {
            let runs = make_runs(n, 8, dist, 42);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(name, n), &runs, |b, runs| {
                b.iter(|| {
                    let (buckets, stats) = merge_sorted_runs(runs.clone());
                    assert_eq!(stats.pairs, n as u64);
                    criterion::black_box(buckets)
                })
            });
        }
    }
    group.finish();
}

fn bench_reduce_ownership(c: &mut Criterion) {
    let input: Vec<u64> = (0..1_000_000u64).collect();
    let engine = |faults: bool| {
        let e = Engine::new(ClusterConfig {
            reducer_slots: 16,
            worker_threads: 8,
            cost: CostModel::default(),
            ..ClusterConfig::default()
        });
        if faults {
            // An (empty) attached plan forces the clone-per-attempt path.
            e.with_faults(FaultPlan::new())
        } else {
            e
        }
    };
    let run = |e: &Engine| {
        e.run_job(
            "bench-reduce",
            &input,
            |&n: &u64, em: &mut Emitter<u64>| em.emit(n % 64, n),
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                out.push((ctx.key, vs.sum()));
            },
        )
        .unwrap()
    };

    let mut group = c.benchmark_group("reduce_path");
    group.throughput(Throughput::Elements(input.len() as u64));
    let zero_clone = engine(false);
    group.bench_function("zero_clone", |b| {
        b.iter(|| criterion::black_box(run(&zero_clone)))
    });
    let cloning = engine(true);
    group.bench_function("fault_plan_clone", |b| {
        b.iter(|| criterion::black_box(run(&cloning)))
    });
    group.finish();
}

criterion_group!(benches, bench_grouping, bench_reduce_ownership);
criterion_main!(benches);
