//! Kernel-bench trend gate: compares a fresh `BENCH_kernel.json` against
//! the previous CI run's artifact and fails on regressions.
//!
//! The vendored criterion stub appends one JSON line per benchmark when
//! `BENCH_JSON` is set — `{"id":"<group>/<bench>","mean_ns":N,"iters":N}`.
//! This binary hand-parses that JSONL (the vendored serde_json has no
//! deserializer), matches benchmark ids between the two files, aggregates
//! per-id speed ratios into a geometric mean per kernel *group* (the id
//! prefix before `/`), and exits non-zero when any group regressed past
//! the threshold. A missing baseline (first run, expired artifact) is a
//! clean skip — exit 0 — so the CI step degrades gracefully.
//!
//! Run: `bench_trend --baseline prev/BENCH_kernel.json --current BENCH_kernel.json
//!       [--threshold 25]`

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed benchmark line.
#[derive(Debug, Clone, PartialEq)]
struct BenchLine {
    id: String,
    mean_ns: u64,
}

/// Extracts the JSON string value of `"id"` from one JSONL line,
/// un-escaping `\"` and `\\` (the only escapes the stub emits besides
/// control-character `\u` sequences, which kernel bench ids never use).
fn parse_id(line: &str) -> Option<String> {
    let start = line.find("\"id\":\"")? + 6;
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                out.push(bytes[i + 1] as char);
                i += 2;
            }
            b'"' => return Some(out),
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    None
}

/// Extracts the integer value of `"mean_ns"` from one JSONL line.
fn parse_mean_ns(line: &str) -> Option<u64> {
    let start = line.find("\"mean_ns\":")? + 10;
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses a whole JSONL summary; malformed lines are skipped.
fn parse_summary(src: &str) -> Vec<BenchLine> {
    src.lines()
        .filter_map(|l| {
            Some(BenchLine {
                id: parse_id(l)?,
                mean_ns: parse_mean_ns(l)?,
            })
        })
        .collect()
}

/// The group of a benchmark id: the prefix before the first `/` (ids
/// without one form their own group).
fn group_of(id: &str) -> &str {
    id.split('/').next().unwrap_or(id)
}

/// Per-group geometric-mean ratio current/baseline over ids present in
/// both files, with the number of matched benchmarks.
fn group_ratios(baseline: &[BenchLine], current: &[BenchLine]) -> BTreeMap<String, (f64, usize)> {
    let base: BTreeMap<&str, u64> = baseline
        .iter()
        .map(|b| (b.id.as_str(), b.mean_ns))
        .collect();
    let mut log_sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for c in current {
        let Some(&b) = base.get(c.id.as_str()) else {
            continue;
        };
        if b == 0 || c.mean_ns == 0 {
            continue;
        }
        let entry = log_sums
            .entry(group_of(&c.id).to_string())
            .or_insert((0.0, 0));
        entry.0 += (c.mean_ns as f64 / b as f64).ln();
        entry.1 += 1;
    }
    log_sums
        .into_iter()
        .map(|(g, (sum, n))| (g, ((sum / n as f64).exp(), n)))
        .collect()
}

struct TrendArgs {
    baseline: String,
    current: String,
    threshold_pct: f64,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<TrendArgs, String> {
    let mut baseline = None;
    let mut current = None;
    let mut threshold_pct = 25.0;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--threshold" => {
                threshold_pct = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if threshold_pct <= 0.0 {
                    return Err("--threshold must be positive".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(TrendArgs {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        threshold_pct,
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: bench_trend --baseline <prev.json> --current <new.json> \
                 [--threshold <pct, default 25>]"
            );
            return ExitCode::from(2);
        }
    };
    let Ok(base_src) = std::fs::read_to_string(&args.baseline) else {
        println!(
            "bench-trend: no baseline at {} — first run or expired artifact, skipping",
            args.baseline
        );
        return ExitCode::SUCCESS;
    };
    let cur_src = match std::fs::read_to_string(&args.current) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read current summary {}: {e}", args.current);
            return ExitCode::from(2);
        }
    };
    let baseline = parse_summary(&base_src);
    let current = parse_summary(&cur_src);
    if baseline.is_empty() || current.is_empty() {
        println!(
            "bench-trend: empty summary (baseline {} lines, current {} lines) — skipping",
            baseline.len(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }
    let ratios = group_ratios(&baseline, &current);
    if ratios.is_empty() {
        println!("bench-trend: no benchmark ids in common — skipping");
        return ExitCode::SUCCESS;
    }
    let limit = 1.0 + args.threshold_pct / 100.0;
    let mut regressed = Vec::new();
    println!("bench-trend: geometric-mean time ratio per kernel group (current/baseline):");
    for (group, (ratio, n)) in &ratios {
        let verdict = if *ratio > limit { "REGRESSED" } else { "ok" };
        println!("  {group:24} {ratio:6.3}x over {n:3} benches  {verdict}");
        if *ratio > limit {
            regressed.push(group.clone());
        }
    }
    if regressed.is_empty() {
        println!(
            "bench-trend: PASS — no group slower than {:.0}% over baseline",
            args.threshold_pct
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-trend: FAIL — groups {:?} regressed more than {:.0}%",
            regressed, args.threshold_pct
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "{\"id\":\"sweep/n1000\",\"mean_ns\":1000,\"iters\":10}\n\
                        {\"id\":\"sweep/n4000\",\"mean_ns\":4000,\"iters\":10}\n\
                        {\"id\":\"merge/n1000\",\"mean_ns\":2000,\"iters\":10}\n";

    #[test]
    fn parses_ids_and_means() {
        let lines = parse_summary(BASE);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].id, "sweep/n1000");
        assert_eq!(lines[0].mean_ns, 1000);
        assert_eq!(group_of(&lines[2].id), "merge");
    }

    #[test]
    fn unescapes_quoted_ids() {
        let l = "{\"id\":\"group/with \\\"quote\\\"\",\"mean_ns\":1500,\"iters\":42}";
        assert_eq!(parse_id(l).as_deref(), Some("group/with \"quote\""));
        assert_eq!(parse_mean_ns(l), Some(1500));
    }

    #[test]
    fn ratios_are_per_group_geomeans() {
        let base = parse_summary(BASE);
        // sweep regressed 2x on one bench, unchanged on the other; merge
        // improved 2x.
        let cur = parse_summary(
            "{\"id\":\"sweep/n1000\",\"mean_ns\":2000,\"iters\":10}\n\
             {\"id\":\"sweep/n4000\",\"mean_ns\":4000,\"iters\":10}\n\
             {\"id\":\"merge/n1000\",\"mean_ns\":1000,\"iters\":10}\n\
             {\"id\":\"new/only_in_current\",\"mean_ns\":5,\"iters\":1}\n",
        );
        let r = group_ratios(&base, &cur);
        assert_eq!(r.len(), 2, "{r:?}");
        let (sweep, n) = r["sweep"];
        assert_eq!(n, 2);
        assert!((sweep - std::f64::consts::SQRT_2).abs() < 1e-9, "{sweep}");
        let (merge, _) = r["merge"];
        assert!((merge - 0.5).abs() < 1e-9, "{merge}");
    }

    /// A whole group present only in the current summary — e.g.
    /// `kernel_event_sweep` on the first run after the bench lands —
    /// contributes no ratio and cannot fail the gate; existing groups are
    /// still checked.
    #[test]
    fn new_group_missing_from_baseline_is_skipped() {
        let base = parse_summary(BASE);
        let cur = parse_summary(
            "{\"id\":\"sweep/n1000\",\"mean_ns\":1000,\"iters\":10}\n\
             {\"id\":\"kernel_event_sweep/event_sweep\",\"mean_ns\":4790000,\"iters\":42}\n\
             {\"id\":\"kernel_event_sweep/dual_window_sweep\",\"mean_ns\":13650000,\"iters\":15}\n",
        );
        let r = group_ratios(&base, &cur);
        assert!(
            !r.contains_key("kernel_event_sweep"),
            "unmatched group must not be gated: {r:?}"
        );
        let (sweep, n) = r["sweep"];
        assert_eq!((n, sweep), (1, 1.0), "matched group still compared");
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let src = "not json at all\n\
                   {\"id\":\"sweep/ok\",\"mean_ns\":100,\"iters\":1}\n\
                   {\"id\":\"sweep/no_mean\",\"iters\":1}\n\
                   {\"mean_ns\":500,\"iters\":1}\n\
                   {\"id\":\"sweep/bad_mean\",\"mean_ns\":\"fast\",\"iters\":1}\n\
                   {\"id\":\"unterminated\n";
        let lines = parse_summary(src);
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert_eq!(
            lines[0],
            BenchLine {
                id: "sweep/ok".into(),
                mean_ns: 100
            }
        );
    }

    #[test]
    fn ids_without_group_separator_form_their_own_group() {
        let base = parse_summary("{\"id\":\"loner\",\"mean_ns\":100,\"iters\":1}\n");
        assert_eq!(group_of(&base[0].id), "loner");
        let cur = parse_summary("{\"id\":\"loner\",\"mean_ns\":200,\"iters\":1}\n");
        let r = group_ratios(&base, &cur);
        assert_eq!(r.len(), 1);
        let (ratio, n) = r["loner"];
        assert_eq!(n, 1);
        assert!((ratio - 2.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn empty_baseline_yields_no_ratios() {
        let cur = parse_summary(BASE);
        assert!(group_ratios(&[], &cur).is_empty());
        assert!(group_ratios(&cur, &[]).is_empty());
        assert!(parse_summary("").is_empty());
        // Zero means never divide: the pair is dropped, not Inf/NaN.
        let zero = parse_summary("{\"id\":\"sweep/n1000\",\"mean_ns\":0,\"iters\":1}\n");
        let base = parse_summary(BASE);
        assert!(group_ratios(&base, &zero).is_empty());
        assert!(group_ratios(&zero, &base).is_empty());
    }

    #[test]
    fn arg_parsing_requires_paths() {
        assert!(parse_args(Vec::<String>::new()).is_err());
        let ok = parse_args(
            ["--baseline", "a", "--current", "b", "--threshold", "10"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(ok.baseline, "a");
        assert_eq!(ok.threshold_pct, 10.0);
        assert!(parse_args(
            ["--baseline", "a", "--current", "b", "--threshold", "-1"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }
}
