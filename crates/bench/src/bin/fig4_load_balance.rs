//! Figure 4 — per-reducer load: All-Rep vs All-Matrix on `R1 before R2`
//! (Section 7).
//!
//! The figure's story: with All-Rep, load grows toward the right-most
//! reducer (which receives every replicated R1 interval); All-Matrix
//! spreads the heavy face of the cross-product across several cells so all
//! reducers receive similar load. This binary prints both load profiles.
//!
//! Run: `cargo run --release -p ij-bench --bin fig4_load_balance`.

use ij_bench::report::{load_histogram, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{engine, measure};
use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::{JoinInput, OutputMode};
use ij_datagen::SynthConfig;
use ij_interval::AllenPredicate::Before;
use ij_query::JoinQuery;

fn main() {
    let args = BenchArgs::parse(
        1.0,
        "fig4_load_balance: per-reducer pair counts, All-Rep (6 reducers) vs All-Matrix (o=3)",
    );
    let engine = engine(args.slots);
    let q = JoinQuery::chain(&[Before]).unwrap();
    let n = args.scale.apply(20_000);
    let rels = (0..2)
        .map(|r| SynthConfig::fig5a(n, args.seed + r).generate(format!("R{}", r + 1)))
        .collect();
    let input = JoinInput::bind_owned(&q, rels).unwrap();

    // Figure 4 uses 6 partitions for All-Rep and a 3x3 matrix (6 consistent
    // cells) for All-Matrix, so both run 6 reducers.
    let ar = measure(
        &AllReplicate {
            partitions: 6,
            mode: OutputMode::Count,
        },
        &q,
        &input,
        &engine,
    );
    let am = measure(
        &AllMatrix {
            per_dim: 3,
            mode: OutputMode::Count,
            prune_inconsistent: true,
        },
        &q,
        &input,
        &engine,
    );
    assert_eq!(ar.output, am.output, "join disagreement");

    let mut report = Report::new(
        "fig4",
        "Load balancing — All-Rep vs All-Matrix on R1 before R2",
        &["reducer", "All-Rep pairs", "All-Matrix pairs"],
    );
    report.note(format!(
        "nI={n} each, range=(0,1000); All-Rep: 6 partitions; All-Matrix: o=3 (6 consistent cells)"
    ));
    let ar_loads = &ar.out.chain.cycles[0].reducer_loads;
    let am_loads = &am.out.chain.cycles[0].reducer_loads;
    for i in 0..ar_loads.len().max(am_loads.len()) {
        report.row(vec![
            (i as u64).into(),
            ar_loads
                .get(i)
                .map(|l| l.pairs_received)
                .unwrap_or(0)
                .into(),
            am_loads
                .get(i)
                .map(|l| l.pairs_received)
                .unwrap_or(0)
                .into(),
        ]);
    }
    report.row(vec!["skew".into(), ar.skew.into(), am.skew.into()]);
    report.finish(args.json.as_deref());

    // The figure itself, as ASCII bars (reducer key, pairs, bar).
    println!("All-Rep per-reducer load:");
    print!("{}", load_histogram(ar_loads, 50));
    println!("All-Matrix per-reducer load:");
    print!("{}", load_histogram(am_loads, 50));
}
