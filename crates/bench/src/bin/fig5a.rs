//! Figure 5(a) — sequence join Q2 = `R1 before R2 and R2 before R3` on
//! synthetic data, varying relation size (Section 7.1).
//!
//! Paper setting: temporal range 0–1000, max interval length 100, uniform
//! dS/dI. All-Matrix uses o=6 (56 consistent cells of 216; paper says 55),
//! the 2-way cascade runs its sequence stages as 2-D All-Matrix with o=11,
//! All-Rep uses 64 reducers — chosen so all three use a similar number of
//! consistent reducers, as in the paper.
//!
//! Run: `cargo run --release -p ij-bench --bin fig5a [--scale f]`.
//! The paper does not print its x-axis sizes; we sweep 2K–10K intervals per
//! relation at scale 1.0.

use ij_bench::report::{fmt_sim, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{assert_same_output, engine, measure};
use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::{JoinInput, OutputMode};
use ij_datagen::SynthConfig;
use ij_interval::AllenPredicate::Before;
use ij_query::JoinQuery;

fn main() {
    let args = BenchArgs::parse(
        0.1,
        "fig5a: Q2 = R1 before R2 before R3 on synthetic data, varying size",
    );
    let engine = engine(args.slots);
    let q = JoinQuery::chain(&[Before, Before]).unwrap();
    let base_sizes: [u64; 5] = [2_000, 4_000, 6_000, 8_000, 10_000];

    let mut report = Report::new(
        "fig5a",
        "Sequence join Q2 on synthetic data — All-Matrix vs All-Rep vs 2-way Cd",
        &[
            "nI",
            "sim All-Matrix",
            "sim All-Rep",
            "sim 2wCd",
            "skew All-Matrix",
            "skew All-Rep",
            "cells",
            "output",
        ],
    );
    report.note(format!(
        "range=(0,1000) i_max=100 dS,dI=Uniform; All-Matrix o=6, 2wCd 2-D o=11, All-Rep 64 reducers; scale={}",
        args.scale
    ));

    for (i, &base_n) in base_sizes.iter().enumerate() {
        let n = args.scale.apply(base_n);
        let rels = (0..3)
            .map(|r| {
                SynthConfig::fig5a(n, args.seed + (i * 3 + r) as u64)
                    .generate(format!("R{}", r + 1))
            })
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();

        let am = measure(
            &AllMatrix {
                per_dim: 6,
                mode: OutputMode::Count,
                prune_inconsistent: true,
            },
            &q,
            &input,
            &engine,
        );
        let ar = measure(
            &AllReplicate {
                partitions: 64,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let cd = measure(
            &TwoWayCascade {
                partitions: 16,
                per_dim_2d: 11,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        assert_same_output(&[am.clone(), ar.clone(), cd.clone()]);

        let cells = am
            .consistent_cells
            .map(|(c, t)| format!("{c}/{t}"))
            .unwrap_or_default();
        report.row(vec![
            (n as u64).into(),
            fmt_sim(am.simulated).into(),
            fmt_sim(ar.simulated).into(),
            fmt_sim(cd.simulated).into(),
            am.skew.into(),
            ar.skew.into(),
            cells.into(),
            am.output.into(),
        ]);
        eprintln!(
            "  nI={n}: wall AM {:.2}s, AR {:.2}s, Cd {:.2}s",
            am.wall_secs, ar.wall_secs, cd.wall_secs
        );
    }
    report.finish(args.json.as_deref());
}
