//! Figure 5(b) — sequence join Q2 on packet-train data from trace P04,
//! sampling trains in steps of 3K (Section 7.1).
//!
//! Same algorithms and partitionings as Figure 5(a); the data is the
//! simulated P04 trace (18K trains over 15 minutes at scale 1.0).
//!
//! Run: `cargo run --release -p ij-bench --bin fig5b [--scale f]`.

use ij_bench::report::{fmt_sim, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{assert_same_output, engine, measure};
use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::{JoinInput, OutputMode};
use ij_datagen::profiles::TraceProfile;
use ij_datagen::trains::trains_relation;
use ij_interval::AllenPredicate::Before;
use ij_query::JoinQuery;
use std::sync::Arc;

fn main() {
    let args = BenchArgs::parse(
        0.05,
        "fig5b: Q2 = R1 before R2 before R3 on trace P04 trains, sampled in steps of 3K",
    );
    let engine = engine(args.slots);
    let q = JoinQuery::chain(&[Before, Before]).unwrap();

    // Generate the full (scaled) P04 trace once; sample prefixes in the
    // paper's 3K steps (scaled).
    let p04 = TraceProfile::by_name("P04").expect("profile exists");
    let all_trains = p04.generate_trains(args.scale.0, args.seed);
    let step = args.scale.apply(3_000);

    let mut report = Report::new(
        "fig5b",
        "Sequence join Q2 on trace P04 — All-Matrix vs All-Rep vs 2-way Cd",
        &[
            "trains",
            "sim All-Matrix",
            "sim All-Rep",
            "sim 2wCd",
            "skew All-Matrix",
            "skew All-Rep",
            "output",
        ],
    );
    report.note(format!(
        "trace P04 (simulated), 500ms cutoff, steps of {step}, slots={}, scale={}",
        args.slots, args.scale
    ));

    for k in 1..=6usize {
        let n = (k * step).min(all_trains.len());
        let sample = &all_trains[..n];
        let rel = Arc::new(trains_relation("P04", sample));
        let input = JoinInput::bind_self_join(&q, rel).unwrap();

        let am = measure(
            &AllMatrix {
                per_dim: 6,
                mode: OutputMode::Count,
                prune_inconsistent: true,
            },
            &q,
            &input,
            &engine,
        );
        let ar = measure(
            &AllReplicate {
                partitions: 64,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let cd = measure(
            &TwoWayCascade {
                partitions: 16,
                per_dim_2d: 11,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        assert_same_output(&[am.clone(), ar.clone(), cd.clone()]);

        report.row(vec![
            (n as u64).into(),
            fmt_sim(am.simulated).into(),
            fmt_sim(ar.simulated).into(),
            fmt_sim(cd.simulated).into(),
            am.skew.into(),
            ar.skew.into(),
            am.output.into(),
        ]);
        eprintln!(
            "  n={n}: wall AM {:.2}s, AR {:.2}s, Cd {:.2}s",
            am.wall_secs, ar.wall_secs, cd.wall_secs
        );
        if n == all_trains.len() {
            break;
        }
    }
    report.finish(args.json.as_deref());
}
