//! Ablations and supplementary sweeps (DESIGN.md §8):
//!
//! 1. **Distribution sweep** — the paper reports only uniform data and
//!    claims "similar results" for other dS/dI settings; we run Q1 across
//!    uniform / normal / zipf / exponential start-point distributions.
//! 2. **Scale sweep** — Table 1's "2-way Cd is worst" emerges with size
//!    because the cascade's intermediate result grows quadratically; this
//!    sweep shows the crossover.
//! 3. **D1 ablation** — All-Matrix with inconsistent-cell pruning turned
//!    off, measuring what the less-than-order pruning saves (Section 7.1).
//! 4. **C2 ablation** — RCCIS marking without the crossing condition
//!    (replicate every interval in any consistent set), measuring what
//!    Section 5.3's crossing requirement saves.
//! 5. **Skew remedy** — RCCIS with equi-depth (quantile) partition
//!    boundaries on zipfian start points, the fix for Section 2's remark
//!    that skewed data needs different processing.
//!
//! Run: `cargo run --release -p ij-bench --bin sweep [--scale f]`.

use ij_bench::report::{fmt_phases, fmt_sched, fmt_sim, fmt_spill, telemetry_note, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{
    assert_same_output, instrumented_engine, measure, write_metrics, write_trace,
};
use ij_core::all_matrix::AllMatrix;
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::rccis::Rccis;
use ij_core::{JoinInput, OutputMode};
use ij_datagen::{Distribution, SynthConfig};
use ij_interval::AllenPredicate::{Before, Overlaps};
use ij_query::JoinQuery;

fn main() {
    let args = BenchArgs::parse(
        0.03,
        "sweep: ablations (distributions, scale crossover, D1)",
    );
    let (engine, tracer, telemetry) = instrumented_engine(
        args.slots,
        args.trace.is_some(),
        args.budget,
        args.metrics_out.is_some(),
        args.sched,
    );

    // ---- 1. Distribution sweep on Q1 ---------------------------------------
    let q1 = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let mut rep = Report::new(
        "sweep-distributions",
        "Q1 under different start-point distributions (paper: 'similar results')",
        &[
            "dS",
            "sim 2wCd",
            "sim AllRep",
            "sim RCCIS",
            "repl RCCIS",
            "output",
            "spill RCCIS",
            "sched RCCIS",
        ],
    );
    let n = args.scale.apply(1_000_000);
    rep.note(format!(
        "nI={n} per relation, dI=Uniform, range=(0,100K), lengths=(1,100)"
    ));
    match args.budget {
        Some(b) => rep.note(format!(
            "reduce memory budget {b}B/bucket (spill col: buckets/runs/bytes + spill wall time)"
        )),
        None => rep.note("reduce memory budget unlimited — no spilling"),
    }
    rep.note(format!(
        "intra-reduce scheduler {} (sched col: granted threads/heavy buckets, - if all-serial)",
        args.sched
    ));
    for (name, ds) in [
        ("uniform", Distribution::Uniform),
        ("normal", Distribution::Normal),
        ("zipf(2)", Distribution::Zipf { theta: 2.0 }),
        ("exp(.25)", Distribution::Exponential { scale: 0.25 }),
    ] {
        let rels = (0..3)
            .map(|r| {
                SynthConfig {
                    ds,
                    ..SynthConfig::table1(n, args.seed + r)
                }
                .generate(format!("R{}", r + 1))
            })
            .collect();
        let input = JoinInput::bind_owned(&q1, rels).unwrap();
        let cd = measure(
            &TwoWayCascade {
                partitions: 16,
                per_dim_2d: 4,
                mode: OutputMode::Count,
            },
            &q1,
            &input,
            &engine,
        );
        let ar = measure(
            &AllReplicate {
                partitions: 16,
                mode: OutputMode::Count,
            },
            &q1,
            &input,
            &engine,
        );
        let rc = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: Default::default(),
            },
            &q1,
            &input,
            &engine,
        );
        assert_same_output(&[cd.clone(), ar.clone(), rc.clone()]);
        if name == "uniform" {
            // Which join kernel the reducers picked (DESIGN.md §10): Q1 is
            // a colocation query, so every bucket should go to the sweep.
            for m in [&cd, &ar, &rc] {
                let kernel: Vec<String> = m
                    .counters
                    .iter()
                    .filter(|(k, _)| k.starts_with("kernel."))
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                if !kernel.is_empty() {
                    rep.note(format!("{}: {}", m.algorithm, kernel.join(" ")));
                }
            }
        }
        rep.row(vec![
            name.into(),
            fmt_sim(cd.simulated).into(),
            fmt_sim(ar.simulated).into(),
            fmt_sim(rc.simulated).into(),
            rc.replicated.unwrap_or(0).into(),
            rc.output.into(),
            fmt_spill(&rc.counters, rc.spill_secs).into(),
            fmt_sched(&rc.counters).into(),
        ]);
    }
    rep.finish(None);

    // ---- 2. Scale crossover for the cascade --------------------------------
    let mut rep = Report::new(
        "sweep-scale",
        "Q1: the cascade's quadratic intermediate result vs scale",
        &[
            "nI",
            "sim 2wCd",
            "sim AllRep",
            "sim RCCIS",
            "Cd/RCCIS",
            "AllRep/RCCIS",
            "RCCIS m/s/r",
        ],
    );
    for &n in &[10_000usize, 25_000, 50_000, 100_000] {
        let rels = (0..3)
            .map(|r| SynthConfig::table1(n, args.seed + 50 + r).generate(format!("R{}", r + 1)))
            .collect();
        let input = JoinInput::bind_owned(&q1, rels).unwrap();
        let cd = measure(
            &TwoWayCascade {
                partitions: 16,
                per_dim_2d: 4,
                mode: OutputMode::Count,
            },
            &q1,
            &input,
            &engine,
        );
        let ar = measure(
            &AllReplicate {
                partitions: 16,
                mode: OutputMode::Count,
            },
            &q1,
            &input,
            &engine,
        );
        let rc = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: Default::default(),
            },
            &q1,
            &input,
            &engine,
        );
        rep.row(vec![
            (n as u64).into(),
            fmt_sim(cd.simulated).into(),
            fmt_sim(ar.simulated).into(),
            fmt_sim(rc.simulated).into(),
            (cd.simulated / rc.simulated).into(),
            (ar.simulated / rc.simulated).into(),
            fmt_phases(rc.map_secs, rc.shuffle_secs, rc.reduce_secs).into(),
        ]);
        eprintln!("  scale row nI={n} done");
    }
    rep.finish(None);

    // ---- 3. D1 ablation: inconsistent-cell pruning off ----------------------
    let q2 = JoinQuery::chain(&[Before, Before]).unwrap();
    let mut rep = Report::new(
        "sweep-d1",
        "All-Matrix with and without inconsistent-cell pruning (condition D1)",
        &[
            "nI",
            "pairs pruned",
            "pairs unpruned",
            "sim pruned",
            "sim unpruned",
            "cells",
        ],
    );
    for &base in &[2_000u64, 6_000, 10_000] {
        let n = args.scale.apply(base) * 8; // sequence joins need less data
        let rels = (0..3)
            .map(|r| SynthConfig::fig5a(n, args.seed + 90 + r).generate(format!("R{}", r + 1)))
            .collect();
        let input = JoinInput::bind_owned(&q2, rels).unwrap();
        let pruned = measure(
            &AllMatrix {
                per_dim: 6,
                mode: OutputMode::Count,
                prune_inconsistent: true,
            },
            &q2,
            &input,
            &engine,
        );
        let unpruned = measure(
            &AllMatrix {
                per_dim: 6,
                mode: OutputMode::Count,
                prune_inconsistent: false,
            },
            &q2,
            &input,
            &engine,
        );
        assert_same_output(&[pruned.clone(), unpruned.clone()]);
        let cells = pruned
            .consistent_cells
            .map(|(c, t)| format!("{c}/{t}"))
            .unwrap_or_default();
        rep.row(vec![
            (n as u64).into(),
            pruned.pairs.into(),
            unpruned.pairs.into(),
            fmt_sim(pruned.simulated).into(),
            fmt_sim(unpruned.simulated).into(),
            cells.into(),
        ]);
    }
    rep.finish(None);

    // ---- 4. C2 ablation: RCCIS without the crossing condition ---------------
    let mut rep = Report::new(
        "sweep-c2",
        "RCCIS with and without the crossing condition C2",
        &[
            "nI",
            "repl C2",
            "repl no-C2",
            "pairs C2",
            "pairs no-C2",
            "sim C2",
            "sim no-C2",
        ],
    );
    for &base in &[250_000u64, 500_000, 1_000_000] {
        let n = args.scale.apply(base);
        let rels = (0..3)
            .map(|r| SynthConfig::table1(n, args.seed + 120 + r).generate(format!("R{}", r + 1)))
            .collect();
        let input = JoinInput::bind_owned(&q1, rels).unwrap();
        let with_c2 = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: Default::default(),
            },
            &q1,
            &input,
            &engine,
        );
        let without_c2 = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: ij_core::rccis::marking::MarkOptions {
                    enforce_crossing: false,
                },
                partition_strategy: Default::default(),
            },
            &q1,
            &input,
            &engine,
        );
        assert_same_output(&[with_c2.clone(), without_c2.clone()]);
        rep.row(vec![
            (n as u64).into(),
            with_c2.replicated.unwrap_or(0).into(),
            without_c2.replicated.unwrap_or(0).into(),
            with_c2.pairs.into(),
            without_c2.pairs.into(),
            fmt_sim(with_c2.simulated).into(),
            fmt_sim(without_c2.simulated).into(),
        ]);
    }
    rep.finish(None);

    // ---- 5. Equi-depth boundaries on skewed data ----------------------------
    let mut rep = Report::new(
        "sweep-skew",
        "RCCIS under zipfian dS: equi-width vs equi-depth boundaries",
        &[
            "nI",
            "skew width",
            "skew depth",
            "gini width",
            "gini depth",
            "p99/p50 w",
            "p99/p50 d",
            "sim width",
            "sim depth",
        ],
    );
    for &base in &[150_000u64, 300_000] {
        let n = args.scale.apply(base);
        let rels = (0..3)
            .map(|r| {
                SynthConfig {
                    ds: Distribution::Zipf { theta: 3.0 },
                    ..SynthConfig::table1(n, args.seed + 150 + r)
                }
                .generate(format!("R{}", r + 1))
            })
            .collect();
        let input = JoinInput::bind_owned(&q1, rels).unwrap();
        let width = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: ij_core::PartitionStrategy::EquiWidth,
            },
            &q1,
            &input,
            &engine,
        );
        let depth = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: ij_core::PartitionStrategy::EquiDepth,
            },
            &q1,
            &input,
            &engine,
        );
        assert_same_output(&[width.clone(), depth.clone()]);
        // The marking (split) cycle is where boundary placement shows up.
        let sw = width.out.chain.cycles[0].skew_report(3);
        let sd = depth.out.chain.cycles[0].skew_report(3);
        rep.row(vec![
            (n as u64).into(),
            width.skew.into(),
            depth.skew.into(),
            sw.gini.into(),
            sd.gini.into(),
            sw.p99_p50_ratio.into(),
            sd.p99_p50_ratio.into(),
            fmt_sim(width.simulated).into(),
            fmt_sim(depth.simulated).into(),
        ]);
    }
    if let Some(tel) = &telemetry {
        rep.note(telemetry_note(&tel.snapshot()));
    }
    rep.finish(args.json.as_deref());
    write_trace(args.trace.as_deref(), &tracer);
    write_metrics(args.metrics_out.as_deref(), &telemetry);
}
