//! Table 1 — varying data size on the colocation query
//! Q1 = `R1 overlaps R2 and R2 overlaps R3` (Section 6.2).
//!
//! Paper setting: dS, dI uniform; range (0, 100K); lengths (1, 100);
//! nI = 0.5M, 0.75M, 1.0M, 1.25M per relation; 16 reducers. Compared:
//! 2-way Cascade, All-Replicate and RCCIS, reporting time, the intervals
//! replicated by RCCIS vs All-Rep and the total key-value pairs.
//!
//! Run: `cargo run --release -p ij-bench --bin table1 [--scale f]`.

use ij_bench::report::{
    fmt_phases, fmt_sched, fmt_sim, fmt_spill, skew_report_table, skew_row, telemetry_note, Report,
};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{
    assert_same_output, instrumented_engine, measure, write_metrics, write_trace,
};
use ij_core::all_replicate::AllReplicate;
use ij_core::cascade::TwoWayCascade;
use ij_core::rccis::Rccis;
use ij_core::{JoinInput, OutputMode};
use ij_datagen::SynthConfig;
use ij_interval::AllenPredicate::Overlaps;
use ij_query::JoinQuery;

fn main() {
    let args = BenchArgs::parse(
        0.05,
        "table1: Q1 = R1 ov R2 ov R3, varying nI (paper: 0.5M..1.25M)",
    );
    let (engine, tracer, telemetry) = instrumented_engine(
        args.slots,
        args.trace.is_some(),
        args.budget,
        args.metrics_out.is_some(),
        args.sched,
    );
    let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
    let paper_sizes: [u64; 4] = [500_000, 750_000, 1_000_000, 1_250_000];
    let mut skew_rep = skew_report_table(
        "table1-skew",
        "Per-reducer load distribution at the largest size",
    );
    let mut counters_note: Vec<String> = Vec::new();

    let mut report = Report::new(
        "table1",
        "Varying data size — Q1 = R1 ov R2 and R2 ov R3",
        &[
            "nI",
            "sim 2wCd",
            "sim AllRep",
            "sim RCCIS",
            "repl RCCIS",
            "repl AllRep",
            "pairs 2wCd",
            "pairs AllRep",
            "pairs RCCIS",
            "output",
            "RCCIS m/s/r",
            "spill RCCIS",
            "sched RCCIS",
        ],
    );
    report.note(format!(
        "dS,dI=Uniform (t_min,t_max)=(0,100K) (i_min,i_max)=(1,100) slots={} scale={} (paper sizes x scale)",
        args.slots, args.scale
    ));
    match args.budget {
        Some(b) => report.note(format!(
            "reduce memory budget {b}B/bucket — oversized buckets spill to the Dfs \
             (spill col: buckets/runs/bytes + spill wall time)"
        )),
        None => report.note("reduce memory budget unlimited — no spilling"),
    }
    report.note(format!(
        "intra-reduce scheduler {} (sched col: granted threads/heavy buckets, - if all-serial)",
        args.sched
    ));

    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = args.scale.apply(paper_n);
        let rels = (0..3)
            .map(|r| {
                SynthConfig::table1(n, args.seed + (i * 3 + r) as u64)
                    .generate(format!("R{}", r + 1))
            })
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();

        let cd = measure(
            &TwoWayCascade {
                partitions: 16,
                per_dim_2d: 4,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let ar = measure(
            &AllReplicate {
                partitions: 16,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let rc = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: Default::default(),
            },
            &q,
            &input,
            &engine,
        );
        assert_same_output(&[cd.clone(), ar.clone(), rc.clone()]);

        if i == paper_sizes.len() - 1 {
            // The skew diagnosis at the largest size: one row per MR cycle.
            for m in [&cd, &ar, &rc] {
                for cycle in &m.out.chain.cycles {
                    let label = format!("{} {}", m.algorithm, cycle.name);
                    skew_row(&mut skew_rep, &label, &cycle.skew_report(3));
                }
                let counters: Vec<String> = m
                    .counters
                    .iter()
                    .map(|(name, v)| format!("{name}={v}"))
                    .collect();
                if !counters.is_empty() {
                    counters_note.push(format!("{}: {}", m.algorithm, counters.join(" ")));
                }
            }
        }

        report.row(vec![
            (n as u64).into(),
            fmt_sim(cd.simulated).into(),
            fmt_sim(ar.simulated).into(),
            fmt_sim(rc.simulated).into(),
            rc.replicated.unwrap_or(0).into(),
            ar.replicated.unwrap_or(0).into(),
            cd.pairs.into(),
            ar.pairs.into(),
            rc.pairs.into(),
            rc.output.into(),
            fmt_phases(rc.map_secs, rc.shuffle_secs, rc.reduce_secs).into(),
            fmt_spill(&rc.counters, rc.spill_secs).into(),
            fmt_sched(&rc.counters).into(),
        ]);
        eprintln!(
            "  nI={n}: wall 2wCd {:.2}s, AllRep {:.2}s, RCCIS {:.2}s (RCCIS map/shuffle/reduce {}, spill {})",
            cd.wall_secs,
            ar.wall_secs,
            rc.wall_secs,
            fmt_phases(rc.map_secs, rc.shuffle_secs, rc.reduce_secs),
            fmt_spill(&rc.counters, rc.spill_secs)
        );
    }
    if let Some(tel) = &telemetry {
        report.note(telemetry_note(&tel.snapshot()));
    }
    report.finish(args.json.as_deref());
    for n in counters_note {
        skew_rep.note(n);
    }
    skew_rep.finish(None);
    write_trace(args.trace.as_deref(), &tracer);
    write_metrics(args.metrics_out.as_deref(), &telemetry);
}
