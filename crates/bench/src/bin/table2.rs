//! Table 2 — RCCIS vs 2-way Cascade on Internet packet-train data
//! (Section 6.2).
//!
//! Paper setting: six 15-minute MAWI traces (P03–P08); packet trains built
//! with a 500 ms inter-arrival cutoff; each trace replicated to 3M trains;
//! star self-join `R overlaps R and R overlaps R` with 16 reducers.
//!
//! The MAWI traces are simulated (see DESIGN.md §4): per-profile packet
//! streams reproduce the paper's packet/train counts and train-length
//! statistics in shape.
//!
//! Run: `cargo run --release -p ij-bench --bin table2 [--scale f]`.

use ij_bench::report::{fmt_sim, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{assert_same_output, engine, measure};
use ij_core::cascade::TwoWayCascade;
use ij_core::rccis::Rccis;
use ij_core::{JoinInput, OutputMode};
use ij_datagen::profiles::TABLE2_PROFILES;
use ij_datagen::trains::{replicate_to, trains_relation};
use ij_interval::AllenPredicate::Overlaps;
use ij_query::{Condition, JoinQuery};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::parse(
        0.01,
        "table2: star self-join R ov R ov R on packet trains, traces P03..P08 (paper: 3M trains each)",
    );
    let engine = engine(args.slots);
    // Star self-join: R overlaps R and R overlaps R — three logical copies.
    let q = JoinQuery::new(
        3,
        vec![
            Condition::whole(0, Overlaps, 1),
            Condition::whole(1, Overlaps, 2),
        ],
    )
    .unwrap();
    let target_trains = args.scale.apply(3_000_000);

    let mut report = Report::new(
        "table2",
        "Packet-train star self-join — 2-way Cd vs RCCIS",
        &[
            "trace",
            "pkts",
            "trains",
            "copies",
            "sim 2wCd",
            "sim RCCIS",
            "pairs 2wCd",
            "pairs RCCIS",
            "repl RCCIS",
            "output",
        ],
    );
    report.note(format!(
        "cutoff=500ms, replicated to {target_trains} trains, slots={}, scale={}",
        args.slots, args.scale
    ));

    for profile in TABLE2_PROFILES {
        let base = profile.generate_trains(args.scale.0, args.seed);
        let copies = target_trains.div_ceil(base.len().max(1)) as u64;
        // Jitter copies by 1 ms so replication densifies the trace.
        let trains = replicate_to(&base, target_trains, 1000);
        let rel = Arc::new(trains_relation(profile.name, &trains));
        let input = JoinInput::bind_self_join(&q, rel).unwrap();

        let cd = measure(
            &TwoWayCascade {
                partitions: 16,
                per_dim_2d: 4,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let rc = measure(
            &Rccis {
                partitions: 16,
                mode: OutputMode::Count,
                mark_options: Default::default(),
                partition_strategy: Default::default(),
            },
            &q,
            &input,
            &engine,
        );
        assert_same_output(&[cd.clone(), rc.clone()]);

        let total_pkts: u64 = base.iter().map(|t| t.packets as u64).sum();
        report.row(vec![
            profile.name.into(),
            total_pkts.into(),
            base.len().into(),
            copies.into(),
            fmt_sim(cd.simulated).into(),
            fmt_sim(rc.simulated).into(),
            cd.pairs.into(),
            rc.pairs.into(),
            rc.replicated.unwrap_or(0).into(),
            rc.output.into(),
        ]);
        eprintln!(
            "  {}: {} base trains, wall 2wCd {:.2}s, RCCIS {:.2}s",
            profile.name,
            base.len(),
            cd.wall_secs,
            rc.wall_secs
        );
    }
    report.finish(args.json.as_deref());
}
