//! Table 3 — hybrid query Q4 = `R1 before R2 and R1 overlaps R3`, varying
//! the maximum interval length of R3 (Section 8.2).
//!
//! Paper setting: nI = (5M, 100K, 1K); dS, dI uniform; range (0, 200K);
//! R3's `i_max` swept 1000 → 200. Compared: FCTS, All-Seq-Matrix and
//! Pruned-All-Seq-Matrix, plus the fraction of R1 pruned by PASM. R3's
//! count is NOT scaled (the paper holds it at 1K; it controls the pruning
//! fraction) — only R1 and R2 shrink with `--scale`.
//!
//! Run: `cargo run --release -p ij-bench --bin table3 [--scale f]`.

use ij_bench::report::{fmt_sim, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{assert_same_output, engine, measure};
use ij_core::hybrid::{AllSeqMatrix, Fcts, Pasm};
use ij_core::{JoinInput, OutputMode};
use ij_datagen::{Distribution, SynthConfig};
use ij_interval::AllenPredicate::{Before, Overlaps};
use ij_query::{Condition, JoinQuery};

fn main() {
    let args = BenchArgs::parse(
        0.005,
        "table3: Q4 = R1 before R2 and R1 ov R3; vary i_max (paper: 1000..200)",
    );
    let engine = engine(args.slots);
    let q = JoinQuery::new(
        3,
        vec![
            Condition::whole(0, Before, 1),
            Condition::whole(0, Overlaps, 2),
        ],
    )
    .unwrap();
    // R3's count, the time range and the interval lengths are the paper's
    // exact values — together they set the quantities this table is about
    // (the pruning fraction and the per-R1 match fanout). Only the bulk
    // relations R1 and R2 shrink with --scale.
    let n1 = args.scale.apply(5_000_000);
    let n2 = args.scale.apply(100_000);
    let n3 = 1_000usize;
    let t_max: i64 = 200_000;

    let mut report = Report::new(
        "table3",
        "Q4 = R1 before R2 and R1 ov R3 — FCTS vs All-Seq-Matrix vs PASM",
        &[
            "i_max R3",
            "sim FCTS",
            "sim ASM",
            "sim PASM",
            "% R1 pruned",
            "pairs ASM",
            "pairs PASM",
            "output",
        ],
    );
    report.note(format!(
        "nI=({n1}, {n2}, {n3}) dS,dI=Uniform range=(0,200K) slots={} scale={}",
        args.slots, args.scale
    ));

    for (i, &i_max) in [1000i64, 800, 600, 400, 200].iter().enumerate() {
        // The paper's "Maximum Interval Length" column applies to the
        // generated data as a whole; the text highlights its effect on R3
        // (shorter R3 intervals -> fewer R1 intervals overlap any R3).
        let mk = |n: usize, seed_off: u64| SynthConfig {
            n,
            ds: Distribution::Uniform,
            di: Distribution::Uniform,
            t_min: 0,
            t_max,
            i_min: 1,
            i_max,
            seed: args.seed + i as u64 * 10 + seed_off,
        };
        let rels = vec![
            mk(n1, 0).generate("R1"),
            mk(n2, 1).generate("R2"),
            mk(n3, 2).generate("R3"),
        ];
        let input = JoinInput::bind_owned(&q, rels).unwrap();

        let fcts = measure(
            &Fcts {
                partitions: 16,
                per_dim: 6,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let asm = measure(
            &AllSeqMatrix {
                per_dim: 6,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let pasm = measure(
            &Pasm {
                per_dim: 6,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        assert_same_output(&[fcts.clone(), asm.clone(), pasm.clone()]);

        let pruned_r1 = pasm
            .out
            .stats
            .pruned_fraction
            .iter()
            .find(|(n, _)| n == "R1")
            .map(|(_, f)| f * 100.0)
            .unwrap_or(0.0);
        report.row(vec![
            (i_max as u64).into(),
            fmt_sim(fcts.simulated).into(),
            fmt_sim(asm.simulated).into(),
            fmt_sim(pasm.simulated).into(),
            pruned_r1.into(),
            asm.pairs.into(),
            pasm.pairs.into(),
            asm.output.into(),
        ]);
        eprintln!(
            "  i_max={i_max}: wall FCTS {:.2}s, ASM {:.2}s, PASM {:.2}s",
            fcts.wall_secs, asm.wall_secs, pasm.wall_secs
        );
    }
    report.finish(args.json.as_deref());
}
