//! Table 4 — Gen-Matrix on the multi-attribute query Q5, varying the
//! relation sizes (Section 9.1).
//!
//! Q5 = `R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and
//! R2.B = R3.B`; dI, dS, dA, dB uniform; range (0, 100K); interval lengths
//! (1, 1000); o = 5 per dimension, so 375 of 625 reducers are consistent
//! (the single less-than order is C1 <= C2). Sizes step from
//! (100K, 10K, 100K) to (140K, 14K, 140K).
//!
//! Run: `cargo run --release -p ij-bench --bin table4 [--scale f]`.

use ij_bench::report::{fmt_sim, Report};
use ij_bench::scale::BenchArgs;
use ij_bench::scenarios::{engine, measure};
use ij_core::gen_matrix::GenMatrix;
use ij_core::{JoinInput, OutputMode};
use ij_interval::AllenPredicate::{Before, Equals, Overlaps};
use ij_interval::{Interval, Relation};
use ij_query::query::RelationMeta;
use ij_query::{AttrRef, Condition, JoinQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn q5() -> JoinQuery {
    JoinQuery::with_relations(
        vec![
            RelationMeta {
                name: "R1".into(),
                attr_names: vec!["I".into(), "A".into()],
            },
            RelationMeta {
                name: "R2".into(),
                attr_names: vec!["I".into(), "B".into()],
            },
            RelationMeta {
                name: "R3".into(),
                attr_names: vec!["I".into(), "A".into(), "B".into()],
            },
        ],
        vec![
            Condition::new(AttrRef::new(0, 0), Before, AttrRef::new(1, 0)),
            Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(2, 0)),
            Condition::new(AttrRef::new(0, 1), Equals, AttrRef::new(2, 1)),
            Condition::new(AttrRef::new(1, 1), Equals, AttrRef::new(2, 2)),
        ],
    )
    .unwrap()
}

/// Uniform interval over (0, 100K) with lengths (1, 1000), per the paper.
fn iv(rng: &mut StdRng) -> Interval {
    let len = rng.gen_range(1..=1000i64);
    let s = rng.gen_range(0..=100_000 - len);
    Interval::new_unchecked(s, s + len)
}

/// Uniform real attribute; the paper does not state the domain — 100
/// distinct values keeps the two equi-joins selective but non-degenerate.
fn real(rng: &mut StdRng) -> Interval {
    Interval::point(rng.gen_range(0..100))
}

fn main() {
    let args = BenchArgs::parse(
        0.02,
        "table4: Gen-Matrix on Q5, sizes (100K,10K,100K)..(140K,14K,140K)",
    );
    let engine = engine(args.slots);
    let q = q5();

    let mut report = Report::new(
        "table4",
        "Gen-Matrix on Q5 (multi-attribute)",
        &[
            "nI's",
            "sim Gen-Matrix",
            "pairs",
            "cells",
            "replicated",
            "output",
        ],
    );
    report.note(format!(
        "dI,dS,dA,dB=Uniform range=(0,100K) i_max=1000 o=5 slots={} scale={}",
        args.slots, args.scale
    ));

    for (i, base) in [100u64, 110, 120, 130, 140].into_iter().enumerate() {
        let n13 = args.scale.apply(base * 1000);
        let n2 = args.scale.apply(base * 100);
        let mut rng = StdRng::seed_from_u64(args.seed + i as u64);
        let r1 = Relation::from_rows("R1", (0..n13).map(|_| vec![iv(&mut rng), real(&mut rng)]));
        let r2 = Relation::from_rows("R2", (0..n2).map(|_| vec![iv(&mut rng), real(&mut rng)]));
        let r3 = Relation::from_rows(
            "R3",
            (0..n13).map(|_| vec![iv(&mut rng), real(&mut rng), real(&mut rng)]),
        );
        let input = JoinInput::bind_owned(&q, vec![r1, r2, r3]).unwrap();

        let gm = measure(
            &GenMatrix {
                per_dim: 5,
                mode: OutputMode::Count,
            },
            &q,
            &input,
            &engine,
        );
        let cells = gm
            .consistent_cells
            .map(|(c, t)| format!("{c}/{t}"))
            .unwrap_or_default();
        report.row(vec![
            format!("{n13}, {n2}, {n13}").into(),
            fmt_sim(gm.simulated).into(),
            gm.pairs.into(),
            cells.into(),
            gm.replicated.unwrap_or(0).into(),
            gm.output.into(),
        ]);
        eprintln!("  sizes ({n13},{n2},{n13}): wall {:.2}s", gm.wall_secs);
    }
    report.finish(args.json.as_deref());
}
