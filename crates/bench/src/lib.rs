//! Benchmark harness shared code: result tables, JSON reports and the
//! scenario definitions used by the per-table/figure binaries.

pub mod report;
pub mod scale;
pub mod scenarios;

pub use report::{Report, Row};
pub use scale::Scale;
