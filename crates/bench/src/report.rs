//! Result tables: aligned console output plus machine-readable JSON (used
//! to regenerate EXPERIMENTS.md).

use ij_mapreduce::metrics::names;
use ij_mapreduce::{Counters, ReducerLoad, SkewReport, TelemetrySnapshot};
use serde::Serialize;
use std::io::Write;

/// One measured cell value.
#[derive(Debug, Clone, Serialize)]
#[serde(untagged)]
pub enum Cell {
    /// A plain string (e.g. a trace name).
    Text(String),
    /// An integer count.
    Int(u64),
    /// A float (times, skews, fractions).
    Float(f64),
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => group_thousands(*v),
            Cell::Float(v) => {
                if v.abs() >= 1000.0 {
                    group_thousands(v.round() as u64)
                } else {
                    format!("{v:.2}")
                }
            }
        }
    }
}

fn group_thousands(mut v: u64) -> String {
    let mut parts = Vec::new();
    loop {
        parts.push((v % 1000, ()));
        v /= 1000;
        if v == 0 {
            break;
        }
    }
    parts
        .iter()
        .rev()
        .enumerate()
        .map(|(i, (p, _))| {
            if i == 0 {
                format!("{p}")
            } else {
                format!("{p:03}")
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// One result row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Cell values, parallel to the report's columns.
    pub cells: Vec<Cell>,
}

/// A named result table.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Experiment id (e.g. `"table1"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form notes (workload parameters, scale).
    pub notes: Vec<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// An empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            notes: Vec::new(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a workload note (printed above the table).
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds one row; must match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(Row { cells });
    }

    /// Renders the aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for n in &self.notes {
            out.push_str(&format!("   {n}\n"));
        }
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.cells.iter().map(Cell::render).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for r in &rendered {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&format!("   {}\n", header.join("  ")));
        out.push_str(&format!(
            "   {}\n",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        ));
        for r in &rendered {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            out.push_str(&format!("   {}\n", line.join("  ")));
        }
        out
    }

    /// Prints the table to stdout and optionally writes JSON.
    pub fn finish(&self, json_path: Option<&str>) {
        println!("{}", self.render());
        if let Some(path) = json_path {
            let file =
                std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            let mut w = std::io::BufWriter::new(file);
            serde_json::to_writer_pretty(&mut w, self).expect("serialize report");
            w.flush().expect("flush report");
            eprintln!("(wrote {path})");
        }
    }
}

/// Formats a simulated-time value in engine cost units compactly.
pub fn fmt_sim(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a map/shuffle/reduce wall-clock breakdown compactly, e.g.
/// `"12ms/3.4ms/40ms"` — the per-phase columns added by the partitioned
/// shuffle work.
pub fn fmt_phases(map_secs: f64, shuffle_secs: f64, reduce_secs: f64) -> String {
    format!(
        "{}/{}/{}",
        fmt_secs(map_secs),
        fmt_secs(shuffle_secs),
        fmt_secs(reduce_secs)
    )
}

/// Formats one measurement's spill activity from its `spill.*` counters
/// and spill wall time: `-` when nothing spilled (no budget, or every
/// bucket fit), else `"<buckets>b/<runs>r/<bytes>B <secs>"`.
pub fn fmt_spill(counters: &Counters, spill_secs: f64) -> String {
    let buckets = counters.get(names::SPILL_BUCKETS);
    if buckets == 0 {
        "-".to_string()
    } else {
        format!(
            "{}b/{}r/{}B {}",
            buckets,
            counters.get(names::SPILL_RUNS),
            counters.get(names::SPILL_BYTES),
            fmt_secs(spill_secs)
        )
    }
}

/// Formats one measurement's intra-reduce scheduling activity from its
/// `sched.*` counters: `-` when no reduce phase deviated from one thread
/// per bucket (all grants serial, nothing classified heavy), else
/// `"<granted threads>g/<heavy buckets>h"`. Granted threads sum over
/// every bucket of every MR cycle, so `g` exceeding the bucket count
/// means some bucket really ran multi-threaded.
pub fn fmt_sched(counters: &Counters) -> String {
    let grants = counters.get(names::SCHED_GRANTS);
    if grants == 0 {
        "-".to_string()
    } else {
        format!("{}g/{}h", grants, counters.get(names::SCHED_HEAVY_BUCKETS))
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Summarizes a [`TelemetrySnapshot`] as a one-line report note: job and
/// reducer progress, heartbeat counts, detected stragglers, and the
/// reduce service-time histogram's spread when it was recorded.
pub fn telemetry_note(snap: &TelemetrySnapshot) -> String {
    let s = |name: &str| snap.series.get(name).copied().unwrap_or(0);
    let mut out = format!(
        "telemetry: jobs {}/{} reducers {}/{} heartbeats map={} reduce={} stragglers={}",
        s(names::PROGRESS_JOBS_FINISHED),
        s(names::PROGRESS_JOBS_STARTED),
        s(names::PROGRESS_REDUCERS_DONE),
        s(names::PROGRESS_REDUCERS),
        s(names::HEARTBEATS_MAP),
        s(names::HEARTBEATS_REDUCE),
        s(names::TELEMETRY_STRAGGLERS),
    );
    if let Some(h) = snap.histograms.get(names::REDUCE_SERVICE_NS) {
        if let (Some(min), Some(max)) = (h.min(), h.max()) {
            out.push_str(&format!(" service_ns[min={min} max={max} n={}]", h.count()));
        }
    }
    out
}

/// The column set matching [`skew_row`] — one row per job/cycle, summarizing
/// its per-reducer load distribution (the Section 7 / Figure 4 diagnosis).
pub fn skew_report_table(id: &str, title: &str) -> Report {
    Report::new(
        id,
        title,
        &[
            "cycle", "reducers", "max", "mean", "p50", "p99", "max/mean", "p99/p50", "gini",
            "top keys",
        ],
    )
}

/// Appends one [`SkewReport`] as a row of a [`skew_report_table`].
pub fn skew_row(report: &mut Report, label: &str, s: &SkewReport) {
    report.row(vec![
        label.into(),
        s.reducers.into(),
        s.max.into(),
        s.mean.into(),
        s.p50.into(),
        s.p99.into(),
        s.max_mean_ratio.into(),
        s.p99_p50_ratio.into(),
        s.gini.into(),
        fmt_top_keys(&s.top).into(),
    ]);
}

/// Formats the top-k heaviest reducers compactly: `"7:1,200 3:800"`.
fn fmt_top_keys(top: &[(u64, u64)]) -> String {
    top.iter()
        .map(|(k, v)| format!("{k}:{}", group_thousands(*v)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// An ASCII per-reducer load histogram: one bar per reducer (key order),
/// scaled so the heaviest fills `width` characters. The visual counterpart
/// of Figure 4's per-reducer bar chart.
pub fn load_histogram(loads: &[ReducerLoad], width: usize) -> String {
    let max = loads.iter().map(|l| l.pairs_received).max().unwrap_or(0);
    let key_w = loads
        .iter()
        .map(|l| l.key.to_string().len())
        .max()
        .unwrap_or(1);
    let count_w = loads
        .iter()
        .map(|l| group_thousands(l.pairs_received).len())
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for l in loads {
        let bar = if max == 0 {
            0
        } else {
            // At least one mark for any loaded reducer.
            ((l.pairs_received as f64 / max as f64) * width as f64).round() as usize
        }
        .max(usize::from(l.pairs_received > 0));
        out.push_str(&format!(
            "   {key:>key_w$}  {count:>count_w$}  {}\n",
            "#".repeat(bar),
            key = l.key,
            count = group_thousands(l.pairs_received),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_spill_shows_dash_without_spills() {
        let mut c = Counters::new();
        assert_eq!(fmt_spill(&c, 0.0), "-");
        c.inc("spill.buckets", 2);
        c.inc("spill.runs", 5);
        c.inc("spill.bytes", 4096);
        let s = fmt_spill(&c, 0.25);
        assert!(s.starts_with("2b/5r/4096B"), "{s}");
    }

    #[test]
    fn fmt_sched_shows_dash_without_grants() {
        let mut c = Counters::new();
        assert_eq!(fmt_sched(&c), "-");
        c.inc("sched.grants", 21);
        c.inc("sched.heavy_buckets", 2);
        assert_eq!(fmt_sched(&c), "21g/2h");
    }

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("t", "demo", &["name", "count"]);
        r.note("note1");
        r.row(vec!["a".into(), 5u64.into()]);
        r.row(vec!["bbbb".into(), 123_456u64.into()]);
        let s = r.render();
        assert!(s.contains("note1"));
        assert!(s.contains("123,456"));
        assert!(s.contains("name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut r = Report::new("t", "demo", &["a", "b"]);
        r.row(vec!["x".into()]);
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn sim_formatting() {
        assert_eq!(fmt_sim(12.0), "12");
        assert_eq!(fmt_sim(1234.0), "1.2K");
        assert_eq!(fmt_sim(2_500_000.0), "2.50M");
        assert_eq!(fmt_sim(3.2e9), "3.20G");
    }

    #[test]
    fn phase_formatting() {
        assert_eq!(fmt_phases(1.25, 0.0123, 0.000045), "1.25s/12.3ms/45us");
    }

    #[test]
    fn skew_rows_render() {
        let loads: Vec<ReducerLoad> = [10u64, 10, 10, 970]
            .iter()
            .enumerate()
            .map(|(i, &p)| ReducerLoad {
                key: i as u64,
                pairs_received: p,
                work: 0,
                output: 0,
                attempts: 1,
            })
            .collect();
        let s = SkewReport::from_loads(&loads, 2);
        let mut rep = skew_report_table("skew", "demo");
        skew_row(&mut rep, "join", &s);
        let rendered = rep.render();
        assert!(rendered.contains("max/mean"), "{rendered}");
        assert!(rendered.contains("gini"), "{rendered}");
        assert!(rendered.contains("3:970"), "top keys listed: {rendered}");
        assert!(rendered.contains("970"), "{rendered}");
    }

    #[test]
    fn histogram_scales_bars() {
        let loads: Vec<ReducerLoad> = [100u64, 50, 0, 1]
            .iter()
            .enumerate()
            .map(|(i, &p)| ReducerLoad {
                key: i as u64,
                pairs_received: p,
                work: 0,
                output: 0,
                attempts: 1,
            })
            .collect();
        let h = load_histogram(&loads, 20);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(&"#".repeat(20)), "{h}");
        assert!(lines[1].contains(&"#".repeat(10)), "{h}");
        assert!(!lines[2].contains('#'), "zero load draws no bar: {h}");
        assert!(lines[3].contains('#'), "tiny load still visible: {h}");
        assert!(load_histogram(&[], 10).is_empty());
    }

    #[test]
    fn telemetry_note_summarizes_progress_and_service_time() {
        let mut snap = TelemetrySnapshot::default();
        let empty = telemetry_note(&snap);
        assert!(empty.contains("jobs 0/0"), "{empty}");
        assert!(!empty.contains("service_ns"), "{empty}");
        snap.series.insert("progress.jobs_started".into(), 3);
        snap.series.insert("progress.jobs_finished".into(), 3);
        snap.series.insert("progress.reducers".into(), 16);
        snap.series.insert("progress.reducers_done".into(), 16);
        snap.series.insert("telemetry.stragglers".into(), 2);
        let mut h = ij_mapreduce::Histogram::new();
        h.record(100);
        h.record(900);
        snap.histograms.insert("reduce.service_ns".into(), h);
        let note = telemetry_note(&snap);
        assert!(note.contains("jobs 3/3"), "{note}");
        assert!(note.contains("reducers 16/16"), "{note}");
        assert!(note.contains("stragglers=2"), "{note}");
        assert!(note.contains("service_ns[min=100 max=900 n=2]"), "{note}");
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("t", "demo", &["a"]);
        r.row(vec![1u64.into()]);
        let js = serde_json::to_string(&r).unwrap();
        assert!(js.contains("\"id\": \"t\"") || js.contains("\"id\":\"t\""));
    }
}
