//! Scaling the paper's workload sizes to the host machine.
//!
//! The paper's experiments run at cluster scale (up to 5M intervals and 3M
//! packet trains). Every bench binary accepts `--scale f` (default: a
//! binary-specific laptop-friendly value) and multiplies the paper's counts
//! by `f`; `--scale 1.0` reproduces the paper's sizes exactly. The quantity
//! being reproduced is the *shape* of each table — which algorithm wins and
//! by roughly what factor — which is preserved under scaling because the
//! compared costs (communication volume, straggler load, intermediate
//! result size) scale together.

use ij_mapreduce::SchedPolicy;
use std::fmt;

/// A scale factor with helpers for applying it to the paper's counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Applies the factor to a count, keeping at least 1.
    pub fn apply(&self, paper_count: u64) -> usize {
        ((paper_count as f64 * self.0).round() as usize).max(1)
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Minimal CLI argument parser shared by the bench binaries.
///
/// Recognized flags: `--scale <f64>`, `--seed <u64>`, `--json <path>`,
/// `--slots <usize>`, `--trace <path>`, `--budget <bytes>`,
/// `--metrics-out <path>`, `--sched <policy>`, `--help`.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload scale relative to the paper.
    pub scale: Scale,
    /// RNG seed.
    pub seed: u64,
    /// Where to write the machine-readable results (JSON), if anywhere.
    pub json: Option<String>,
    /// Reduce slots of the simulated cluster (paper: 16).
    pub slots: usize,
    /// Where to write a Chrome trace-event JSON of every job run (open in
    /// `chrome://tracing` or Perfetto), if anywhere.
    pub trace: Option<String>,
    /// Reduce-memory budget in approx bytes per reducer bucket; buckets
    /// exceeding it spill to the Dfs. `None` (the default) keeps every
    /// bucket in memory.
    pub budget: Option<u64>,
    /// Where to write the live-telemetry snapshot in Prometheus text
    /// exposition format after the run, if anywhere. Setting this also
    /// attaches the telemetry plane to the engine.
    pub metrics_out: Option<String>,
    /// Intra-reduce thread-grant policy (`uniform` | `skew` | `serial`);
    /// defaults to the engine's skew-driven scheduler. Output bytes are
    /// policy-invariant — only wall-clock and the `sched.*` counters move.
    pub sched: SchedPolicy,
}

impl BenchArgs {
    /// Parses `std::env::args`, with a binary-specific default scale.
    /// Prints usage and exits on `--help` or parse errors.
    pub fn parse(default_scale: f64, about: &str) -> BenchArgs {
        Self::parse_from(std::env::args().skip(1), default_scale, about)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}\n");
                eprintln!("{about}");
                eprintln!(
                    "flags: --scale <f64>  (default {default_scale}; 1.0 = paper scale)\n       --seed <u64>   (default 42)\n       --json <path>  (write results as JSON)\n       --slots <n>    (reduce slots, default 16)\n       --trace <path> (write a Chrome trace of every job)\n       --budget <u64> (reduce-memory budget in bytes; oversized buckets spill)\n       --metrics-out <path> (write a Prometheus text snapshot of the run's telemetry)\n       --sched <uniform|skew|serial> (intra-reduce grant policy, default skew)"
                );
                std::process::exit(2);
            })
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        default_scale: f64,
        about: &str,
    ) -> Result<BenchArgs, String> {
        let mut out = BenchArgs {
            scale: Scale(default_scale),
            seed: 42,
            json: None,
            slots: 16,
            trace: None,
            budget: None,
            metrics_out: None,
            sched: SchedPolicy::default(),
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--scale" => {
                    out.scale = Scale(
                        value("--scale")?
                            .parse::<f64>()
                            .map_err(|e| format!("--scale: {e}"))?,
                    );
                    if out.scale.0 <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--json" => out.json = Some(value("--json")?),
                "--budget" => {
                    out.budget = Some(
                        value("--budget")?
                            .parse()
                            .map_err(|e| format!("--budget: {e}"))?,
                    )
                }
                "--trace" => out.trace = Some(value("--trace")?),
                "--metrics-out" => out.metrics_out = Some(value("--metrics-out")?),
                "--sched" => {
                    out.sched = value("--sched")?
                        .parse()
                        .map_err(|e| format!("--sched: {e}"))?
                }
                "--slots" => {
                    out.slots = value("--slots")?
                        .parse()
                        .map_err(|e| format!("--slots: {e}"))?
                }
                "--help" | "-h" => return Err(about.to_string()),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(sv(&[]), 0.05, "t").unwrap();
        assert_eq!(a.scale.0, 0.05);
        assert_eq!(a.seed, 42);
        assert_eq!(a.slots, 16);
        assert!(a.json.is_none());
        assert!(a.trace.is_none());
        assert!(a.budget.is_none());
        assert!(a.metrics_out.is_none());
        assert_eq!(a.sched, SchedPolicy::SkewDriven);
    }

    #[test]
    fn parses_flags() {
        let a = BenchArgs::parse_from(
            sv(&[
                "--scale",
                "0.5",
                "--seed",
                "7",
                "--json",
                "out.json",
                "--slots",
                "4",
                "--trace",
                "t.json",
                "--budget",
                "4096",
                "--metrics-out",
                "m.prom",
                "--sched",
                "uniform",
            ]),
            0.05,
            "t",
        )
        .unwrap();
        assert_eq!(a.scale.0, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.slots, 4);
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert_eq!(a.budget, Some(4096));
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(a.sched, SchedPolicy::Uniform);
    }

    #[test]
    fn sched_parses_every_policy_and_rejects_unknown() {
        for (flag, want) in [
            ("uniform", SchedPolicy::Uniform),
            ("skew", SchedPolicy::SkewDriven),
            ("serial", SchedPolicy::AllSerial),
        ] {
            let a = BenchArgs::parse_from(sv(&["--sched", flag]), 0.1, "t").unwrap();
            assert_eq!(a.sched, want);
        }
        assert!(BenchArgs::parse_from(sv(&["--sched"]), 0.1, "t").is_err());
        assert!(BenchArgs::parse_from(sv(&["--sched", "greedy"]), 0.1, "t").is_err());
    }

    #[test]
    fn metrics_out_needs_a_value() {
        assert!(BenchArgs::parse_from(sv(&["--metrics-out"]), 0.1, "t").is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(BenchArgs::parse_from(sv(&["--scale"]), 0.1, "t").is_err());
        assert!(BenchArgs::parse_from(sv(&["--scale", "-1"]), 0.1, "t").is_err());
        assert!(BenchArgs::parse_from(sv(&["--wat"]), 0.1, "t").is_err());
        assert!(BenchArgs::parse_from(sv(&["--budget", "x"]), 0.1, "t").is_err());
    }

    #[test]
    fn scale_applies_with_floor() {
        assert_eq!(Scale(0.01).apply(500_000), 5000);
        assert_eq!(Scale(1e-9).apply(10), 1);
    }
}
