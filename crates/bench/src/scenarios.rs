//! Shared measurement plumbing for the per-table/figure binaries.

use ij_core::{Algorithm, JoinInput, JoinOutput};
use ij_mapreduce::{ClusterConfig, Counters, Engine, SchedConfig, SchedPolicy, Telemetry, Tracer};
use ij_query::JoinQuery;
use std::sync::Arc;
use std::time::Instant;

/// One algorithm measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Simulated cluster time (cost units), summed across cycles.
    pub simulated: f64,
    /// Real wall-clock seconds of the in-process run.
    pub wall_secs: f64,
    /// Map-phase wall-clock seconds, summed across cycles.
    pub map_secs: f64,
    /// Shuffle (run-merge) wall-clock seconds, summed across cycles.
    pub shuffle_secs: f64,
    /// Reduce-phase wall-clock seconds, summed across cycles.
    pub reduce_secs: f64,
    /// Spill I/O wall-clock seconds, summed across cycles (zero unless a
    /// reduce-memory budget made buckets spill).
    pub spill_secs: f64,
    /// Total intermediate key-value pairs across cycles.
    pub pairs: u64,
    /// Output tuple count.
    pub output: u64,
    /// Intervals replicated (if the algorithm reports it).
    pub replicated: Option<u64>,
    /// Worst per-cycle load skew.
    pub skew: f64,
    /// Consistent cells used / total, when the algorithm is matrix-based.
    pub consistent_cells: Option<(u64, u64)>,
    /// User counters summed across the algorithm's cycles (replicas,
    /// crossing intervals, candidate vs emitted pairs, …).
    pub counters: Counters,
    /// The raw output (for cross-checking between algorithms).
    pub out: JoinOutput,
}

/// Builds the simulated cluster (the paper runs 16 reduce processes).
pub fn engine(slots: usize) -> Engine {
    Engine::new(ClusterConfig::with_slots(slots))
}

/// Builds the simulated cluster, attaching a [`Tracer`] when `traced` —
/// the `--trace <path>` path of the bench binaries — and applying the
/// `--budget <bytes>` reduce-memory budget when given (oversized reducer
/// buckets then spill to the Dfs and `spill.*` counters appear in the
/// tables). The tracer records every job run against the engine; dump it
/// with [`write_trace`].
pub fn traced_engine(
    slots: usize,
    traced: bool,
    budget: Option<u64>,
) -> (Engine, Option<Arc<Tracer>>) {
    let (engine, tracer, _) =
        instrumented_engine(slots, traced, budget, false, SchedPolicy::default());
    (engine, tracer)
}

/// [`traced_engine`] plus the live-telemetry plane: when `metrics`, a
/// [`Telemetry`] instance (monotonic clock, default heartbeat/straggler
/// config) is attached to the engine, accumulating progress gauges,
/// histograms and flight-recorder events across every job run. Dump the
/// final snapshot with [`write_metrics`] — the `--metrics-out <path>`
/// path of the bench binaries. `sched` selects the intra-reduce grant
/// policy (the `--sched` flag); output bytes are policy-invariant, so the
/// tables only move in wall-clock and the `sched.*` counters.
pub fn instrumented_engine(
    slots: usize,
    traced: bool,
    budget: Option<u64>,
    metrics: bool,
    sched: SchedPolicy,
) -> (Engine, Option<Arc<Tracer>>, Option<Arc<Telemetry>>) {
    let mut engine = Engine::new(ClusterConfig {
        reduce_memory_budget: budget,
        sched: SchedConfig::with_policy(sched),
        ..ClusterConfig::with_slots(slots)
    });
    let tracer = if traced {
        let tracer = Arc::new(Tracer::new());
        engine = engine.with_tracer(tracer.clone());
        Some(tracer)
    } else {
        None
    };
    let telemetry = if metrics {
        let telemetry = Arc::new(Telemetry::new());
        engine = engine.with_telemetry(Arc::clone(&telemetry));
        Some(telemetry)
    } else {
        None
    };
    (engine, tracer, telemetry)
}

/// Writes the telemetry snapshot to `path` in Prometheus text exposition
/// format (no-op without an attached telemetry plane).
pub fn write_metrics(path: Option<&str>, telemetry: &Option<Arc<Telemetry>>) {
    if let (Some(path), Some(tel)) = (path, telemetry) {
        let snap = tel.snapshot();
        std::fs::write(path, snap.to_prometheus())
            .unwrap_or_else(|e| panic!("cannot write metrics {path}: {e}"));
        eprintln!(
            "(wrote {path}: {} series, {} histograms — Prometheus text format)",
            snap.series.len(),
            snap.histograms.len()
        );
    }
}

/// Writes the accumulated Chrome trace to `path` (no-op without a tracer).
pub fn write_trace(path: Option<&str>, tracer: &Option<Arc<Tracer>>) {
    if let (Some(path), Some(t)) = (path, tracer) {
        t.write_chrome_trace(path)
            .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
        eprintln!(
            "(wrote {path}: {} spans — open in chrome://tracing or ui.perfetto.dev)",
            t.len()
        );
    }
}

/// Runs one algorithm and collects the table-relevant numbers.
///
/// # Panics
/// Panics if the algorithm rejects the query — bench scenarios only pair
/// algorithms with the query classes they support.
pub fn measure(
    alg: &dyn Algorithm,
    q: &JoinQuery,
    input: &JoinInput,
    engine: &Engine,
) -> Measurement {
    let start = Instant::now();
    let out = alg
        .run(q, input, engine)
        .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
    let wall_secs = start.elapsed().as_secs_f64();
    Measurement {
        algorithm: alg.name(),
        simulated: out.chain.total_simulated(),
        wall_secs,
        map_secs: out.chain.total_map_wall().as_secs_f64(),
        shuffle_secs: out.chain.total_shuffle_wall().as_secs_f64(),
        reduce_secs: out.chain.total_reduce_wall().as_secs_f64(),
        spill_secs: out.chain.total_spill_wall().as_secs_f64(),
        pairs: out.chain.total_pairs(),
        output: out.count,
        replicated: out.stats.replicated_intervals,
        skew: out.chain.worst_skew(),
        consistent_cells: out.stats.consistent_cells,
        counters: out.chain.total_counters(),
        out,
    }
}

/// Asserts that all measurements produced the same output count — the
/// harness's built-in cross-check that the compared algorithms computed the
/// same join.
pub fn assert_same_output(ms: &[Measurement]) {
    if let Some(first) = ms.first() {
        for m in &ms[1..] {
            assert_eq!(
                m.output, first.output,
                "{} and {} disagree on the join size",
                m.algorithm, first.algorithm
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_core::two_way::TwoWayJoin;
    use ij_core::OutputMode;
    use ij_interval::{AllenPredicate::Overlaps, Interval, Relation};

    #[test]
    fn measure_runs_and_counts() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 10).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(5, 15).unwrap()]),
            ],
        )
        .unwrap();
        let e = engine(4);
        let alg = TwoWayJoin {
            partitions: 4,
            mode: OutputMode::Count,
        };
        let m = measure(&alg, &q, &input, &e);
        assert_eq!(m.output, 1);
        assert!(m.simulated > 0.0);
        assert_same_output(&[m.clone(), m]);
    }

    #[test]
    fn traced_engine_records_jobs_and_writes_chrome_json() {
        let (e, tracer) = traced_engine(4, true, None);
        assert!(tracer.is_some());
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 10).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(5, 15).unwrap()]),
            ],
        )
        .unwrap();
        let alg = TwoWayJoin {
            partitions: 4,
            mode: OutputMode::Count,
        };
        let m = measure(&alg, &q, &input, &e);
        assert_eq!(m.output, 1);
        let t = tracer.as_ref().unwrap();
        assert!(
            !t.is_empty(),
            "jobs run against a traced engine leave spans"
        );
        let path = std::env::temp_dir().join("ij_bench_trace_test.json");
        write_trace(path.to_str(), &tracer);
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("{\"traceEvents\":["));
        let _ = std::fs::remove_file(&path);

        let (_, no_tracer) = traced_engine(4, false, None);
        assert!(no_tracer.is_none());
        write_trace(None, &no_tracer); // no-op must not panic
    }

    #[test]
    fn instrumented_engine_collects_telemetry_and_writes_prometheus() {
        let (e, _, telemetry) = instrumented_engine(4, false, None, true, SchedPolicy::default());
        assert!(telemetry.is_some());
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 10).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(5, 15).unwrap()]),
            ],
        )
        .unwrap();
        let alg = TwoWayJoin {
            partitions: 4,
            mode: OutputMode::Count,
        };
        let m = measure(&alg, &q, &input, &e);
        assert_eq!(m.output, 1);
        let tel = telemetry.as_ref().unwrap();
        let snap = tel.snapshot();
        assert!(snap.series["progress.jobs_finished"] > 0);
        let path = std::env::temp_dir().join("ij_bench_metrics_test.prom");
        write_metrics(path.to_str(), &telemetry);
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("# TYPE ij_progress_jobs_started gauge"));
        assert!(written.contains("ij_telemetry_stragglers"));
        let _ = std::fs::remove_file(&path);

        let (_, _, no_tel) = instrumented_engine(4, false, None, false, SchedPolicy::Uniform);
        assert!(no_tel.is_none());
        write_metrics(None, &no_tel); // no-op must not panic
    }

    #[test]
    fn budgeted_engine_spills_and_reports_spill_time() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let many: Vec<Interval> = (0..200)
            .map(|i| Interval::new(i, i + 300).unwrap())
            .collect();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", many.clone()),
                Relation::from_intervals("B", many),
            ],
        )
        .unwrap();
        let alg = TwoWayJoin {
            partitions: 2,
            mode: OutputMode::Count,
        };
        let (unbudgeted, _) = traced_engine(4, false, None);
        let base = measure(&alg, &q, &input, &unbudgeted);
        assert_eq!(base.counters.get("spill.buckets"), 0);
        assert_eq!(base.spill_secs, 0.0);

        let (budgeted, _) = traced_engine(4, false, Some(64));
        let m = measure(&alg, &q, &input, &budgeted);
        assert_eq!(m.output, base.output, "budget must not change the join");
        assert!(m.counters.get("spill.buckets") > 0);
        assert!(m.spill_secs > 0.0);
    }
}
