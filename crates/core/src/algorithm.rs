//! The [`Algorithm`] trait and shared plumbing for the join algorithms.

use crate::input::JoinInput;
use crate::output::JoinOutput;
use crate::records::IvRec;
use ij_interval::{Interval, Partitioning, RelId};
use ij_mapreduce::Engine;
use ij_query::JoinQuery;
use std::fmt;

/// Error running a join algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoError {
    /// The algorithm does not support this query class.
    Unsupported {
        /// The algorithm's name.
        algorithm: &'static str,
        /// Why the query is out of scope.
        reason: String,
    },
    /// Bad tuning parameter (zero partitions, …).
    BadConfig(String),
    /// A map-reduce cycle failed inside the engine (retry budget exhausted
    /// under fault injection, or an engine invariant breached).
    Engine(ij_mapreduce::EngineError),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::Unsupported { algorithm, reason } => {
                write!(f, "{algorithm} does not support this query: {reason}")
            }
            AlgoError::BadConfig(m) => write!(f, "bad algorithm configuration: {m}"),
            AlgoError::Engine(e) => write!(f, "map-reduce cycle failed: {e}"),
        }
    }
}

impl std::error::Error for AlgoError {}

impl From<ij_mapreduce::EngineError> for AlgoError {
    fn from(e: ij_mapreduce::EngineError) -> Self {
        AlgoError::Engine(e)
    }
}

/// A MapReduce join algorithm.
pub trait Algorithm {
    /// Short name for reports (`"RCCIS"`, `"All-Matrix"`, …).
    fn name(&self) -> &'static str;

    /// Runs the join of `input` under `query` on `engine`.
    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError>;
}

/// How the 1-D partitioning boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Equal-width partitions over the data span — the paper's setting.
    #[default]
    EquiWidth,
    /// Quantile (equi-depth) boundaries over the interval start points —
    /// keeps reducer loads balanced under skewed `dS` (Section 2's remark
    /// that skewed data "will need to be processed differently").
    EquiDepth,
}

/// Artifacts shared by the algorithm implementations: the global
/// partitioning and the flattened single-attribute input records.
pub struct RunArtifacts {
    /// The 1-D partitioning of the joint time span.
    pub partitioning: Partitioning,
}

impl RunArtifacts {
    /// Builds a `k`-partition equi-width partitioning over the input's
    /// attribute-0 span. The span is widened by one tick so the maximal end
    /// point lies inside the final partition.
    pub fn partition_span(span: Interval, k: usize) -> Result<Partitioning, AlgoError> {
        let k = k.max(1);
        let t0 = span.start();
        // Ensure at least k representable points.
        let tn = (span.end() + 1).max(t0 + k as i64);
        Partitioning::equi_width(t0, tn, k)
            .map_err(|e| AlgoError::BadConfig(format!("cannot partition span {span}: {e}")))
    }

    /// Builds a `k`-partitioning over the input's attribute-0 span using
    /// the given strategy (equi-depth samples every start point).
    pub fn partition_input(
        input: &JoinInput,
        k: usize,
        strategy: PartitionStrategy,
    ) -> Result<Partitioning, AlgoError> {
        let span = input.span();
        match strategy {
            PartitionStrategy::EquiWidth => Self::partition_span(span, k),
            PartitionStrategy::EquiDepth => {
                let starts: Vec<ij_interval::Time> = input
                    .relations()
                    .iter()
                    .flat_map(|r| r.tuples().iter().map(|t| t.interval().start()))
                    .collect();
                let t0 = span.start();
                let tn = (span.end() + 1).max(t0 + k.max(1) as i64);
                Partitioning::equi_depth(t0, tn, k.max(1), &starts)
                    .map_err(|e| AlgoError::BadConfig(format!("cannot partition span {span}: {e}")))
            }
        }
    }
}

/// Flattens the input into [`IvRec`]s (attribute 0), the record stream every
/// single-attribute job maps over.
pub fn iv_records(input: &JoinInput) -> Vec<IvRec> {
    let mut recs = Vec::with_capacity(input.total_tuples());
    for (r, rel) in input.relations().iter().enumerate() {
        for t in rel.tuples() {
            recs.push(IvRec {
                rel: RelId(r as u16),
                tid: t.id,
                iv: t.interval(),
            });
        }
    }
    recs
}

/// Requires a query to be single-attribute (classes Colocation, Sequence,
/// Hybrid), returning an [`AlgoError`] otherwise.
pub fn require_single_attr(algorithm: &'static str, q: &JoinQuery) -> Result<(), AlgoError> {
    if q.class() == ij_query::QueryClass::General {
        Err(AlgoError::Unsupported {
            algorithm,
            reason: "query uses multiple attributes; use Gen-Matrix".into(),
        })
    } else {
        Ok(())
    }
}

/// Short-circuit for provably unsatisfiable queries (contradictory
/// less-than orders, Section 9): returns an empty output with no cycles.
pub fn empty_output(mode: crate::output::OutputMode) -> JoinOutput {
    JoinOutput::from_records(mode, Vec::new(), ij_mapreduce::JobChain::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Relation;

    #[test]
    fn partition_span_widens_to_cover_end() {
        let p = RunArtifacts::partition_span(Interval::new(0, 99).unwrap(), 4).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.index_of(99), 3);
    }

    #[test]
    fn partition_span_handles_tiny_spans() {
        let p = RunArtifacts::partition_span(Interval::new(5, 5).unwrap(), 8).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.index_of(5), 0);
    }

    #[test]
    fn iv_records_flatten_in_relation_order() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals(
                    "B",
                    vec![Interval::new(2, 3).unwrap(), Interval::new(4, 5).unwrap()],
                ),
            ],
        )
        .unwrap();
        let recs = iv_records(&input);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].rel, RelId(0));
        assert_eq!(
            recs[2],
            IvRec {
                rel: RelId(1),
                tid: 1,
                iv: Interval::new(4, 5).unwrap()
            }
        );
    }

    #[test]
    fn require_single_attr_rejects_general() {
        use ij_query::{AttrRef, Condition};
        let q = JoinQuery::with_relations(
            vec![
                ij_query::query::RelationMeta {
                    name: "R1".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
                ij_query::query::RelationMeta {
                    name: "R2".into(),
                    attr_names: vec!["I".into()],
                },
            ],
            vec![Condition::new(
                AttrRef::new(0, 1),
                Equals,
                AttrRef::new(1, 0),
            )],
        )
        .unwrap();
        assert!(require_single_attr("T", &q).is_err());
        assert!(require_single_attr("T", &JoinQuery::chain(&[Overlaps]).unwrap()).is_ok());
    }
}
