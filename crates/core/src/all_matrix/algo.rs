//! The All-Matrix algorithm (Section 7.1).
//!
//! One MR cycle. Each relation is a dimension of the reducer matrix; an
//! interval of relation `k` starting in partition `q` is sent to every
//! *consistent* cell whose k-th coordinate is `q` (conditions D1 and D2).
//! Each output tuple is computed at exactly one cell — the vector of its
//! members' start partitions — so no ownership filter is needed.
//!
//! Presented in the paper for sequence queries, where it fixes All-Rep's
//! load skew by spreading the heavy right-most work across a whole face of
//! the matrix; the routing is in fact correct for *any* single-attribute
//! query (colocation predicates just make most cells empty), which we use
//! for cross-validation in tests.

use crate::algorithm::{
    empty_output, iv_records, require_single_attr, AlgoError, Algorithm, RunArtifacts,
};
use crate::all_matrix::cells::CellSpace;
use crate::executor::Candidates;
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{IvRec, OutRec};
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::{AttrRef, JoinQuery};

/// The All-Matrix algorithm.
#[derive(Debug, Clone)]
pub struct AllMatrix {
    /// Partitions per dimension, `o` in the paper (the matrix has
    /// `o^m` cells).
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
    /// Prune inconsistent cells (condition D1). Disabling this is an
    /// ablation: the join stays correct (reducers verify the predicates
    /// and routing still sends each tuple to one owner cell), but data is
    /// shuffled to cells that can never produce output — measuring exactly
    /// what the less-than-order pruning saves.
    pub prune_inconsistent: bool,
}

impl AllMatrix {
    /// All-Matrix with `o = per_dim`, materializing output.
    pub fn new(per_dim: usize) -> Self {
        AllMatrix {
            per_dim,
            mode: OutputMode::Materialize,
            prune_inconsistent: true,
        }
    }

    /// The ordering constraints between relation dimensions: `(j, k)` when
    /// `s_{Rj} <= s_{Rk}` is provable (sound inconsistent-reducer pruning;
    /// see `ij_query::order`).
    fn constraints(q: &JoinQuery) -> Vec<(usize, usize)> {
        let order = q.start_order();
        let m = q.num_relations() as usize;
        let mut out = Vec::new();
        for j in 0..m {
            for k in 0..m {
                if j != k && order.le_start(AttrRef::whole(j as u16), AttrRef::whole(k as u16)) {
                    out.push((j, k));
                }
            }
        }
        out
    }
}

impl Algorithm for AllMatrix {
    fn name(&self) -> &'static str {
        "All-Matrix"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        let order = query.start_order();
        if order.contradictory() {
            return Ok(empty_output(self.mode));
        }
        let m = query.num_relations() as usize;
        let part = RunArtifacts::partition_span(input.span(), self.per_dim)?;
        let constraints = if self.prune_inconsistent {
            Self::constraints(query)
        } else {
            Vec::new()
        };
        let space = CellSpace::new(m, self.per_dim, constraints)?;
        let consistent = space.consistent_cells().len() as u64;
        let total = space.total_cells();

        let mode = self.mode;
        let q = query.clone();
        let partc = part.clone();
        let spacec = space.clone();
        let out = engine.run_job(
            "all-matrix",
            &iv_records(input),
            move |rec: &IvRec, em: &mut Emitter<IvRec>| {
                let qidx = partc.index_of(rec.iv.start());
                em.emit_to_all(spacec.cells_eq(rec.rel.idx(), qidx).iter().copied(), rec);
            },
            move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
                let mut cands = Candidates::new(m);
                for v in values.by_ref() {
                    cands.push(v.rel.idx(), v.iv, v.tid);
                }
                cands.finish();
                let mut count = 0u64;
                kernel::reduce_join(
                    ctx,
                    &q,
                    &cands,
                    |_| true,
                    |a| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                        }
                    },
                );
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;

        let mut chain = JobChain::new();
        chain.push(out.metrics);
        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.consistent_cells = Some((consistent, total));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_replicate::AllReplicate;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::{self, *};
    use ij_interval::{Interval, Relation};
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check(preds: &[AllenPredicate], seed: u64, n: usize, o: usize) {
        let q = JoinQuery::chain(preds).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 40))
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let got = AllMatrix::new(o)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input), "preds {preds:?}");
    }

    #[test]
    fn q2_before_chain_matches_oracle() {
        check(&[Before, Before], 1, 50, 6);
    }

    #[test]
    fn two_way_before_matches_oracle() {
        check(&[Before], 2, 100, 8);
    }

    #[test]
    fn works_on_colocation_queries_too() {
        // Not the paper's use, but the routing is valid for any
        // single-attribute query — a useful cross-check of the machinery.
        check(&[Overlaps, Overlaps], 3, 40, 5);
        check(&[Overlaps, Before], 4, 40, 5);
    }

    #[test]
    fn consistent_cell_stats_reported() {
        let q = JoinQuery::chain(&[Before, Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rels = (0..3).map(|_| random_rel(&mut rng, 20, 200, 10)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let out = AllMatrix::new(6).run(&q, &input, &engine()).unwrap();
        // 56 of 216 (paper reports 55; see DESIGN.md §5).
        assert_eq!(out.stats.consistent_cells, Some((56, 216)));
    }

    #[test]
    fn better_balanced_than_all_rep_on_sequence() {
        // Figure 4's claim, quantified: on `before`, All-Matrix spreads the
        // load that All-Rep piles on the rightmost reducer.
        let q = JoinQuery::chain(&[Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 600, 1200, 10),
                random_rel(&mut rng, 600, 1200, 10),
            ],
        )
        .unwrap();
        let am = AllMatrix::new(3).run(&q, &input, &engine()).unwrap();
        // All-Rep with a similar number of reducers (6 consistent cells).
        let ar = AllReplicate::new(6).run(&q, &input, &engine()).unwrap();
        assert_eq!(am.assert_no_duplicates(), ar.assert_no_duplicates());
        let am_skew = am.chain.cycles[0].skew();
        let ar_skew = ar.chain.cycles[0].skew();
        assert!(
            am_skew < ar_skew,
            "All-Matrix skew {am_skew} should beat All-Rep {ar_skew}"
        );
    }

    #[test]
    fn contradictory_query_empty() {
        let q = JoinQuery::new(
            2,
            vec![
                ij_query::Condition::whole(0, Before, 1),
                ij_query::Condition::whole(1, Before, 0),
            ],
        )
        .unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(2, 3).unwrap()]),
            ],
        )
        .unwrap();
        let out = AllMatrix::new(4).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.count, 0);
        assert_eq!(out.chain.num_cycles(), 0);
    }

    #[test]
    fn equal_start_predicates_work() {
        // starts/equals put both relations in the same partition index —
        // constraints in both directions.
        check(&[Starts], 7, 60, 5);
        check(&[Equals], 8, 60, 5);
    }
}
