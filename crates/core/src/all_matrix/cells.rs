//! The m-dimensional reducer matrix and its consistent cells.
//!
//! All-Matrix visualizes reducers as cells of the m-dimensional
//! cross-product space, each dimension divided into `o` partitions; a cell
//! is identified by the m-tuple of its per-dimension indices. A cell is
//! *consistent* (Section 7.1) when its indices respect every less-than
//! order between dimensions: `dim_j <= dim_k` constraints force
//! `coord_j <= coord_k`. Map functions never send anything to inconsistent
//! cells — the communication saving of the matrix algorithms.

use crate::algorithm::AlgoError;
use ij_mapreduce::ReducerId;

/// Maximum cells we are willing to enumerate (`o^m` grows quickly).
const MAX_CELLS: u64 = 4_000_000;

/// An m-dimensional reducer matrix with per-dimension ordering constraints.
#[derive(Debug, Clone)]
pub struct CellSpace {
    dims: usize,
    per_dim: usize,
    constraints: Vec<(usize, usize)>,
    /// Consistent cells, encoded, ascending.
    consistent: Vec<ReducerId>,
    /// `by_eq[d][q]`: consistent cells with `coord[d] == q`.
    by_eq: Vec<Vec<Vec<ReducerId>>>,
    /// `by_ge[d][q]`: consistent cells with `coord[d] >= q`.
    by_ge: Vec<Vec<Vec<ReducerId>>>,
}

impl CellSpace {
    /// Builds the matrix: `dims` dimensions of `per_dim` partitions each,
    /// with `constraints` of the form `(j, k)` meaning `coord_j <= coord_k`.
    pub fn new(
        dims: usize,
        per_dim: usize,
        constraints: Vec<(usize, usize)>,
    ) -> Result<Self, AlgoError> {
        if dims == 0 || per_dim == 0 {
            return Err(AlgoError::BadConfig(
                "cell space needs dims, per_dim >= 1".into(),
            ));
        }
        let total = (per_dim as u64).checked_pow(dims as u32);
        match total {
            Some(t) if t <= MAX_CELLS => {}
            _ => {
                return Err(AlgoError::BadConfig(format!(
                    "cell matrix {per_dim}^{dims} exceeds {MAX_CELLS} cells"
                )))
            }
        }
        for &(j, k) in &constraints {
            if j >= dims || k >= dims {
                return Err(AlgoError::BadConfig(format!(
                    "constraint ({j}, {k}) out of range for {dims} dims"
                )));
            }
        }
        let mut consistent = Vec::new();
        let mut coords = vec![0usize; dims];
        loop {
            if constraints.iter().all(|&(j, k)| coords[j] <= coords[k]) {
                consistent.push(Self::encode_raw(&coords, per_dim));
            }
            // Odometer.
            let mut d = 0;
            loop {
                coords[d] += 1;
                if coords[d] < per_dim {
                    break;
                }
                coords[d] = 0;
                d += 1;
                if d == dims {
                    consistent.sort_unstable();
                    let mut space = CellSpace {
                        dims,
                        per_dim,
                        constraints,
                        consistent,
                        by_eq: Vec::new(),
                        by_ge: Vec::new(),
                    };
                    space.index();
                    return Ok(space);
                }
            }
        }
    }

    fn index(&mut self) {
        self.by_eq = vec![vec![Vec::new(); self.per_dim]; self.dims];
        for &cell in &self.consistent {
            let coords = self.decode(cell);
            for (d, &coord) in coords.iter().enumerate() {
                self.by_eq[d][coord].push(cell);
            }
        }
        // by_ge[d][q] = cells with coord[d] >= q, built by suffix union.
        self.by_ge = vec![vec![Vec::new(); self.per_dim]; self.dims];
        for d in 0..self.dims {
            let mut acc: Vec<ReducerId> = Vec::new();
            for q in (0..self.per_dim).rev() {
                acc.extend(self.by_eq[d][q].iter().copied());
                let mut sorted = acc.clone();
                sorted.sort_unstable();
                self.by_ge[d][q] = sorted;
            }
        }
    }

    fn encode_raw(coords: &[usize], per_dim: usize) -> ReducerId {
        coords
            .iter()
            .rev()
            .fold(0u64, |acc, &c| acc * per_dim as u64 + c as u64)
    }

    /// Encodes cell coordinates into a [`ReducerId`].
    pub fn encode(&self, coords: &[usize]) -> ReducerId {
        debug_assert_eq!(coords.len(), self.dims);
        debug_assert!(coords.iter().all(|&c| c < self.per_dim));
        Self::encode_raw(coords, self.per_dim)
    }

    /// Decodes a [`ReducerId`] back to coordinates.
    pub fn decode(&self, mut id: ReducerId) -> Vec<usize> {
        let mut coords = vec![0usize; self.dims];
        for c in coords.iter_mut() {
            *c = (id % self.per_dim as u64) as usize;
            id /= self.per_dim as u64;
        }
        coords
    }

    /// Whether a cell satisfies all ordering constraints.
    pub fn is_consistent(&self, coords: &[usize]) -> bool {
        self.constraints
            .iter()
            .all(|&(j, k)| coords[j] <= coords[k])
    }

    /// All consistent cells, ascending.
    pub fn consistent_cells(&self) -> &[ReducerId] {
        &self.consistent
    }

    /// Consistent cells whose dimension-`d` coordinate equals `q` — the
    /// routing set for an unreplicated interval (conditions D1 + D2).
    pub fn cells_eq(&self, d: usize, q: usize) -> &[ReducerId] {
        &self.by_eq[d][q]
    }

    /// Consistent cells whose dimension-`d` coordinate is `>= q` — the
    /// routing set for an RCCIS-replicated interval in All-Seq-Matrix
    /// (condition E2's `i_k >= q` arm).
    pub fn cells_ge(&self, d: usize, q: usize) -> &[ReducerId] {
        &self.by_ge[d][q]
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Partitions per dimension `o`.
    pub fn per_dim(&self) -> usize {
        self.per_dim
    }

    /// Total cells `o^m`.
    pub fn total_cells(&self) -> u64 {
        (self.per_dim as u64).pow(self.dims as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let s = CellSpace::new(3, 5, vec![]).unwrap();
        for cell in s.consistent_cells() {
            assert_eq!(s.encode(&s.decode(*cell)), *cell);
        }
        assert_eq!(s.consistent_cells().len(), 125);
    }

    #[test]
    fn figure4_two_dims_before() {
        // R1 before R2 with o=3: consistent cells are i1 <= i2 — six of nine.
        let s = CellSpace::new(2, 3, vec![(0, 1)]).unwrap();
        assert_eq!(s.consistent_cells().len(), 6);
        assert!(s.is_consistent(&[0, 2]));
        assert!(!s.is_consistent(&[1, 0]));
    }

    #[test]
    fn q2_cell_count() {
        // Q2 = R1 before R2 before R3 with o=6: i1<=i2<=i3 (plus the
        // transitive i1<=i3) — C(6+2,3) = 56 cells. The paper reports 55;
        // see DESIGN.md §5 on the tie rule.
        let s = CellSpace::new(3, 6, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(s.consistent_cells().len(), 56);
        assert_eq!(s.total_cells(), 216);
    }

    #[test]
    fn q5_cell_count_matches_paper() {
        // Q5 with o=5, 4 dims, single constraint C1 <= C2:
        // 15 ordered pairs × 25 free = 375 of 625 — exactly the paper.
        let s = CellSpace::new(4, 5, vec![(0, 1)]).unwrap();
        assert_eq!(s.consistent_cells().len(), 375);
        assert_eq!(s.total_cells(), 625);
    }

    #[test]
    fn cells_eq_partition_the_consistent_set() {
        let s = CellSpace::new(2, 4, vec![(0, 1)]).unwrap();
        let total: usize = (0..4).map(|q| s.cells_eq(0, q).len()).sum();
        assert_eq!(total, s.consistent_cells().len());
        // coord0 = 3 admits only (3,3).
        assert_eq!(s.cells_eq(0, 3), &[s.encode(&[3, 3])]);
    }

    #[test]
    fn cells_ge_nest() {
        let s = CellSpace::new(2, 4, vec![(0, 1)]).unwrap();
        for d in 0..2 {
            for q in 1..4 {
                let bigger = s.cells_ge(d, q - 1);
                let smaller = s.cells_ge(d, q);
                assert!(smaller.iter().all(|c| bigger.contains(c)), "dim {d} q {q}");
            }
            assert_eq!(s.cells_ge(d, 0).len(), s.consistent_cells().len());
        }
    }

    #[test]
    fn equality_constraints_both_ways() {
        // coord0 <= coord1 and coord1 <= coord0 forces the diagonal.
        let s = CellSpace::new(2, 4, vec![(0, 1), (1, 0)]).unwrap();
        assert_eq!(s.consistent_cells().len(), 4);
    }

    #[test]
    fn rejects_oversized_matrices() {
        assert!(CellSpace::new(10, 100, vec![]).is_err());
        assert!(CellSpace::new(0, 5, vec![]).is_err());
        assert!(CellSpace::new(2, 3, vec![(0, 5)]).is_err());
    }
}
