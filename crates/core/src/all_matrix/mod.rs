//! All-Matrix (paper Section 7.1) — sequence joins in a multi-dimensional
//! reducer matrix.

pub mod algo;
pub mod cells;

pub use algo::AllMatrix;
pub use cells::CellSpace;
