//! All-Replicate (paper Sections 6–7, baseline).
//!
//! One MR cycle: project the right-most relation (the one provably greater
//! than every other in the less-than order) and replicate the rest; when no
//! unique right-most relation exists, replicate everything and let each
//! reducer emit only the tuples it owns (those whose maximal start point
//! falls in its partition). Correct for any single-attribute query, but —
//! as Sections 6.2 and 7 demonstrate — communication-heavy and, for
//! sequence queries, badly load-skewed toward the right-most reducers.

use crate::algorithm::{
    empty_output, iv_records, require_single_attr, AlgoError, Algorithm, RunArtifacts,
};
use crate::executor::Candidates;
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{IvRec, OutRec};
use ij_interval::{ops, Interval, TupleId};
use ij_mapreduce::metrics::names;
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::{AttrRef, JoinQuery};

/// The All-Replicate baseline.
#[derive(Debug, Clone)]
pub struct AllReplicate {
    /// Number of partition-intervals.
    pub partitions: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl AllReplicate {
    /// All-Replicate over `partitions` partitions, materializing output.
    pub fn new(partitions: usize) -> Self {
        AllReplicate {
            partitions,
            mode: OutputMode::Materialize,
        }
    }

    /// The relation to project: one provably `>=` all others in start
    /// order, if any ("the rightmost relation"; with several co-maximal
    /// relations the paper replicates everything).
    fn projected_relation(q: &JoinQuery) -> Option<usize> {
        let order = q.start_order();
        let m = q.num_relations() as usize;
        (0..m).find(|&r| {
            (0..m).all(|other| {
                other == r || order.le_start(AttrRef::whole(other as u16), AttrRef::whole(r as u16))
            })
        })
    }
}

impl Algorithm for AllReplicate {
    fn name(&self) -> &'static str {
        "All-Rep"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        if query.start_order().contradictory() {
            return Ok(empty_output(self.mode));
        }
        let part = RunArtifacts::partition_span(input.span(), self.partitions)?;
        let projected = Self::projected_relation(query);

        // Count replicated intervals for the Table 1 statistic.
        let replicated_intervals: u64 = input
            .relations()
            .iter()
            .enumerate()
            .filter(|(r, _)| Some(*r) != projected)
            .map(|(_, rel)| rel.len() as u64)
            .sum();

        let m = query.num_relations() as usize;
        let mode = self.mode;
        let q = query.clone();
        let partc = part.clone();
        let need_owner_filter = projected.is_none();
        let out = engine.run_job(
            "all-replicate",
            &iv_records(input),
            {
                let partc = partc.clone();
                move |rec: &IvRec, em: &mut Emitter<IvRec>| {
                    let replicate = Some(rec.rel.idx()) != projected;
                    let op = if replicate {
                        ij_interval::MapOp::Replicate
                    } else {
                        ij_interval::MapOp::Project
                    };
                    let before = em.emitted();
                    for p in ops::apply(op, rec.iv, &partc) {
                        em.emit(p as u64, *rec);
                    }
                    let copies = (em.emitted() - before) as u64;
                    if replicate {
                        em.inc(names::ALLREP_REPLICA_PAIRS, copies);
                    } else {
                        em.inc(names::ALLREP_PROJECTED_PAIRS, copies);
                    }
                }
            },
            move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
                let mut cands = Candidates::new(m);
                for v in values.by_ref() {
                    cands.push(v.rel.idx(), v.iv, v.tid);
                }
                cands.finish();
                let own = ctx.key as usize;
                let partr = &partc;
                let accept = |a: &[(Interval, TupleId)]| {
                    if !need_owner_filter {
                        return true;
                    }
                    let max_start = a.iter().map(|(iv, _)| iv.start()).max().expect("nonempty");
                    partr.index_of(max_start) == own
                };
                let mut count = 0u64;
                let rep = kernel::reduce_join(ctx, &q, &cands, accept, |a| {
                    count += 1;
                    if mode == OutputMode::Materialize {
                        out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                    }
                });
                ctx.inc(names::JOIN_CANDIDATES, rep.work);
                ctx.inc(names::JOIN_EMITTED, count);
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;

        let mut chain = JobChain::new();
        chain.push(out.metrics);
        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.replicated_intervals = Some(replicated_intervals);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn run_case(preds: &[ij_interval::AllenPredicate], seed: u64, n: usize) {
        let q = JoinQuery::chain(preds).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 40))
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = AllReplicate::new(8)
            .run(&q, &input, &engine)
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input), "preds {preds:?}");
    }

    #[test]
    fn colocation_chain_matches_oracle() {
        run_case(&[Overlaps, Overlaps], 21, 60);
        run_case(&[Overlaps, Contains, Overlaps], 22, 40);
    }

    #[test]
    fn sequence_chain_matches_oracle() {
        run_case(&[Before, Before], 23, 40);
    }

    #[test]
    fn hybrid_matches_oracle() {
        run_case(&[Overlaps, Before], 24, 50);
    }

    #[test]
    fn projected_relation_is_rightmost() {
        // Q0: the chain orders R1 < R2 < R3 < R4, so R4 (index 3) projects.
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        assert_eq!(AllReplicate::projected_relation(&q), Some(3));
        // A query with incomparable maxima: R1 before R2 and R1 before R3 —
        // neither R2 nor R3 dominates the other.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Before, 1),
                ij_query::Condition::whole(0, Before, 2),
            ],
        )
        .unwrap();
        assert_eq!(AllReplicate::projected_relation(&q), None);
    }

    #[test]
    fn no_unique_rightmost_still_correct() {
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Before, 1),
                ij_query::Condition::whole(0, Before, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 30, 200, 20),
                random_rel(&mut rng, 30, 200, 20),
                random_rel(&mut rng, 30, 200, 20),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = AllReplicate::new(6)
            .run(&q, &input, &engine)
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn replicated_count_reported() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 50, 200, 20),
                random_rel(&mut rng, 60, 200, 20),
                random_rel(&mut rng, 70, 200, 20),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let out = AllReplicate::new(6).run(&q, &input, &engine).unwrap();
        // R3 is projected; R1 and R2 are replicated entirely.
        assert_eq!(out.stats.replicated_intervals, Some(110));
    }

    #[test]
    fn counters_count_replica_and_join_pairs() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 50, 200, 20),
                random_rel(&mut rng, 60, 200, 20),
                random_rel(&mut rng, 70, 200, 20),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let out = AllReplicate::new(6).run(&q, &input, &engine).unwrap();
        let c = out.chain.total_counters();
        // R1+R2 replicate (110 intervals, >= 1 copy each); R3 projects one
        // pair per interval.
        assert!(c.get("allrep.replica_pairs") >= 110);
        assert_eq!(c.get("allrep.projected_pairs"), 70);
        assert!(c.get("join.candidates") >= c.get("join.emitted"));
        // Counters and shuffle metrics agree on total communication.
        assert_eq!(
            c.get("allrep.replica_pairs") + c.get("allrep.projected_pairs"),
            out.chain.total_pairs()
        );
    }

    #[test]
    fn sequence_join_load_is_skewed() {
        // The Figure 4 story: All-Rep on `before` piles load on the
        // rightmost reducer.
        let q = JoinQuery::chain(&[Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 400, 1000, 10),
                random_rel(&mut rng, 400, 1000, 10),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let out = AllReplicate::new(8).run(&q, &input, &engine).unwrap();
        let cycle = &out.chain.cycles[0];
        assert!(
            cycle.skew() > 1.5,
            "expected skew toward rightmost reducer, got {}",
            cycle.skew()
        );
        // And the most loaded reducer is the last one.
        let max = cycle
            .reducer_loads
            .iter()
            .max_by_key(|l| l.pairs_received)
            .unwrap();
        assert_eq!(max.key, 7);
    }
}
