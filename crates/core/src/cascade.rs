//! The 2-way Cascade baseline (Section 6) and the shared stage machinery
//! reused by FSTC (Section 8).
//!
//! A multi-way query runs as a series of 2-way MR joins: each stage joins
//! the accumulated composite result with one more base relation. Colocation
//! stages route with the predicate's split/project pair; sequence stages
//! use a 2-D All-Matrix (as the paper does in the Figure 5 experiments:
//! "both 2-way joins in 2-way Cd … are executed using 2D versions of
//! All-Matrix"). Every stage re-reads and re-shuffles the intermediate
//! result, which is exactly the cost the paper's single-pass algorithms
//! avoid.

use crate::algorithm::{empty_output, require_single_attr, AlgoError, Algorithm, RunArtifacts};
use crate::all_matrix::CellSpace;
use crate::input::JoinInput;
use crate::kernel::{range_pair, RangePair};
use crate::output::{JoinOutput, OutputMode};
use crate::records::{CompRec, OutRec};
use ij_interval::{bounds_contain, ops, Interval, MapOp, Partitioning, RelId, TupleId};
use ij_mapreduce::metrics::names;
use ij_mapreduce::{Emitter, Engine, JobChain, Record, ReduceCtx, ValueStream};
use ij_query::{Condition, JoinQuery};

/// A record of a cascade stage job: either an accumulated composite or a
/// base tuple of the stage's new relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CascRec {
    /// Composite carrying the already-joined relations.
    Comp(CompRec),
    /// A tuple of the relation this stage introduces.
    Base { tid: TupleId, iv: Interval },
}

impl Record for CascRec {
    fn approx_bytes(&self) -> u64 {
        match self {
            CascRec::Comp(c) => c.approx_bytes() + 1,
            CascRec::Base { .. } => 21,
        }
    }
}

/// One cascade stage: join the current composites with `new_rel` on
/// `primary`, additionally checking `extras` (conditions whose endpoints
/// are all available by this stage).
#[derive(Debug, Clone)]
pub struct Stage {
    /// The base relation this stage introduces.
    pub new_rel: RelId,
    /// The condition used for routing.
    pub primary: Condition,
    /// Conditions checked in the reducer on top of `primary`.
    pub extras: Vec<Condition>,
}

/// Plans the cascade: processes conditions in declaration order, each stage
/// introducing the condition's one missing relation. Conditions between two
/// already-present relations attach to the following stage (or the last).
///
/// `present` starts with the seed relations (for the plain cascade: the
/// first condition's two endpoints).
pub fn plan_stages(
    _q: &JoinQuery,
    mut present: Vec<RelId>,
    conditions: &[Condition],
) -> Result<Vec<Stage>, AlgoError> {
    let mut stages: Vec<Stage> = Vec::new();
    let mut pending_filters: Vec<Condition> = Vec::new();
    let mut remaining: Vec<Condition> = conditions.to_vec();
    while !remaining.is_empty() {
        // Earliest remaining condition touching the joined set; declaration
        // order is kept where possible, but a later condition may bridge to
        // an earlier one (e.g. FSTC seeds from the sequence relations).
        let pos = remaining
            .iter()
            .position(|c| present.contains(&c.left.rel) || present.contains(&c.right.rel));
        let Some(pos) = pos else {
            return Err(AlgoError::Unsupported {
                algorithm: "cascade",
                reason: format!(
                    "condition {} is disconnected from the relations joined so far",
                    remaining[0]
                ),
            });
        };
        let c = remaining.remove(pos);
        let l_in = present.contains(&c.left.rel);
        let r_in = present.contains(&c.right.rel);
        if l_in && r_in {
            pending_filters.push(c);
        } else {
            let new_rel = if l_in { c.right.rel } else { c.left.rel };
            present.push(new_rel);
            let extras = std::mem::take(&mut pending_filters);
            stages.push(Stage {
                new_rel,
                primary: c,
                extras,
            });
        }
    }
    if !pending_filters.is_empty() {
        match stages.last_mut() {
            Some(s) => s.extras.extend(pending_filters),
            None => {
                return Err(AlgoError::Unsupported {
                    algorithm: "cascade",
                    reason: "all conditions are between seed relations; nothing to cascade".into(),
                })
            }
        }
    }
    Ok(stages)
}

/// State threaded through the cascade: which relations the composites hold
/// (in slot order) and the composites themselves.
pub struct CascadeState {
    /// Relations present, in composite slot order.
    pub present: Vec<RelId>,
    /// Current intermediate result.
    pub composites: Vec<CompRec>,
}

impl CascadeState {
    /// Seeds the cascade from a base relation.
    pub fn from_relation(input: &JoinInput, rel: RelId) -> Self {
        let composites = input
            .relation(rel)
            .tuples()
            .iter()
            .map(|t| CompRec {
                tids: vec![t.id],
                ivs: vec![t.interval()],
            })
            .collect();
        CascadeState {
            present: vec![rel],
            composites,
        }
    }

    fn slot_of(&self, rel: RelId) -> usize {
        self.present
            .iter()
            .position(|&r| r == rel)
            .expect("relation present in composite")
    }
}

/// Executes one cascade stage as one MR cycle, growing the composites.
/// Returns the stage's join result as `OutRec`s when `finalize` is set
/// (the last stage), else updates `state`.
#[allow(clippy::too_many_arguments)]
pub fn run_stage(
    q: &JoinQuery,
    input: &JoinInput,
    engine: &Engine,
    state: &mut CascadeState,
    stage: &Stage,
    partitions: usize,
    per_dim_2d: usize,
    finalize: Option<OutputMode>,
    chain: &mut JobChain,
) -> Result<Vec<OutRec>, AlgoError> {
    let span = input.span();
    let new_rel = stage.new_rel;
    let comp_is_left = stage.primary.left.rel != new_rel;
    let comp_rel = if comp_is_left {
        stage.primary.left.rel
    } else {
        stage.primary.right.rel
    };
    let comp_slot = state.slot_of(comp_rel);

    // Conditions the reducer checks: primary + extras; orient each as
    // (composite slot, pred, is_composite_left).
    let mut checks: Vec<(usize, ij_interval::AllenPredicate, bool)> = Vec::new();
    for &c in std::iter::once(&stage.primary).chain(&stage.extras) {
        if c.left.rel == new_rel {
            checks.push((state.slot_of(c.right.rel), c.pred, false));
        } else {
            checks.push((state.slot_of(c.left.rel), c.pred, true));
        }
    }

    // Build the stage input: composites + the new relation's tuples.
    let mut records: Vec<CascRec> = state
        .composites
        .iter()
        .cloned()
        .map(CascRec::Comp)
        .collect();
    records.extend(
        input
            .relation(new_rel)
            .tuples()
            .iter()
            .map(|t| CascRec::Base {
                tid: t.id,
                iv: t.interval(),
            }),
    );

    // Routing.
    enum Routing {
        OneD {
            part: Partitioning,
            comp_op: MapOp,
            base_op: MapOp,
        },
        Matrix {
            part: Partitioning,
            space: CellSpace,
        },
    }
    let routing = if stage.primary.pred.is_colocation() {
        let (op_l, op_r) = stage.primary.pred.map_ops();
        let (comp_op, base_op) = if comp_is_left {
            (op_l, op_r)
        } else {
            (op_r, op_l)
        };
        Routing::OneD {
            part: RunArtifacts::partition_span(span, partitions)?,
            comp_op,
            base_op,
        }
    } else {
        // 2-D All-Matrix: dim 0 = composite (via the primary's member
        // interval), dim 1 = the new relation.
        let lesser_is_comp = stage.primary.lesser().rel == comp_rel;
        let constraints = if lesser_is_comp {
            vec![(0, 1)]
        } else {
            vec![(1, 0)]
        };
        Routing::Matrix {
            part: RunArtifacts::partition_span(span, per_dim_2d)?,
            space: CellSpace::new(2, per_dim_2d, constraints)?,
        }
    };

    let stage_name = format!("cascade-{}", state.present.len());
    let out = engine.run_job(
        &stage_name,
        &records,
        |rec: &CascRec, em: &mut Emitter<CascRec>| match &routing {
            Routing::OneD {
                part,
                comp_op,
                base_op,
            } => {
                let (op, iv) = match rec {
                    CascRec::Comp(c) => (*comp_op, c.ivs[comp_slot]),
                    CascRec::Base { iv, .. } => (*base_op, *iv),
                };
                let before = em.emitted();
                for p in ops::apply(op, iv, part) {
                    em.emit(p as u64, rec.clone());
                }
                let copies = (em.emitted() - before) as u64;
                match rec {
                    CascRec::Comp(_) => em.inc(names::CASCADE_COMP_PAIRS, copies),
                    CascRec::Base { .. } => em.inc(names::CASCADE_BASE_PAIRS, copies),
                }
            }
            Routing::Matrix { part, space } => {
                let (dim, iv) = match rec {
                    CascRec::Comp(c) => (0, c.ivs[comp_slot]),
                    CascRec::Base { iv, .. } => (1, *iv),
                };
                let qidx = part.index_of(iv.start());
                let cells = space.cells_eq(dim, qidx);
                em.emit_to_all(cells.iter().copied(), rec);
                match rec {
                    CascRec::Comp(_) => em.inc(names::CASCADE_COMP_PAIRS, cells.len() as u64),
                    CascRec::Base { .. } => em.inc(names::CASCADE_BASE_PAIRS, cells.len() as u64),
                }
            }
        },
        |ctx: &mut ReduceCtx, values: &mut ValueStream<CascRec>, out: &mut Vec<OutRec>| {
            let mut comps: Vec<CompRec> = Vec::new();
            let mut bases: Vec<(Interval, TupleId)> = Vec::new();
            for v in values.by_ref() {
                match v {
                    CascRec::Comp(c) => comps.push(c),
                    CascRec::Base { tid, iv } => bases.push((iv, tid)),
                }
            }
            bases.sort_unstable_by_key(|(iv, tid)| (iv.start(), *tid));
            let mut work = 0u64;
            let mut count = 0u64;
            for comp in &comps {
                // Exact endpoint ranges for the new tuple from all checks
                // (kernel::ranges): orient each predicate so the new tuple
                // is the right operand, window on the start range, and
                // filter by the end range — no per-candidate `holds`.
                let mut rp = RangePair::full();
                for &(slot, pred, comp_left) in &checks {
                    let p = if comp_left { pred } else { pred.inverse() };
                    rp.intersect(&range_pair(p, comp.ivs[slot]));
                }
                let (from, to) = crate::executor::window(&bases, rp.start.0, rp.start.1);
                work += (to - from) as u64;
                for &(iv, tid) in &bases[from..to] {
                    if !bounds_contain(rp.end, iv.end()) {
                        continue;
                    }
                    count += 1;
                    if finalize != Some(OutputMode::Count) {
                        let mut c = comp.clone();
                        c.tids.push(tid);
                        c.ivs.push(iv);
                        // Composites ride out of the job flat-encoded in the
                        // shared OutRec::Tuple payload; decoded below.
                        out.push(OutRec::Tuple(encode_comp(&c)));
                    }
                }
            }
            ctx.add_work(work);
            ctx.inc(names::JOIN_CANDIDATES, work);
            ctx.inc(names::JOIN_EMITTED, count);
            if finalize == Some(OutputMode::Count) && count > 0 {
                out.push(OutRec::Count(count));
            }
        },
    )?;
    chain.push(out.metrics);

    // Decode stage output.
    let mut new_composites = Vec::new();
    let mut finals = Vec::new();
    for rec in out.outputs {
        match rec {
            OutRec::Tuple(enc) => {
                let comp = decode_comp(&enc);
                if finalize.is_some() {
                    finals.push(OutRec::Tuple(comp.tids.clone()));
                } else {
                    new_composites.push(comp);
                }
            }
            OutRec::Count(n) => finals.push(OutRec::Count(n)),
        }
    }
    state.present.push(new_rel);
    state.composites = new_composites;

    // Re-order final tuples' ids into global relation order.
    if finalize == Some(OutputMode::Materialize) {
        let present = state.present.clone();
        finals = finals
            .into_iter()
            .map(|r| match r {
                OutRec::Tuple(tids) => {
                    let mut by_rel = vec![0 as TupleId; q.num_relations() as usize];
                    for (slot, &rel) in present.iter().enumerate() {
                        by_rel[rel.idx()] = tids[slot];
                    }
                    OutRec::Tuple(by_rel)
                }
                c => c,
            })
            .collect();
    }
    Ok(finals)
}

/// Flat encoding of a composite into a `Vec<u32>` (tids then interval
/// halves), letting stages reuse the `OutRec` job output type.
fn encode_comp(c: &CompRec) -> Vec<u32> {
    let mut v = Vec::with_capacity(1 + c.tids.len() * 5);
    v.push(c.tids.len() as u32);
    v.extend(&c.tids);
    for iv in &c.ivs {
        let s = iv.start() as u64;
        let e = iv.end() as u64;
        v.push((s >> 32) as u32);
        v.push(s as u32);
        v.push((e >> 32) as u32);
        v.push(e as u32);
    }
    v
}

fn decode_comp(v: &[u32]) -> CompRec {
    let n = v[0] as usize;
    let tids = v[1..1 + n].to_vec();
    let mut ivs = Vec::with_capacity(n);
    let mut at = 1 + n;
    for _ in 0..n {
        let s = ((v[at] as u64) << 32 | v[at + 1] as u64) as i64;
        let e = ((v[at + 2] as u64) << 32 | v[at + 3] as u64) as i64;
        ivs.push(Interval::new_unchecked(s, e));
        at += 4;
    }
    CompRec { tids, ivs }
}

/// The 2-way Cascade algorithm.
#[derive(Debug, Clone)]
pub struct TwoWayCascade {
    /// Partitions for colocation stages.
    pub partitions: usize,
    /// Per-dimension partitions for sequence stages' 2-D matrices (the
    /// paper uses 11 for Figure 5's cascades).
    pub per_dim_2d: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl TwoWayCascade {
    /// A cascade with the same reducer budget for both stage kinds.
    pub fn new(partitions: usize) -> Self {
        TwoWayCascade {
            partitions,
            per_dim_2d: (partitions as f64).sqrt().ceil() as usize + 1,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for TwoWayCascade {
    fn name(&self) -> &'static str {
        "2-way Cd"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        if query.start_order().contradictory() {
            return Ok(empty_output(self.mode));
        }
        if query.num_relations() < 2 {
            return Err(AlgoError::BadConfig("need at least 2 relations".into()));
        }
        let first = query.conditions()[0];
        let mut state = CascadeState::from_relation(input, first.left.rel);
        let stages = plan_stages(query, vec![first.left.rel], query.conditions())?;
        let mut chain = JobChain::new();
        let mut finals = Vec::new();
        let last = stages.len() - 1;
        for (i, stage) in stages.iter().enumerate() {
            let finalize = (i == last).then_some(self.mode);
            finals = run_stage(
                query,
                input,
                engine,
                &mut state,
                stage,
                self.partitions,
                self.per_dim_2d,
                finalize,
                &mut chain,
            )?;
        }
        Ok(JoinOutput::from_records(self.mode, finals, chain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::{self, *};
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check(preds: &[AllenPredicate], seed: u64, n: usize) {
        let q = JoinQuery::chain(preds).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 40))
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let got = TwoWayCascade::new(8)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input), "preds {preds:?}");
    }

    #[test]
    fn colocation_chain_matches_oracle() {
        check(&[Overlaps, Overlaps], 1, 60);
        check(&[Overlaps, Contains, Overlaps], 2, 35);
    }

    #[test]
    fn sequence_chain_matches_oracle() {
        check(&[Before, Before], 3, 40);
    }

    #[test]
    fn hybrid_chain_matches_oracle() {
        check(&[Overlaps, Before], 4, 45);
        check(&[Before, Overlaps], 5, 45);
    }

    #[test]
    fn one_cycle_per_stage() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let rels = (0..4).map(|_| random_rel(&mut rng, 20, 200, 30)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let out = TwoWayCascade::new(4).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.chain.num_cycles(), 3);
    }

    #[test]
    fn counters_attribute_pairs_per_stage() {
        let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let rels = (0..3).map(|_| random_rel(&mut rng, 40, 300, 40)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let out = TwoWayCascade::new(6).run(&q, &input, &engine()).unwrap();
        // Every stage shuffles both composites and base tuples, and the two
        // counter classes account for its whole communication volume.
        for cycle in &out.chain.cycles {
            let comp = cycle.counters.get("cascade.comp_pairs");
            let base = cycle.counters.get("cascade.base_pairs");
            assert!(base > 0, "stage {} shuffled no base tuples", cycle.name);
            assert_eq!(comp + base, cycle.intermediate_pairs, "{}", cycle.name);
        }
        let c = out.chain.total_counters();
        assert!(c.get("join.candidates") >= c.get("join.emitted"));
    }

    #[test]
    fn triangle_query_extra_condition_checked() {
        // R1 ov R2, R2 ov R3, R1 contains R3: the third condition is between
        // two relations already present and must be applied as a filter.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(1, Overlaps, 2),
                ij_query::Condition::whole(0, Contains, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let rels = (0..3).map(|_| random_rel(&mut rng, 50, 200, 60)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let got = TwoWayCascade::new(6)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn plan_rejects_disconnected_condition_order() {
        let q = JoinQuery::new(
            4,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(2, Overlaps, 3),
            ],
        )
        .unwrap();
        let err = plan_stages(&q, vec![RelId(0)], q.conditions()).unwrap_err();
        assert!(matches!(err, AlgoError::Unsupported { .. }));
    }

    #[test]
    fn comp_encoding_round_trips() {
        let c = CompRec {
            tids: vec![3, 99],
            ivs: vec![
                Interval::new(-5, 1_000_000_000_000).unwrap(),
                Interval::new(0, 0).unwrap(),
            ],
        };
        assert_eq!(decode_comp(&encode_comp(&c)), c);
    }
}
