//! Cardinality and communication estimation — the paper's stated future
//! work ("We can further improve All-Matrix by using the cost models …
//! presented in Zhang et al.", Section 7.2; "the cost model … will need to
//! be updated by taking the distribution of interval lengths into
//! account").
//!
//! [`RelationStats`] summarizes a relation with a start-point histogram and
//! the length moments; [`estimate_output`] predicts a query's output
//! cardinality from them; [`estimate_pairs`] predicts each algorithm
//! family's shuffle volume; [`auto_tune`] picks partition counts for the
//! planner so the number of *consistent* reducers tracks the cluster's
//! slots. Estimates are order-of-magnitude planning aids (validated within
//! small factors on uniform data in the tests), not exact counts.

use crate::planner::PlanConfig;
use ij_interval::{AllenPredicate, Relation};
use ij_query::JoinQuery;

/// Histogram buckets used by [`RelationStats::collect`].
const BUCKETS: usize = 64;

/// Summary statistics of one relation's (attribute-0) intervals.
#[derive(Debug, Clone)]
pub struct RelationStats {
    /// Number of tuples.
    pub n: u64,
    /// Minimum start point.
    pub t_min: i64,
    /// Maximum end point.
    pub t_max: i64,
    /// Mean interval length.
    pub mean_len: f64,
    /// Start-point counts over 64 equi-width buckets of `[t_min, t_max]`.
    pub start_hist: Vec<u64>,
}

impl RelationStats {
    /// Collects statistics from a relation. Empty relations produce a
    /// degenerate-but-safe summary.
    pub fn collect(rel: &Relation) -> RelationStats {
        if rel.is_empty() {
            return RelationStats {
                n: 0,
                t_min: 0,
                t_max: 1,
                mean_len: 0.0,
                start_hist: vec![0; BUCKETS],
            };
        }
        let span = rel.attr_span(0).expect("non-empty");
        let (t_min, t_max) = (span.start(), span.end());
        let width = ((t_max - t_min) as f64 / BUCKETS as f64).max(1e-9);
        let mut hist = vec![0u64; BUCKETS];
        let mut total_len = 0i64;
        for t in rel.tuples() {
            let iv = t.interval();
            total_len += iv.len();
            let b = (((iv.start() - t_min) as f64 / width) as usize).min(BUCKETS - 1);
            hist[b] += 1;
        }
        RelationStats {
            n: rel.len() as u64,
            t_min,
            t_max,
            mean_len: total_len as f64 / rel.len() as f64,
            start_hist: hist,
        }
    }

    /// The covered span length (at least 1).
    pub fn span(&self) -> f64 {
        ((self.t_max - self.t_min) as f64).max(1.0)
    }

    /// Average start density: tuples per time unit.
    pub fn density(&self) -> f64 {
        self.n as f64 / self.span()
    }

    /// Expected number of starts in a window of length `w` placed at a
    /// typical location (histogram-weighted density times `w`).
    fn starts_in_window(&self, w: f64) -> f64 {
        self.density() * w.max(0.0)
    }

    /// Fraction of this relation's starts lying after a typical point of
    /// another relation's interval ends — used for *before* estimates.
    /// Computed from the start histogram against a uniform reference point.
    fn fraction_after_typical_point(&self) -> f64 {
        // For a uniformly chosen reference point over the span, the
        // expected fraction of starts after it is the mean normalized rank
        // of the histogram mass: sum_b hist[b] * (1 - (b+0.5)/B) / n.
        if self.n == 0 {
            return 0.0;
        }
        let b = self.start_hist.len() as f64;
        let mass: f64 = self
            .start_hist
            .iter()
            .enumerate()
            .map(|(i, &h)| h as f64 * (1.0 - (i as f64 + 0.5) / b))
            .sum();
        mass / self.n as f64
    }
}

/// Expected number of `right` tuples matching one typical `left` tuple
/// under `pred` (`left pred right`).
pub fn expected_matches(pred: AllenPredicate, left: &RelationStats, right: &RelationStats) -> f64 {
    use AllenPredicate::*;
    match pred {
        // Sequence: roughly the mass of right starts after (before) a
        // typical left end (start).
        Before => right.n as f64 * right.fraction_after_typical_point(),
        After => right.n as f64 * (1.0 - right.fraction_after_typical_point()),
        // Colocation with the partner's start inside the left interval:
        // density × window, halved for the end-point order requirement.
        Overlaps | Contains => 0.5 * right.starts_in_window(left.mean_len),
        // Converse forms: partner starts inside the *right* interval; per
        // left tuple that is density-of-right × right mean length, halved.
        OverlappedBy | ContainedBy => 0.5 * right.starts_in_window(right.mean_len),
        // Endpoint-coincidence predicates: about one tick of start density
        // (meets: start == left end; starts/equals: start == left start).
        Meets | MetBy | Starts | StartedBy | Equals => right.density().min(right.n as f64),
        // End-coincidence: one tick of *end* density ≈ start density.
        Finishes | FinishedBy => right.density().min(right.n as f64),
    }
}

/// Estimated output cardinality of a query: the size of the first bound
/// relation times the expected fan-out along a spanning tree of the join
/// graph (extra edges contribute a crude independence filter).
pub fn estimate_output(q: &JoinQuery, stats: &[RelationStats]) -> f64 {
    let m = q.num_relations() as usize;
    debug_assert_eq!(stats.len(), m);
    let mut bound = vec![false; m];
    // Bind in condition order, like the cascade plan.
    let first = q.conditions()[0].left.rel.idx();
    bound[first] = true;
    let mut est = stats[first].n as f64;
    let mut remaining: Vec<_> = q.conditions().to_vec();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|c| bound[c.left.rel.idx()] || bound[c.right.rel.idx()]);
        let Some(pos) = pos else { break };
        let c = remaining.remove(pos);
        let (l, r) = (c.left.rel.idx(), c.right.rel.idx());
        match (bound[l], bound[r]) {
            (true, false) => {
                est *= expected_matches(c.pred, &stats[l], &stats[r]).max(0.0);
                bound[r] = true;
            }
            (false, true) => {
                est *= expected_matches(c.pred.inverse(), &stats[r], &stats[l]).max(0.0);
                bound[l] = true;
            }
            // Both bound: treat as a filter — the fraction of pairs
            // satisfying the predicate among all pairs.
            (true, true) => {
                let per_left = expected_matches(c.pred, &stats[l], &stats[r]);
                let frac = (per_left / stats[r].n.max(1) as f64).clamp(0.0, 1.0);
                est *= frac;
            }
            (false, false) => unreachable!("pos guarantees one endpoint bound"),
        }
    }
    est
}

/// Which algorithm family a shuffle estimate is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoFamily {
    /// All-Replicate with `k` partitions.
    AllReplicate {
        /// 1-D partition count.
        k: usize,
    },
    /// RCCIS with `k` partitions (both cycles).
    Rccis {
        /// 1-D partition count.
        k: usize,
    },
    /// A matrix algorithm with `o` partitions per dimension over `dims`
    /// dimensions.
    Matrix {
        /// Partitions per dimension.
        o: usize,
        /// Number of dimensions (relations or components).
        dims: usize,
    },
}

/// Relative per-candidate reducer work of the kernel that
/// [`crate::kernel::planned_kernel`] would select for `q`, normalized to
/// the backtracking fallback at `1.0`.
///
/// The constants are calibrated from the `kernel` criterion benches
/// (`kernel_strategies` / `kernel_event_sweep` groups): the pair sweep is
/// output-linear, the event sweep touches each candidate once per merged
/// event plus gapless-array scans, sort-merge pays one windowed merge pass,
/// the dual-window scan filters the narrower of two windows, and
/// backtracking re-checks every predicate per candidate. Planning code
/// multiplies reducer-side work estimates by this factor so colocation
/// reducers are no longer priced at backtracking cost — which previously
/// made [`auto_tune`] over-partition sweep-friendly queries.
pub fn kernel_work_multiplier(q: &JoinQuery) -> f64 {
    use crate::kernel::KernelStrategy::*;
    match crate::kernel::planned_kernel(q) {
        // kernel_event_sweep measures the event sweep ~2.9× faster than
        // the dual-window scan on an overlap-heavy clique (4.8ms vs
        // 13.7ms vs 10.9ms backtracking), hence 0.12 ≈ 0.35 × (4.8/13.7).
        PairSweep => 0.06,
        EventSweep => 0.12,
        SortMerge => 0.25,
        DualWindow => 0.35,
        Backtrack => 1.0,
    }
}

/// Estimated intermediate key-value pairs for an algorithm family.
///
/// This prices *communication* only; reducer compute is priced separately
/// via [`kernel_work_multiplier`].
pub fn estimate_pairs(_q: &JoinQuery, stats: &[RelationStats], family: AlgoFamily) -> f64 {
    let total_n: f64 = stats.iter().map(|s| s.n as f64).sum();
    let span: f64 = stats.iter().map(RelationStats::span).fold(1.0f64, f64::max);
    match family {
        AlgoFamily::AllReplicate { k } => {
            // Replicated relations average (k+1)/2 copies; the projected
            // (right-most) one ships once. Approximate all-but-one
            // replicated.
            let rightmost_n = stats.last().map(|s| s.n as f64).unwrap_or(0.0);
            (total_n - rightmost_n) * (k as f64 + 1.0) / 2.0 + rightmost_n
        }
        AlgoFamily::Rccis { k } => {
            // Cycle 1: split — one copy plus boundary crossings.
            let width = span / k as f64;
            let split: f64 = stats
                .iter()
                .map(|s| s.n as f64 * (1.0 + s.mean_len / width))
                .sum();
            // Cycle 2: project all + replicate the crossers (those whose
            // interval crosses a boundary are the flag candidates), each to
            // k/2 partitions on average.
            let crossers: f64 = stats
                .iter()
                .map(|s| s.n as f64 * (s.mean_len / width).min(1.0))
                .sum();
            split + total_n + crossers * k as f64 / 2.0
        }
        AlgoFamily::Matrix { o, dims } => {
            // Each tuple goes to the consistent cells sharing its
            // coordinate: with a single chain of constraints that is
            // ~ C(o + dims - 2, dims - 1) cells on average; approximate by
            // o^(dims-1) / (dims-1)! — and at least 1.
            let mut cells = 1.0;
            for i in 1..dims {
                cells *= o as f64 / i as f64;
            }
            total_n * cells.max(1.0)
        }
    }
}

/// Chooses partition counts so the number of reducers tracks the slot
/// count: 1-D algorithms get one partition per slot; matrix algorithms get
/// the smallest `o` whose *consistent* cell count reaches ~2× slots,
/// scaled by [`kernel_work_multiplier`] — a bucket served by a cheap
/// kernel (pair/event sweep, sort-merge) needs less over-partitioning to
/// mask skew than one served by the backtracking fallback, so the cell
/// target shrinks with the planned kernel's per-candidate cost (floored
/// at half to keep every slot busy).
pub fn auto_tune(q: &JoinQuery, slots: usize) -> PlanConfig {
    let comps = q.components();
    let dims = comps.len().max(1);
    let order = q.start_order();
    let constraints = order.component_constraints(&comps);
    let mult = kernel_work_multiplier(q).max(0.5);
    let target = (2.0 * slots.max(1) as f64 * mult).ceil() as u64;
    let mut per_dim = 2;
    for o in 2..=32usize {
        per_dim = o;
        if let Ok(space) = crate::all_matrix::CellSpace::new(dims, o, constraints.clone()) {
            if space.consistent_cells().len() as u64 >= target {
                break;
            }
        } else {
            // Matrix too large to enumerate — back off one step.
            per_dim = o.saturating_sub(1).max(2);
            break;
        }
    }
    PlanConfig {
        partitions: slots.max(1),
        per_dim,
        ..PlanConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::JoinInput;
    use crate::oracle::oracle_join;
    use ij_datagen::SynthConfig;
    use ij_interval::AllenPredicate::*;

    fn stats_for(n: usize, seed: u64) -> (Relation, RelationStats) {
        let rel = SynthConfig::table1(n, seed).generate("R");
        let st = RelationStats::collect(&rel);
        (rel, st)
    }

    #[test]
    fn stats_reflect_generation_parameters() {
        let (_, st) = stats_for(10_000, 1);
        assert_eq!(st.n, 10_000);
        // Table 1 config: lengths uniform in 1..=100 -> mean ~ 50.5.
        assert!(
            (st.mean_len - 50.5).abs() < 3.0,
            "mean_len = {}",
            st.mean_len
        );
        // Uniform starts: histogram buckets within 3x of each other.
        let max = *st.start_hist.iter().max().unwrap() as f64;
        let min = *st.start_hist.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 3.0);
    }

    #[test]
    fn output_estimate_within_small_factor_on_uniform_data() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let rels: Vec<Relation> = (0..3)
            .map(|r| SynthConfig::table1(4_000, 10 + r).generate("R"))
            .collect();
        let stats: Vec<RelationStats> = rels.iter().map(RelationStats::collect).collect();
        let est = estimate_output(&q, &stats);
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let actual = oracle_join(&q, &input).len() as f64;
        assert!(actual > 0.0);
        let ratio = est / actual;
        assert!(
            (0.25..4.0).contains(&ratio),
            "estimate {est}, actual {actual}, ratio {ratio}"
        );
    }

    #[test]
    fn before_estimate_tracks_half_of_pairs() {
        let q = JoinQuery::chain(&[Before]).unwrap();
        let rels: Vec<Relation> = (0..2)
            .map(|r| SynthConfig::fig5a(800, 20 + r).generate("R"))
            .collect();
        let stats: Vec<RelationStats> = rels.iter().map(RelationStats::collect).collect();
        let est = estimate_output(&q, &stats);
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let actual = oracle_join(&q, &input).len() as f64;
        let ratio = est / actual;
        assert!(
            (0.3..3.0).contains(&ratio),
            "estimate {est}, actual {actual}"
        );
    }

    #[test]
    fn pair_estimates_order_algorithms_correctly() {
        // On a colocation chain, RCCIS must be estimated far below All-Rep.
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let stats: Vec<RelationStats> = (0..3).map(|r| stats_for(20_000, 30 + r).1).collect();
        let rccis = estimate_pairs(&q, &stats, AlgoFamily::Rccis { k: 16 });
        let allrep = estimate_pairs(&q, &stats, AlgoFamily::AllReplicate { k: 16 });
        assert!(
            rccis * 2.0 < allrep,
            "rccis {rccis} should be well below allrep {allrep}"
        );
    }

    #[test]
    fn rccis_pair_estimate_matches_measurement_within_factor() {
        use crate::algorithm::Algorithm;
        use crate::output::OutputMode;
        use crate::rccis::Rccis;
        use ij_mapreduce::{ClusterConfig, Engine};
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let rels: Vec<Relation> = (0..3)
            .map(|r| SynthConfig::table1(8_000, 40 + r).generate("R"))
            .collect();
        let stats: Vec<RelationStats> = rels.iter().map(RelationStats::collect).collect();
        let est = estimate_pairs(&q, &stats, AlgoFamily::Rccis { k: 16 });
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let out = Rccis {
            partitions: 16,
            mode: OutputMode::Count,
            mark_options: Default::default(),
            partition_strategy: Default::default(),
        }
        .run(&q, &input, &engine)
        .unwrap();
        let actual = out.chain.total_pairs() as f64;
        let ratio = est / actual;
        assert!(
            (0.3..3.0).contains(&ratio),
            "estimate {est}, measured {actual}"
        );
    }

    #[test]
    fn kernel_multipliers_order_strategies_by_measured_cost() {
        // Pinned ordering, calibrated from the kernel criterion benches:
        // pair sweep < event sweep < sort-merge < dual-window < backtrack.
        let pair = kernel_work_multiplier(&JoinQuery::chain(&[Overlaps]).unwrap());
        let event = kernel_work_multiplier(
            &JoinQuery::new(
                3,
                vec![
                    ij_query::Condition::whole(0, Overlaps, 1),
                    ij_query::Condition::whole(1, Contains, 2),
                    ij_query::Condition::whole(0, Overlaps, 2),
                ],
            )
            .unwrap(),
        );
        let merge = kernel_work_multiplier(&JoinQuery::chain(&[Before, Before]).unwrap());
        let dual = kernel_work_multiplier(&JoinQuery::chain(&[Overlaps, Overlaps]).unwrap());
        let back = kernel_work_multiplier(&JoinQuery::chain(&[Overlaps, Before]).unwrap());
        assert!(pair < event, "pair sweep must price below event sweep");
        assert!(event < merge, "event sweep must price below sort-merge");
        assert!(merge < dual, "sort-merge must price below dual-window");
        assert!(dual < back, "dual-window must price below backtracking");
        assert_eq!(back, 1.0, "backtracking is the normalization point");
    }

    #[test]
    fn auto_tune_tracks_slots() {
        // Pure sequence 3-way: sort-merge multiplier 0.25 floors at 0.5,
        // so the cell target is 16; consistent cells grow ~ o^3/6 and the
        // tuner lands around o = 4-5 (C(o+2,3) >= 16).
        let q = JoinQuery::chain(&[Before, Before]).unwrap();
        let cfg = auto_tune(&q, 16);
        assert_eq!(cfg.partitions, 16);
        assert!((4..=8).contains(&cfg.per_dim), "per_dim = {}", cfg.per_dim);
        // Hybrid Q4: two dims, one constraint -> o around 8 for 32 cells.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Before, 1),
                ij_query::Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        let cfg = auto_tune(&q, 16);
        assert!((6..=10).contains(&cfg.per_dim), "per_dim = {}", cfg.per_dim);
    }

    #[test]
    fn empty_relation_stats_are_safe() {
        let st = RelationStats::collect(&Relation::new("E", 1));
        assert_eq!(st.n, 0);
        assert_eq!(st.density(), 0.0);
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let other = stats_for(100, 50).1;
        assert_eq!(estimate_output(&q, &[st, other]), 0.0);
    }
}
