//! Reducer-side multi-way join execution.
//!
//! Every reducer in every algorithm ultimately does the same thing: drain
//! its `ValueStream` once (in emission order — the stream may be backed by
//! the in-memory merge or by spilled Dfs runs, the reducer cannot tell)
//! into per-relation [`Candidates`] lists, enumerate the combinations that
//! satisfy all query conditions, keep the ones it *owns* (the
//! per-algorithm duplicate-elimination rule), and emit them.
//!
//! [`join_single_attr`] is the optimized path for single-attribute queries.
//! It delegates to the dispatching kernel (`crate::kernel`), which picks a
//! pair sweep, merged event-list sweep, dual-window plane sweep, sort-merge,
//! or the windowed-backtracking fallback by query shape; the fallback —
//! candidates sorted by start point, each backtracking level
//! binary-searching the window of compatible start points (via
//! [`ij_interval::AllenPredicate::right_start_bounds`]) — run over whole
//! relations with an all-accepting owner filter, is the test oracle's
//! engine.
//!
//! [`join_tuples`] is the general path for multi-attribute queries
//! (Gen-Matrix): a scan-based backtracking join with incremental condition
//! checks, adequate for the cell-sized groups reducers see.

use ij_interval::{Interval, Time, TupleId};
use ij_query::JoinQuery;
use std::ops::Bound;

/// Per-relation candidate lists for a single-attribute join, sorted by
/// interval start point.
#[derive(Debug, Clone)]
pub struct Candidates {
    lists: Vec<Vec<(Interval, TupleId)>>,
    sorted: bool,
}

impl Candidates {
    /// Empty lists for `m` relations.
    pub fn new(m: usize) -> Self {
        Candidates {
            lists: vec![Vec::new(); m],
            sorted: false,
        }
    }

    /// Adds a candidate to relation `rel`.
    pub fn push(&mut self, rel: usize, iv: Interval, tid: TupleId) {
        self.lists[rel].push((iv, tid));
        self.sorted = false;
    }

    /// Sorts all lists by (start, tid); must be called before joining.
    pub fn finish(&mut self) {
        for l in &mut self.lists {
            l.sort_unstable_by_key(|(iv, tid)| (iv.start(), *tid));
        }
        self.sorted = true;
    }

    /// Number of candidates for relation `rel`.
    pub fn len(&self, rel: usize) -> usize {
        self.lists[rel].len()
    }

    /// Whether any relation has no candidates (join output is then empty).
    pub fn any_empty(&self) -> bool {
        self.lists.iter().any(Vec::is_empty)
    }

    /// The sorted list for `rel`.
    pub fn list(&self, rel: usize) -> &[(Interval, TupleId)] {
        &self.lists[rel]
    }

    /// Whether [`finish`](Candidates::finish) has been called since the
    /// last mutation.
    pub(crate) fn is_sorted(&self) -> bool {
        self.sorted
    }
}

/// Computes a binding order for backtracking.
///
/// Relations are bound left-to-right in the provable start order: when the
/// bound neighbor starts *before* the candidate, the candidate's start
/// window from [`ij_interval::AllenPredicate::right_start_bounds`] is
/// bounded on both sides for every colocation predicate, so each level
/// binary-searches a small window. (Binding right-to-left instead would
/// give half-open windows — "everything that starts before me" — and
/// degrade to quadratic scans.) Connectivity still matters: among
/// equal-rank candidates we grow BFS-style from the already-bound set and
/// prefer the smallest candidate list.
pub(crate) fn binding_order(q: &JoinQuery, list_len: impl Fn(usize) -> usize) -> Vec<usize> {
    let m = q.num_relations() as usize;
    let mut adj = vec![Vec::new(); m];
    for c in q.conditions() {
        adj[c.left.rel.idx()].push(c.right.rel.idx());
        adj[c.right.rel.idx()].push(c.left.rel.idx());
    }
    // rank[r] = number of relations provably starting strictly before r —
    // left-most relations get bound first.
    let order_info = q.start_order();
    let rank: Vec<usize> = (0..m)
        .map(|r| {
            (0..m)
                .filter(|&o| {
                    o != r
                        && order_info.le_start(
                            ij_query::AttrRef::whole(o as u16),
                            ij_query::AttrRef::whole(r as u16),
                        )
                        && !order_info.le_start(
                            ij_query::AttrRef::whole(r as u16),
                            ij_query::AttrRef::whole(o as u16),
                        )
                })
                .count()
        })
        .collect();
    let mut order = Vec::with_capacity(m);
    let mut placed = vec![false; m];
    while order.len() < m {
        // Prefer: connected to the bound set, then lowest rank, then the
        // smallest list.
        let next = (0..m)
            .filter(|&r| !placed[r])
            .min_by_key(|&r| {
                let disconnected = !order.is_empty() && !adj[r].iter().any(|&n| placed[n]);
                (disconnected, rank[r], list_len(r))
            })
            .expect("some relation unplaced");
        placed[next] = true;
        order.push(next);
    }
    order
}

/// Merges two start-point lower bounds, keeping the tighter.
pub(crate) fn tighten_lower(a: Bound<Time>, b: Bound<Time>) -> Bound<Time> {
    use Bound::*;
    match (a, b) {
        (Unbounded, x) | (x, Unbounded) => x,
        (Included(x), Included(y)) => Included(x.max(y)),
        (Excluded(x), Excluded(y)) => Excluded(x.max(y)),
        (Included(i), Excluded(e)) | (Excluded(e), Included(i)) => {
            if e >= i {
                Excluded(e)
            } else {
                Included(i)
            }
        }
    }
}

/// Merges two start-point upper bounds, keeping the tighter.
pub(crate) fn tighten_upper(a: Bound<Time>, b: Bound<Time>) -> Bound<Time> {
    use Bound::*;
    match (a, b) {
        (Unbounded, x) | (x, Unbounded) => x,
        (Included(x), Included(y)) => Included(x.min(y)),
        (Excluded(x), Excluded(y)) => Excluded(x.min(y)),
        (Included(i), Excluded(e)) | (Excluded(e), Included(i)) => {
            if e <= i {
                Excluded(e)
            } else {
                Included(i)
            }
        }
    }
}

/// Index range of a sorted-by-start list compatible with the bounds.
pub(crate) fn window(
    list: &[(Interval, TupleId)],
    lo: Bound<Time>,
    hi: Bound<Time>,
) -> (usize, usize) {
    let start = match lo {
        Bound::Unbounded => 0,
        Bound::Included(x) => list.partition_point(|(iv, _)| iv.start() < x),
        Bound::Excluded(x) => list.partition_point(|(iv, _)| iv.start() <= x),
    };
    let end = match hi {
        Bound::Unbounded => list.len(),
        Bound::Included(x) => list.partition_point(|(iv, _)| iv.start() <= x),
        Bound::Excluded(x) => list.partition_point(|(iv, _)| iv.start() < x),
    };
    (start, end.max(start))
}

/// Enumerates all combinations (one candidate per relation) satisfying
/// every condition of `q`; calls `on_output` for those `accept` approves.
///
/// `accept` receives the full assignment — `assignment[r]` is relation `r`'s
/// `(interval, tuple id)` — and implements the algorithm's ownership rule;
/// the oracle passes `|_| true`.
///
/// Returns the work units spent (candidates examined), which reducers
/// report to the cost model.
///
/// # Panics
/// Panics if `cands` was not [`finish`](Candidates::finish)ed.
pub fn join_single_attr(
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    on_output: impl FnMut(&[(Interval, TupleId)]),
) -> u64 {
    crate::kernel::execute_serial(q, cands, accept, on_output).work
}

/// General multi-attribute backtracking join over full tuples.
///
/// `lists[r]` holds relation `r`'s candidate tuples as
/// `(tuple id, attribute values)`. Scan-based (no index), with conditions
/// checked as soon as both endpoints are bound.
pub fn join_tuples(
    q: &JoinQuery,
    lists: &[Vec<(TupleId, Vec<Interval>)>],
    accept: impl Fn(&[(TupleId, &[Interval])]) -> bool,
    mut on_output: impl FnMut(&[(TupleId, &[Interval])]),
) -> u64 {
    let m = q.num_relations() as usize;
    debug_assert_eq!(lists.len(), m);
    if lists.iter().any(Vec::is_empty) {
        return 0;
    }
    let order = binding_order(q, |r| lists[r].len());
    let mut level_of = vec![0usize; m];
    for (lvl, &r) in order.iter().enumerate() {
        level_of[r] = lvl;
    }
    let mut checks: Vec<Vec<&ij_query::Condition>> = vec![Vec::new(); m];
    for c in q.conditions() {
        let (l, r) = (c.left.rel.idx(), c.right.rel.idx());
        let later = if level_of[l] > level_of[r] { l } else { r };
        checks[level_of[later]].push(c);
    }
    let mut chosen: Vec<usize> = vec![0; m];
    let mut work = 0u64;
    descend_tuples(
        q,
        lists,
        &order,
        &checks,
        0,
        &mut chosen,
        &accept,
        &mut on_output,
        &mut work,
    );
    work
}

#[allow(clippy::too_many_arguments)]
fn descend_tuples(
    _q: &JoinQuery,
    lists: &[Vec<(TupleId, Vec<Interval>)>],
    order: &[usize],
    checks: &[Vec<&ij_query::Condition>],
    level: usize,
    chosen: &mut Vec<usize>,
    accept: &impl Fn(&[(TupleId, &[Interval])]) -> bool,
    on_output: &mut impl FnMut(&[(TupleId, &[Interval])]),
    work: &mut u64,
) {
    if level == order.len() {
        let assignment: Vec<(TupleId, &[Interval])> = (0..lists.len())
            .map(|r| {
                let (tid, attrs) = &lists[r][chosen[r]];
                (*tid, attrs.as_slice())
            })
            .collect();
        if accept(&assignment) {
            on_output(&assignment);
        }
        return;
    }
    let rel = order[level];
    *work += lists[rel].len() as u64;
    'candidates: for (i, (_, attrs)) in lists[rel].iter().enumerate() {
        for c in &checks[level] {
            let (this_ref, other_ref, this_is_left) = if c.left.rel.idx() == rel {
                (c.left, c.right, true)
            } else {
                (c.right, c.left, false)
            };
            let this_iv = attrs[this_ref.attr as usize];
            let other = &lists[other_ref.rel.idx()][chosen[other_ref.rel.idx()]];
            let other_iv = other.1[other_ref.attr as usize];
            let ok = if this_is_left {
                c.pred.holds(this_iv, other_iv)
            } else {
                c.pred.holds(other_iv, this_iv)
            };
            if !ok {
                continue 'candidates;
            }
        }
        chosen[rel] = i;
        descend_tuples(
            _q,
            lists,
            order,
            checks,
            level + 1,
            chosen,
            accept,
            on_output,
            work,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    /// Brute-force reference: full cross product filtered by the query.
    fn brute(q: &JoinQuery, cands: &Candidates) -> Vec<Vec<TupleId>> {
        let m = q.num_relations() as usize;
        let mut out = Vec::new();
        let mut idx = vec![0usize; m];
        loop {
            let ivs: Vec<Interval> = (0..m).map(|r| cands.list(r)[idx[r]].0).collect();
            if q.satisfied_by(&ivs) {
                out.push((0..m).map(|r| cands.list(r)[idx[r]].1).collect());
            }
            // Odometer.
            let mut k = 0;
            loop {
                idx[k] += 1;
                if idx[k] < cands.len(k) {
                    break;
                }
                idx[k] = 0;
                k += 1;
                if k == m {
                    out.sort();
                    return out;
                }
            }
        }
    }

    fn run(q: &JoinQuery, cands: &Candidates) -> Vec<Vec<TupleId>> {
        let mut got = Vec::new();
        join_single_attr(
            q,
            cands,
            |_| true,
            |a| got.push(a.iter().map(|(_, t)| *t).collect::<Vec<_>>()),
        );
        got.sort();
        got
    }

    #[test]
    fn matches_brute_force_on_chain() {
        let q = JoinQuery::chain(&[Overlaps, Contains]).unwrap();
        let mut c = Candidates::new(3);
        for (i, ivv) in [iv(0, 10), iv(4, 9), iv(20, 30)].into_iter().enumerate() {
            c.push(0, ivv, i as u32);
        }
        for (i, ivv) in [iv(5, 15), iv(8, 40), iv(25, 60)].into_iter().enumerate() {
            c.push(1, ivv, i as u32);
        }
        for (i, ivv) in [iv(9, 12), iv(30, 39), iv(26, 50)].into_iter().enumerate() {
            c.push(2, ivv, i as u32);
        }
        c.finish();
        assert_eq!(run(&q, &c), brute(&q, &c));
        assert!(!run(&q, &c).is_empty());
    }

    #[test]
    fn matches_brute_force_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for preds in [
            vec![Overlaps, Overlaps],
            vec![Before, Before],
            vec![Overlaps, Before],
            vec![Contains, Meets],
            vec![Equals, Starts],
            vec![Finishes, OverlappedBy],
        ] {
            let q = JoinQuery::chain(&preds).unwrap();
            for _ in 0..20 {
                let m = q.num_relations() as usize;
                let mut c = Candidates::new(m);
                for r in 0..m {
                    for t in 0..8u32 {
                        let s = rng.gen_range(0..40);
                        let e = s + rng.gen_range(0..15);
                        c.push(r, iv(s, e), t);
                    }
                }
                c.finish();
                assert_eq!(run(&q, &c), brute(&q, &c), "preds {preds:?}");
            }
        }
    }

    #[test]
    fn accept_filters_outputs() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut c = Candidates::new(2);
        c.push(0, iv(0, 10), 0);
        c.push(1, iv(5, 15), 0);
        c.push(1, iv(8, 20), 1);
        c.finish();
        let mut n = 0;
        join_single_attr(&q, &c, |a| a[1].1 == 1, |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_relation_short_circuits() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut c = Candidates::new(2);
        c.push(0, iv(0, 10), 0);
        c.finish();
        let work = join_single_attr(&q, &c, |_| true, |_| panic!("no outputs"));
        assert_eq!(work, 0);
    }

    #[test]
    #[should_panic(expected = "finish")]
    fn unsorted_candidates_panic() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut c = Candidates::new(2);
        c.push(0, iv(0, 10), 0);
        c.push(1, iv(5, 15), 0);
        join_single_attr(&q, &c, |_| true, |_| {});
    }

    #[test]
    fn windows_prune_work() {
        // 1000 R2 candidates far to the right; an overlaps window from a
        // short R1 interval must not scan them all.
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut c = Candidates::new(2);
        c.push(0, iv(0, 10), 0);
        for t in 0..1000u32 {
            c.push(1, iv(1000 + t as i64, 1010 + t as i64), t);
        }
        c.push(1, iv(5, 20), 1000);
        c.finish();
        let mut outs = 0;
        let work = join_single_attr(&q, &c, |_| true, |_| outs += 1);
        assert_eq!(outs, 1);
        assert!(
            work < 20,
            "work = {work}, window should exclude the far tail"
        );
    }

    #[test]
    fn join_tuples_matches_single_attr_on_plain_queries() {
        let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
        let mut c = Candidates::new(3);
        let data: [&[(i64, i64)]; 3] = [
            &[(0, 10), (2, 7), (30, 35)],
            &[(5, 12), (6, 20)],
            &[(15, 18), (25, 40), (13, 14)],
        ];
        let mut lists: Vec<Vec<(TupleId, Vec<Interval>)>> = vec![Vec::new(); 3];
        for (r, rows) in data.iter().enumerate() {
            for (t, &(s, e)) in rows.iter().enumerate() {
                c.push(r, iv(s, e), t as u32);
                lists[r].push((t as u32, vec![iv(s, e)]));
            }
        }
        c.finish();
        let fast = run(&q, &c);
        let mut slow: Vec<Vec<TupleId>> = Vec::new();
        join_tuples(
            &q,
            &lists,
            |_| true,
            |a| slow.push(a.iter().map(|(t, _)| *t).collect()),
        );
        slow.sort();
        assert_eq!(fast, slow);
    }

    #[test]
    fn join_tuples_multi_attribute() {
        use ij_query::{AttrRef, Condition};
        // R1.a0 overlaps R2.a0 and R1.a1 = R2.a1
        let q = JoinQuery::with_relations(
            vec![
                ij_query::query::RelationMeta {
                    name: "R1".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
                ij_query::query::RelationMeta {
                    name: "R2".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
            ],
            vec![
                Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(1, 0)),
                Condition::new(AttrRef::new(0, 1), Equals, AttrRef::new(1, 1)),
            ],
        )
        .unwrap();
        let lists = vec![
            vec![
                (0u32, vec![iv(0, 10), Interval::point(7)]),
                (1u32, vec![iv(0, 10), Interval::point(8)]),
            ],
            vec![
                (0u32, vec![iv(5, 15), Interval::point(7)]),
                (1u32, vec![iv(5, 15), Interval::point(9)]),
            ],
        ];
        let mut out = Vec::new();
        join_tuples(
            &q,
            &lists,
            |_| true,
            |a| {
                out.push((a[0].0, a[1].0));
            },
        );
        assert_eq!(out, vec![(0, 0)]);
    }

    #[test]
    fn binding_order_covers_disconnected_queries() {
        let q = JoinQuery::new(
            4,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(2, Overlaps, 3),
            ],
        )
        .unwrap();
        let order = binding_order(&q, |_| 1);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
