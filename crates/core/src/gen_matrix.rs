//! Gen-Matrix (paper Section 9.1) — multi-attribute interval joins.
//!
//! Generalizes All-Seq-Matrix to ⟨relation, attribute⟩ vertices: the
//! colocation components of the *attribute-level* join graph become the
//! matrix dimensions, each component's colocation query is marked with
//! RCCIS over that attribute's values, and whole tuples are routed to the
//! cells satisfying condition E2 for *every* join attribute simultaneously.
//! Real-valued attributes ride along as length-0 intervals, turning
//! equality into Allen *equals* and `<`/`>` into *before*/*after*.
//!
//! Two MR cycles: attribute-level marking, then the matrix join.

use crate::algorithm::{empty_output, AlgoError, Algorithm, RunArtifacts};
use crate::all_matrix::CellSpace;
use crate::executor::join_tuples;
use crate::input::JoinInput;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{OutRec, TupleRec, VtxRec};
use ij_interval::{ops, Interval, Partitioning, RelId, TupleId};
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::{Components, JoinQuery};
use std::collections::BTreeSet;

/// The Gen-Matrix algorithm.
#[derive(Debug, Clone)]
pub struct GenMatrix {
    /// Partitions per matrix dimension (`o`; the paper uses 5 for Q5,
    /// giving 375 consistent of 625 cells).
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl GenMatrix {
    /// Gen-Matrix with `o = per_dim`, materializing output.
    pub fn new(per_dim: usize) -> Self {
        GenMatrix {
            per_dim,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for GenMatrix {
    fn name(&self) -> &'static str {
        "Gen-Matrix"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        let order = query.start_order();
        if order.contradictory() {
            return Ok(empty_output(self.mode));
        }
        let comps = query.components();
        let l = comps.len();
        // All dimensions span the same temporal range (Section 7.1).
        let part = RunArtifacts::partition_span(input.span_all_attrs(query), self.per_dim)?;
        let space = CellSpace::new(l, self.per_dim, order.component_constraints(&comps))?;
        let mut chain = JobChain::new();

        // Flatten tuples once.
        let tuples: Vec<TupleRec> = input
            .relations()
            .iter()
            .enumerate()
            .flat_map(|(r, rel)| {
                rel.tuples().iter().map(move |t| TupleRec {
                    rel: RelId(r as u16),
                    tid: t.id,
                    attrs: t.attrs.clone(),
                })
            })
            .collect();

        // ---- Cycle 1: attribute-level replication marking -------------------
        let flagged = run_vertex_marking(query, &comps, &part, &tuples, engine, &mut chain)?;
        let replicated = flagged.len() as u64;

        // ---- Cycle 2: matrix join -------------------------------------------
        // Per relation: its join vertices as (attr, component id).
        let rel_vertices: Vec<Vec<(u16, usize)>> = (0..query.num_relations())
            .map(|r| {
                comps
                    .components_of_relation(RelId(r))
                    .into_iter()
                    .map(|(k, v)| (v.attr, k))
                    .collect()
            })
            .collect();

        let mode = self.mode;
        let q = query.clone();
        let partc = part.clone();
        let spacec = space.clone();
        let compsc = comps.clone();
        let m = query.num_relations() as usize;
        let per_dim = self.per_dim;
        let out = engine.run_job(
            "gen-matrix-join",
            &tuples,
            {
                let partc = partc.clone();
                let spacec = spacec.clone();
                let flagged = flagged.clone();
                let rel_vertices = rel_vertices.clone();
                move |rec: &TupleRec, em: &mut Emitter<TupleRec>| {
                    // Allowed coordinate ranges per dimension touched by
                    // this relation; untouched dimensions are free.
                    let mut lo = vec![0usize; spacec.dims()];
                    let mut hi = vec![per_dim - 1; spacec.dims()];
                    for &(attr, k) in &rel_vertices[rec.rel.idx()] {
                        let qidx = partc.index_of(rec.attrs[attr as usize].start());
                        let is_flagged = flagged.contains(&flag_key(rec.rel, attr, rec.tid));
                        lo[k] = lo[k].max(qidx);
                        if !is_flagged {
                            hi[k] = hi[k].min(qidx);
                        }
                        if lo[k] > hi[k] {
                            return; // contradictory attribute placement
                        }
                    }
                    // Enumerate the coordinate box, keep consistent cells.
                    let mut coords = lo.clone();
                    'outer: loop {
                        if spacec.is_consistent(&coords) {
                            em.emit(spacec.encode(&coords), rec.clone());
                        }
                        let mut d = 0;
                        loop {
                            coords[d] += 1;
                            if coords[d] <= hi[d] {
                                break;
                            }
                            coords[d] = lo[d];
                            d += 1;
                            if d == coords.len() {
                                break 'outer;
                            }
                        }
                    }
                }
            },
            move |ctx: &mut ReduceCtx,
                  values: &mut ValueStream<TupleRec>,
                  out: &mut Vec<OutRec>| {
                let coords = spacec.decode(ctx.key);
                let mut lists: Vec<Vec<(TupleId, Vec<Interval>)>> = vec![Vec::new(); m];
                for v in values.by_ref() {
                    lists[v.rel.idx()].push((v.tid, v.attrs));
                }
                let mut count = 0u64;
                let work = join_tuples(
                    &q,
                    &lists,
                    |a: &[(TupleId, &[Interval])]| {
                        owns_tuple_assignment(&compsc, &partc, &coords, a)
                    },
                    |a| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            out.push(OutRec::Tuple(a.iter().map(|(t, _)| *t).collect()));
                        }
                    },
                );
                ctx.add_work(work);
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;
        chain.push(out.metrics);

        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.replicated_intervals = Some(replicated);
        result.stats.consistent_cells =
            Some((space.consistent_cells().len() as u64, space.total_cells()));
        Ok(result)
    }
}

fn flag_key(rel: RelId, attr: u16, tid: TupleId) -> u64 {
    (rel.0 as u64) << 48 | (attr as u64) << 32 | tid as u64
}

/// Ownership: for every component, the maximal start partition over the
/// assignment's member attribute intervals equals the cell coordinate.
fn owns_tuple_assignment(
    comps: &Components,
    part: &Partitioning,
    coords: &[usize],
    a: &[(TupleId, &[Interval])],
) -> bool {
    for comp in &comps.components {
        let q_k = comp
            .vertices
            .iter()
            .map(|v| part.index_of(a[v.rel.idx()].1[v.attr as usize].start()))
            .max()
            .expect("non-empty component");
        if q_k != coords[comp.id] {
            return false;
        }
    }
    true
}

/// The attribute-level marking cycle: like
/// [`crate::hybrid::run_component_marking`], but vertices are
/// ⟨relation, attribute⟩ pairs and only *flagged* vertices are returned
/// (as a set of keys), since unflagged is the default.
fn run_vertex_marking(
    query: &JoinQuery,
    comps: &Components,
    part: &Partitioning,
    tuples: &[TupleRec],
    engine: &Engine,
    chain: &mut JobChain,
) -> Result<BTreeSet<u64>, AlgoError> {
    let p_count = part.len() as u64;
    let multi: Vec<bool> = comps
        .components
        .iter()
        .map(|c| c.vertices.len() >= 2)
        .collect();
    // vertex -> (component, local index), keyed by (rel, attr).
    let sub_queries: Vec<Option<JoinQuery>> =
        comps.components.iter().map(|c| c.as_query(query)).collect();
    let rel_vertices: Vec<Vec<(u16, usize)>> = (0..query.num_relations())
        .map(|r| {
            comps
                .components_of_relation(RelId(r))
                .into_iter()
                .map(|(k, v)| (v.attr, k))
                .collect()
        })
        .collect();
    let comps_local: Vec<std::collections::BTreeMap<(u16, u16), usize>> = comps
        .components
        .iter()
        .map(|c| {
            c.vertices
                .iter()
                .enumerate()
                .map(|(i, v)| ((v.rel.0, v.attr), i))
                .collect()
        })
        .collect();
    let vertex_of_local: Vec<Vec<(u16, u16)>> = comps
        .components
        .iter()
        .map(|c| c.vertices.iter().map(|v| (v.rel.0, v.attr)).collect())
        .collect();

    let partc = part.clone();
    let out = engine.run_job(
        "gen-matrix-mark",
        tuples,
        {
            let partc = partc.clone();
            let rel_vertices = rel_vertices.clone();
            let multi = multi.clone();
            move |rec: &TupleRec, em: &mut Emitter<VtxRec>| {
                for &(attr, k) in &rel_vertices[rec.rel.idx()] {
                    if !multi[k] {
                        continue; // singleton vertices are never flagged
                    }
                    let iv = rec.attrs[attr as usize];
                    for p in ops::split(iv, &partc) {
                        em.emit(
                            k as u64 * p_count + p as u64,
                            VtxRec {
                                rel: rec.rel,
                                attr,
                                tid: rec.tid,
                                iv,
                            },
                        );
                    }
                }
            }
        },
        move |ctx: &mut ReduceCtx, values: &mut ValueStream<VtxRec>, out: &mut Vec<u64>| {
            let k = (ctx.key / p_count) as usize;
            let p = (ctx.key % p_count) as usize;
            let sq = sub_queries[k].as_ref().expect("multi-vertex component");
            let local_of = &comps_local[k];
            let mut per_rel: Vec<Vec<(Interval, TupleId)>> =
                vec![Vec::new(); sq.num_relations() as usize];
            for v in values.by_ref() {
                let local = local_of[&(v.rel.0, v.attr)];
                per_rel[local].push((v.iv, v.tid));
            }
            let marking = crate::rccis::marking::mark(sq, &partc, p, per_rel);
            ctx.add_work(marking.work);
            for (local, (list, flags)) in marking.sorted.iter().zip(&marking.flags).enumerate() {
                let (rel, attr) = vertex_of_local[k][local];
                for (&(iv, tid), &flag) in list.iter().zip(flags) {
                    if flag && partc.index_of(iv.start()) == p {
                        out.push(flag_key(RelId(rel), attr, tid));
                    }
                }
            }
        },
    )?;
    chain.push(out.metrics);
    Ok(out.outputs.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use ij_query::query::RelationMeta;
    use ij_query::{AttrRef, Condition};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    /// Q5 from Section 9: R1.I before R2.I and R1.I overlaps R3.I and
    /// R1.A = R3.A and R2.B = R3.B.
    fn q5() -> JoinQuery {
        JoinQuery::with_relations(
            vec![
                RelationMeta {
                    name: "R1".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
                RelationMeta {
                    name: "R2".into(),
                    attr_names: vec!["I".into(), "B".into()],
                },
                RelationMeta {
                    name: "R3".into(),
                    attr_names: vec!["I".into(), "A".into(), "B".into()],
                },
            ],
            vec![
                Condition::new(AttrRef::new(0, 0), Before, AttrRef::new(1, 0)),
                Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(2, 0)),
                Condition::new(AttrRef::new(0, 1), Equals, AttrRef::new(2, 1)),
                Condition::new(AttrRef::new(1, 1), Equals, AttrRef::new(2, 2)),
            ],
        )
        .unwrap()
    }

    /// Random Q5-shaped data: intervals over the span, attributes A/B from
    /// small domains so equalities actually match.
    fn q5_input(seed: u64, n: usize) -> JoinInput {
        let mut rng = StdRng::seed_from_u64(seed);
        let iv = |rng: &mut StdRng| {
            let s = rng.gen_range(0..300i64);
            Interval::new(s, s + rng.gen_range(0..40)).unwrap()
        };
        let r1 = Relation::from_rows(
            "R1",
            (0..n).map(|_| vec![iv(&mut rng), Interval::point(rng.gen_range(0..5))]),
        );
        let r2 = Relation::from_rows(
            "R2",
            (0..n).map(|_| vec![iv(&mut rng), Interval::point(rng.gen_range(0..5))]),
        );
        let r3 = Relation::from_rows(
            "R3",
            (0..n).map(|_| {
                vec![
                    iv(&mut rng),
                    Interval::point(rng.gen_range(0..5)),
                    Interval::point(rng.gen_range(0..5)),
                ]
            }),
        );
        JoinInput::bind_owned(&q5(), vec![r1, r2, r3]).unwrap()
    }

    #[test]
    fn q5_matches_oracle() {
        let q = q5();
        for seed in 0..4 {
            let input = q5_input(seed, 40);
            let got = GenMatrix::new(5)
                .run(&q, &input, &engine())
                .unwrap()
                .assert_no_duplicates();
            assert_eq!(got, oracle_join(&q, &input), "seed {seed}");
        }
    }

    #[test]
    fn q5_consistent_cells_match_paper() {
        // o = 5, 4 dims, one constraint: 375 of 625 (Table 4's setting).
        let q = q5();
        let input = q5_input(9, 20);
        let out = GenMatrix::new(5).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.stats.consistent_cells, Some((375, 625)));
        assert_eq!(out.chain.num_cycles(), 2);
    }

    #[test]
    fn single_attribute_queries_also_run() {
        // Gen-Matrix subsumes the single-attribute algorithms.
        let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rels = (0..3)
            .map(|_| {
                Relation::from_intervals(
                    "R",
                    (0..40).map(|_| {
                        let s = rng.gen_range(0..300i64);
                        Interval::new(s, s + rng.gen_range(0..40)).unwrap()
                    }),
                )
            })
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let got = GenMatrix::new(5)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn real_valued_equi_join_via_point_intervals() {
        // Pure equi-join on real values: R1.A = R2.A.
        let q = JoinQuery::with_relations(
            vec![
                RelationMeta {
                    name: "R1".into(),
                    attr_names: vec!["A".into()],
                },
                RelationMeta {
                    name: "R2".into(),
                    attr_names: vec!["A".into()],
                },
            ],
            vec![Condition::new(
                AttrRef::new(0, 0),
                Equals,
                AttrRef::new(1, 0),
            )],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let r1 =
            Relation::from_intervals("R1", (0..50).map(|_| Interval::point(rng.gen_range(0..20))));
        let r2 =
            Relation::from_intervals("R2", (0..50).map(|_| Interval::point(rng.gen_range(0..20))));
        let input = JoinInput::bind_owned(&q, vec![r1, r2]).unwrap();
        let got = GenMatrix::new(4)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
        assert!(!got.is_empty(), "equi-join on a small domain should match");
    }

    #[test]
    fn mixed_interval_and_real_theta() {
        // R1.I overlaps R2.I and R1.A < R2.A (before on points).
        let q = JoinQuery::with_relations(
            vec![
                RelationMeta {
                    name: "R1".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
                RelationMeta {
                    name: "R2".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
            ],
            vec![
                Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(1, 0)),
                Condition::new(AttrRef::new(0, 1), Before, AttrRef::new(1, 1)),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mk = |rng: &mut StdRng, n: usize| {
            Relation::from_rows(
                "R",
                (0..n).map(|_| {
                    let s = rng.gen_range(0..200i64);
                    vec![
                        Interval::new(s, s + rng.gen_range(0..30)).unwrap(),
                        Interval::point(rng.gen_range(0..50)),
                    ]
                }),
            )
        };
        let input = JoinInput::bind_owned(&q, vec![mk(&mut rng, 50), mk(&mut rng, 50)]).unwrap();
        let got = GenMatrix::new(4)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }
}
