//! All-Seq-Matrix (paper Section 8.1).
//!
//! Two MR cycles:
//!
//! 1. RCCIS replication marking per colocation component
//!    (`run_component_marking` in the hybrid module);
//! 2. a component-dimensional matrix join: an interval of component `k`
//!    starting in partition `q` goes to all consistent cells with
//!    `coord_k >= q` if flagged, `coord_k == q` otherwise (conditions E1
//!    and E2); each reducer joins what it received and emits the tuples it
//!    owns (per-component right-most start partitions match its cell).

use crate::algorithm::{
    empty_output, iv_records, require_single_attr, AlgoError, Algorithm, RunArtifacts,
};
use crate::all_matrix::CellSpace;
use crate::executor::Candidates;
use crate::hybrid::{owns_assignment, run_component_marking};
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{FlagRec, IvRec, OutRec};
use ij_interval::{Interval, TupleId};
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::{AttrRef, JoinQuery};

/// The All-Seq-Matrix algorithm.
#[derive(Debug, Clone)]
pub struct AllSeqMatrix {
    /// Partitions per matrix dimension (`o`).
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl AllSeqMatrix {
    /// All-Seq-Matrix with `o = per_dim`, materializing output.
    pub fn new(per_dim: usize) -> Self {
        AllSeqMatrix {
            per_dim,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for AllSeqMatrix {
    fn name(&self) -> &'static str {
        "All-Seq-Matrix"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        let order = query.start_order();
        if order.contradictory() {
            return Ok(empty_output(self.mode));
        }
        let comps = query.components();
        let l = comps.len();
        let part = RunArtifacts::partition_span(input.span(), self.per_dim)?;
        let space = CellSpace::new(l, self.per_dim, order.component_constraints(&comps))?;
        let mut chain = JobChain::new();

        // ---- Cycle 1: per-component replication marking -------------------
        let flags =
            run_component_marking(query, &comps, &part, &iv_records(input), engine, &mut chain)?;
        let replicated = flags.iter().filter(|f| f.replicate).count() as u64;

        // ---- Cycle 2: matrix join ------------------------------------------
        let comp_of: Vec<usize> = (0..query.num_relations())
            .map(|r| comps.component_of(AttrRef::whole(r)).expect("component"))
            .collect();
        let m = query.num_relations() as usize;
        let mode = self.mode;
        let q = query.clone();
        let partc = part.clone();
        let spacec = space.clone();
        let compsc = comps.clone();
        let out = engine.run_job(
            "asm-join",
            &flags,
            {
                let partc = partc.clone();
                let spacec = spacec.clone();
                move |rec: &FlagRec, em: &mut Emitter<IvRec>| {
                    let k = comp_of[rec.rec.rel.idx()];
                    let qidx = partc.index_of(rec.rec.iv.start());
                    let cells = if rec.replicate {
                        spacec.cells_ge(k, qidx)
                    } else {
                        spacec.cells_eq(k, qidx)
                    };
                    em.emit_to_all(cells.iter().copied(), &rec.rec);
                }
            },
            move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
                let coords = spacec.decode(ctx.key);
                let mut cands = Candidates::new(m);
                for v in values.by_ref() {
                    cands.push(v.rel.idx(), v.iv, v.tid);
                }
                cands.finish();
                let mut count = 0u64;
                kernel::reduce_join(
                    ctx,
                    &q,
                    &cands,
                    |a: &[(Interval, TupleId)]| {
                        owns_assignment(&compsc, &partc, &coords, |r| a[r].0)
                    },
                    |a| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                        }
                    },
                );
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;
        chain.push(out.metrics);

        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.replicated_intervals = Some(replicated);
        result.stats.consistent_cells =
            Some((space.consistent_cells().len() as u64, space.total_cells()));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::{self, *};
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use ij_query::Condition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check_q(q: &JoinQuery, seed: u64, n: usize, o: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 50))
            .collect();
        let input = JoinInput::bind_owned(q, rels).unwrap();
        let got = AllSeqMatrix::new(o)
            .run(q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(q, &input), "query {q}");
    }

    fn check(preds: &[AllenPredicate], seed: u64, n: usize, o: usize) {
        check_q(&JoinQuery::chain(preds).unwrap(), seed, n, o);
    }

    #[test]
    fn hybrid_chains_match_oracle() {
        check(&[Overlaps, Before], 1, 50, 5);
        check(&[Before, Overlaps], 2, 50, 5);
        check(&[Overlaps, Before, Overlaps], 3, 30, 4);
    }

    #[test]
    fn q3_shape_matches_oracle() {
        // Q3: R1 ov R2, R2 ov R3, R2 before R4, R4 ov R5.
        let q = JoinQuery::new(
            5,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(1, Before, 3),
                Condition::whole(3, Overlaps, 4),
            ],
        )
        .unwrap();
        check_q(&q, 4, 25, 4);
    }

    #[test]
    fn q4_shape_matches_oracle() {
        // Q4: R1 before R2 and R1 overlaps R3 (Table 3's query).
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        check_q(&q, 5, 60, 6);
    }

    #[test]
    fn pure_sequence_degenerates_to_all_matrix() {
        check(&[Before, Before], 6, 40, 5);
    }

    #[test]
    fn pure_colocation_works_too() {
        // One component: cycle 2 is a 1-D matrix — effectively RCCIS.
        check(&[Overlaps, Contains], 7, 40, 6);
    }

    #[test]
    fn unsound_component_order_case_still_correct() {
        // R1 ov R2, R2 ov R3, R1 before R4 — the case where the paper's
        // direct component-order rule would lose tuples (DESIGN.md §5). Our
        // sound inference emits no constraint, so the run stays correct.
        let q = JoinQuery::new(
            4,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(0, Before, 3),
            ],
        )
        .unwrap();
        for seed in 0..5 {
            check_q(&q, 100 + seed, 30, 4);
        }
        // And the constructed counterexample data specifically:
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("R1", vec![Interval::new(0, 10).unwrap()]),
                Relation::from_intervals("R2", vec![Interval::new(5, 50).unwrap()]),
                Relation::from_intervals("R3", vec![Interval::new(45, 60).unwrap()]),
                Relation::from_intervals("R4", vec![Interval::new(20, 25).unwrap()]),
            ],
        )
        .unwrap();
        let got = AllSeqMatrix::new(6)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, vec![vec![0, 0, 0, 0]]);
    }

    #[test]
    fn two_cycles_and_stats() {
        let q = JoinQuery::chain(&[Overlaps, Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let rels = (0..3).map(|_| random_rel(&mut rng, 30, 200, 30)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let out = AllSeqMatrix::new(4).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.chain.num_cycles(), 2);
        assert!(out.stats.consistent_cells.is_some());
        assert!(out.stats.replicated_intervals.is_some());
    }

    #[test]
    fn randomized_agreement() {
        for seed in 0..6 {
            check(&[Overlaps, Before], 200 + seed, 40, 5);
        }
        for seed in 0..4 {
            check(&[Contains, Before, Overlaps], 300 + seed, 25, 4);
        }
    }
}
