//! FCTS — First Colocation Then Sequence (Section 8, baseline).
//!
//! Stage 1 solves each colocation component with RCCIS, materializing the
//! component join results. Stage 2 joins the component results on the
//! sequence conditions with a component-dimensional All-Matrix. The
//! intermediate materialization is the cost All-Seq-Matrix avoids.

use crate::algorithm::{empty_output, require_single_attr, AlgoError, Algorithm, RunArtifacts};
use crate::all_matrix::CellSpace;
use crate::input::JoinInput;
use crate::output::{JoinOutput, OutputMode};
use crate::rccis::Rccis;
use crate::records::{CompRec, OutRec};
use ij_interval::{Interval, TupleId};
use ij_mapreduce::{Emitter, Engine, JobChain, Record, ReduceCtx, ValueStream};
use ij_query::JoinQuery;
use std::sync::Arc;

/// A component composite tagged with its component id.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TaggedComp {
    comp: u16,
    rec: CompRec,
}

impl Record for TaggedComp {
    fn approx_bytes(&self) -> u64 {
        2 + self.rec.approx_bytes()
    }
}

/// The FCTS baseline.
#[derive(Debug, Clone)]
pub struct Fcts {
    /// Partitions for the RCCIS stages.
    pub partitions: usize,
    /// Partitions per dimension for the sequence matrix stage.
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl Fcts {
    /// FCTS with the given partition counts, materializing output.
    pub fn new(partitions: usize, per_dim: usize) -> Self {
        Fcts {
            partitions,
            per_dim,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for Fcts {
    fn name(&self) -> &'static str {
        "FCTS"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        let order = query.start_order();
        if order.contradictory() {
            return Ok(empty_output(self.mode));
        }
        let comps = query.components();
        let l = comps.len();
        let part = RunArtifacts::partition_span(input.span(), self.per_dim)?;
        let mut chain = JobChain::new();

        // ---- Stage 1: solve each component with RCCIS ----------------------
        // composites[k]: the component's result tuples, as (global tid per
        // member vertex, member intervals), vertex order = component order.
        let mut composites: Vec<Vec<CompRec>> = Vec::with_capacity(l);
        for comp in &comps.components {
            match comp.as_query(query) {
                None => {
                    // Singleton component: its composites are the base tuples.
                    let rel = comp.vertices[0].rel;
                    composites.push(
                        input
                            .relation(rel)
                            .tuples()
                            .iter()
                            .map(|t| CompRec {
                                tids: vec![t.id],
                                ivs: vec![t.interval()],
                            })
                            .collect(),
                    );
                }
                Some(sub_q) => {
                    let sub_rels: Vec<Arc<ij_interval::Relation>> = comp
                        .vertices
                        .iter()
                        .map(|v| input.relations()[v.rel.idx()].clone())
                        .collect();
                    let sub_input =
                        JoinInput::bind(&sub_q, sub_rels).expect("component input arity matches");
                    let rccis = Rccis {
                        partitions: self.partitions,
                        mode: OutputMode::Materialize,
                        mark_options: Default::default(),
                        partition_strategy: Default::default(),
                    };
                    let sub_out = rccis.run(&sub_q, &sub_input, engine)?;
                    chain.extend(sub_out.chain.clone());
                    composites.push(
                        sub_out
                            .tuples
                            .iter()
                            .map(|t| CompRec {
                                ivs: t
                                    .iter()
                                    .enumerate()
                                    .map(|(local, &tid)| {
                                        input
                                            .relation(comp.vertices[local].rel)
                                            .tuple(tid)
                                            .interval()
                                    })
                                    .collect(),
                                tids: t.clone(),
                            })
                            .collect(),
                    );
                }
            }
        }

        // ---- Stage 2: All-Matrix over components ---------------------------
        let space = CellSpace::new(l, self.per_dim, order.component_constraints(&comps))?;
        let records: Vec<TaggedComp> = composites
            .into_iter()
            .enumerate()
            .flat_map(|(k, cs)| {
                cs.into_iter().map(move |rec| TaggedComp {
                    comp: k as u16,
                    rec,
                })
            })
            .collect();
        // Sequence conditions, mapped to (left comp, left slot, pred,
        // right comp, right slot).
        let seq_checks: Vec<(usize, usize, ij_interval::AllenPredicate, usize, usize)> = comps
            .sequence_condition_idxs
            .iter()
            .map(|&ci| {
                let c = query.conditions()[ci];
                let (lk, lv) = locate(&comps, c.left);
                let (rk, rv) = locate(&comps, c.right);
                (lk, lv, c.pred, rk, rv)
            })
            .collect();

        let mode = self.mode;
        let partc = part.clone();
        let spacec = space.clone();
        let compsc = comps.clone();
        let n_rels = query.num_relations() as usize;
        let out = engine.run_job(
            "fcts-seq-matrix",
            &records,
            {
                let partc = partc.clone();
                let spacec = spacec.clone();
                move |rec: &TaggedComp, em: &mut Emitter<TaggedComp>| {
                    // Route by the right-most member start (the component's
                    // owner partition).
                    let q = rec
                        .rec
                        .ivs
                        .iter()
                        .map(|iv| partc.index_of(iv.start()))
                        .max()
                        .expect("composite non-empty");
                    em.emit_to_all(spacec.cells_eq(rec.comp as usize, q).iter().copied(), rec);
                }
            },
            move |ctx: &mut ReduceCtx,
                  values: &mut ValueStream<TaggedComp>,
                  out: &mut Vec<OutRec>| {
                let l = compsc.len();
                let mut per_comp: Vec<Vec<CompRec>> = vec![Vec::new(); l];
                for v in values.by_ref() {
                    per_comp[v.comp as usize].push(v.rec);
                }
                // Cross product over components with sequence checks.
                let mut chosen = vec![0usize; l];
                let mut count = 0u64;
                let mut work = 0u64;
                cross(
                    &per_comp,
                    &seq_checks,
                    0,
                    &mut chosen,
                    &mut work,
                    &mut |chosen| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            let mut ids = vec![0 as TupleId; n_rels];
                            for (k, comp) in compsc.components.iter().enumerate() {
                                let c = &per_comp[k][chosen[k]];
                                for (slot, v) in comp.vertices.iter().enumerate() {
                                    ids[v.rel.idx()] = c.tids[slot];
                                }
                            }
                            out.push(OutRec::Tuple(ids));
                        }
                    },
                );
                ctx.add_work(work);
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;
        chain.push(out.metrics);

        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.consistent_cells =
            Some((space.consistent_cells().len() as u64, space.total_cells()));
        Ok(result)
    }
}

/// Finds `(component id, slot within the component)` of a vertex.
fn locate(comps: &ij_query::Components, v: ij_query::AttrRef) -> (usize, usize) {
    for c in &comps.components {
        if let Some(slot) = c.local_index(v) {
            return (c.id, slot);
        }
    }
    panic!("vertex {v} not in any component");
}

/// Recursive cross product over per-component composite lists, checking
/// sequence conditions as soon as both endpoints are chosen.
fn cross(
    per_comp: &[Vec<CompRec>],
    checks: &[(usize, usize, ij_interval::AllenPredicate, usize, usize)],
    k: usize,
    chosen: &mut Vec<usize>,
    work: &mut u64,
    emit: &mut impl FnMut(&[usize]),
) {
    if k == per_comp.len() {
        emit(chosen);
        return;
    }
    *work += per_comp[k].len() as u64;
    'cands: for i in 0..per_comp[k].len() {
        chosen[k] = i;
        for &(lk, lv, pred, rk, rv) in checks {
            if lk.max(rk) != k {
                continue; // not yet fully bound (or checked earlier)
            }
            let liv: Interval = per_comp[lk][chosen[lk]].ivs[lv];
            let riv: Interval = per_comp[rk][chosen[rk]].ivs[rv];
            if !pred.holds(liv, riv) {
                continue 'cands;
            }
        }
        cross(per_comp, checks, k + 1, chosen, work, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use ij_query::Condition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check_q(q: &JoinQuery, seed: u64, n: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 50))
            .collect();
        let input = JoinInput::bind_owned(q, rels).unwrap();
        let got = Fcts::new(6, 4)
            .run(q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(q, &input), "query {q}");
    }

    #[test]
    fn q4_matches_oracle() {
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        check_q(&q, 1, 50);
    }

    #[test]
    fn q3_matches_oracle() {
        let q = JoinQuery::new(
            5,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(1, Before, 3),
                Condition::whole(3, Overlaps, 4),
            ],
        )
        .unwrap();
        check_q(&q, 2, 25);
    }

    #[test]
    fn hybrid_chain_matches_oracle() {
        check_q(
            &JoinQuery::chain(&[Overlaps, Before, Overlaps]).unwrap(),
            3,
            30,
        );
    }

    #[test]
    fn pure_sequence_matches_oracle() {
        check_q(&JoinQuery::chain(&[Before, Before]).unwrap(), 4, 40);
    }

    #[test]
    fn cycle_count_includes_component_rccis() {
        // Q4: one 2-relation component (2 RCCIS cycles) + one singleton +
        // the matrix stage = 3 cycles.
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rels = (0..3).map(|_| random_rel(&mut rng, 20, 200, 30)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let out = Fcts::new(4, 4).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.chain.num_cycles(), 3);
    }
}
