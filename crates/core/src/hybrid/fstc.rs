//! FSTC — First Sequence Then Colocation (Section 8, baseline).
//!
//! Stage 1 joins the relations touched by sequence conditions with
//! All-Matrix; stage 2 cascades the colocation conditions onto the
//! resulting composites (reusing the cascade stage machinery). Like FCTS,
//! it pays for materializing and re-shuffling intermediate results.

use crate::algorithm::{empty_output, require_single_attr, AlgoError, Algorithm};
use crate::all_matrix::AllMatrix;
use crate::cascade::{plan_stages, run_stage, CascadeState};
use crate::input::JoinInput;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{CompRec, OutRec};
use ij_interval::{RelId, TupleId};
use ij_mapreduce::{Engine, JobChain};
use ij_query::{Condition, JoinQuery, QueryClass};
use std::sync::Arc;

/// The FSTC baseline.
#[derive(Debug, Clone)]
pub struct Fstc {
    /// Partitions for the colocation cascade stages.
    pub partitions: usize,
    /// Partitions per dimension for the sequence All-Matrix stage.
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl Fstc {
    /// FSTC with the given partition counts, materializing output.
    pub fn new(partitions: usize, per_dim: usize) -> Self {
        Fstc {
            partitions,
            per_dim,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for Fstc {
    fn name(&self) -> &'static str {
        "FSTC"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        if query.class() != QueryClass::Hybrid {
            return Err(AlgoError::Unsupported {
                algorithm: self.name(),
                reason: "FSTC needs both sequence and colocation conditions".into(),
            });
        }
        if query.start_order().contradictory() {
            return Ok(empty_output(self.mode));
        }

        // ---- Stage 1: All-Matrix over the sequence sub-query ---------------
        let seq_conditions: Vec<Condition> = query
            .conditions()
            .iter()
            .copied()
            .filter(|c| c.is_sequence())
            .collect();
        let mut seq_rels: Vec<RelId> = seq_conditions
            .iter()
            .flat_map(|c| [c.left.rel, c.right.rel])
            .collect();
        seq_rels.sort_unstable();
        seq_rels.dedup();
        let local_of = |r: RelId| seq_rels.iter().position(|&x| x == r).expect("seq rel");
        let sub_conditions: Vec<Condition> = seq_conditions
            .iter()
            .map(|c| {
                Condition::whole(
                    local_of(c.left.rel) as u16,
                    c.pred,
                    local_of(c.right.rel) as u16,
                )
            })
            .collect();
        let sub_q = JoinQuery::new(seq_rels.len() as u16, sub_conditions)
            .expect("sequence sub-query is valid");
        let sub_rels: Vec<Arc<ij_interval::Relation>> = seq_rels
            .iter()
            .map(|r| input.relations()[r.idx()].clone())
            .collect();
        let sub_input = JoinInput::bind(&sub_q, sub_rels).expect("sub input arity");
        let seq_out = AllMatrix {
            per_dim: self.per_dim,
            mode: OutputMode::Materialize,
            prune_inconsistent: true,
        }
        .run(&sub_q, &sub_input, engine)?;
        let mut chain = JobChain::new();
        chain.extend(seq_out.chain.clone());

        // Composites over the sequence relations.
        let composites: Vec<CompRec> = seq_out
            .tuples
            .iter()
            .map(|t| CompRec {
                ivs: t
                    .iter()
                    .enumerate()
                    .map(|(slot, &tid)| input.relation(seq_rels[slot]).tuple(tid).interval())
                    .collect(),
                tids: t.clone(),
            })
            .collect();
        let mut state = CascadeState {
            present: seq_rels.clone(),
            composites,
        };

        // ---- Stage 2: cascade the colocation conditions --------------------
        let coloc_conditions: Vec<Condition> = query
            .conditions()
            .iter()
            .copied()
            .filter(|c| c.is_colocation())
            .collect();
        let all_within_seed = coloc_conditions
            .iter()
            .all(|c| state.present.contains(&c.left.rel) && state.present.contains(&c.right.rel));
        let stages = if all_within_seed {
            Vec::new()
        } else {
            plan_stages(query, seq_rels, &coloc_conditions)?
        };
        if stages.is_empty() {
            // Every colocation condition sits between sequence relations —
            // filter locally (no further relations to introduce).
            let filtered: Vec<OutRec> = state
                .composites
                .iter()
                .filter(|c| {
                    coloc_conditions.iter().all(|cond| {
                        let l = state
                            .present
                            .iter()
                            .position(|&r| r == cond.left.rel)
                            .expect("present");
                        let r = state
                            .present
                            .iter()
                            .position(|&r| r == cond.right.rel)
                            .expect("present");
                        cond.pred.holds(c.ivs[l], c.ivs[r])
                    })
                })
                .map(|c| {
                    let mut ids = vec![0 as TupleId; query.num_relations() as usize];
                    for (slot, &rel) in state.present.iter().enumerate() {
                        ids[rel.idx()] = c.tids[slot];
                    }
                    OutRec::Tuple(ids)
                })
                .collect();
            return Ok(JoinOutput::from_records(self.mode, filtered, chain));
        }
        let last = stages.len() - 1;
        let mut finals = Vec::new();
        for (i, stage) in stages.iter().enumerate() {
            let finalize = (i == last).then_some(self.mode);
            finals = run_stage(
                query,
                input,
                engine,
                &mut state,
                stage,
                self.partitions,
                self.per_dim,
                finalize,
                &mut chain,
            )?;
        }
        Ok(JoinOutput::from_records(self.mode, finals, chain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::*;
    use ij_interval::{Interval, Relation};
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check_q(q: &JoinQuery, seed: u64, n: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 50))
            .collect();
        let input = JoinInput::bind_owned(q, rels).unwrap();
        let got = Fstc::new(6, 4)
            .run(q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(q, &input), "query {q}");
    }

    #[test]
    fn q4_matches_oracle() {
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        check_q(&q, 1, 50);
    }

    #[test]
    fn q3_matches_oracle() {
        let q = JoinQuery::new(
            5,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(1, Before, 3),
                Condition::whole(3, Overlaps, 4),
            ],
        )
        .unwrap();
        check_q(&q, 2, 20);
    }

    #[test]
    fn hybrid_chain_matches_oracle() {
        check_q(&JoinQuery::chain(&[Overlaps, Before]).unwrap(), 3, 50);
        check_q(&JoinQuery::chain(&[Before, Overlaps]).unwrap(), 4, 50);
    }

    #[test]
    fn rejects_non_hybrid() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(0, 2).unwrap()]),
            ],
        )
        .unwrap();
        assert!(matches!(
            Fstc::new(4, 4).run(&q, &input, &engine()),
            Err(AlgoError::Unsupported { .. })
        ));
    }

    #[test]
    fn colocation_between_sequence_relations_filters_locally() {
        // R1 before R2 and R1 meets R2 is contradictory... use a satisfiable
        // combo: R1 before R2 and R1 before R3 and R2 overlaps R3.
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Before, 2),
                Condition::whole(1, Overlaps, 2),
            ],
        )
        .unwrap();
        check_q(&q, 5, 40);
    }
}
