//! Hybrid join queries (paper Section 8): single interval attribute, both
//! colocation and sequence predicates.
//!
//! The query is viewed through its colocation connected components
//! (`ij_query::Components`): the components become the dimensions of a
//! reducer matrix (as in All-Matrix) while each component's internal
//! colocation query is solved with RCCIS's replication marking.
//!
//! * [`fcts`] / [`fstc`] — the two staged baselines (First Colocation Then
//!   Sequence / First Sequence Then Colocation), which both materialize
//!   large intermediate results;
//! * [`all_seq_matrix`] — the paper's single-pass All-Seq-Matrix (2 MR
//!   cycles);
//! * [`pasm`] — Pruned-All-Seq-Matrix (3 MR cycles), which additionally
//!   drops intervals that cannot appear in any component's output.

pub mod all_seq_matrix;
pub mod fcts;
pub mod fstc;
pub mod pasm;

pub use all_seq_matrix::AllSeqMatrix;
pub use fcts::Fcts;
pub use fstc::Fstc;
pub use pasm::Pasm;

use crate::algorithm::AlgoError;
use crate::records::{FlagRec, IvRec};
use ij_interval::{ops, Interval, Partitioning, TupleId};
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ReducerId, ValueStream};
use ij_query::{AttrRef, Components, JoinQuery};

/// The first MR cycle shared by All-Seq-Matrix and PASM: runs the RCCIS
/// replication marking *per colocation component*, all components in one
/// job. Reducer keys encode `(component, partition)`; singleton components
/// pass through with `replicate = false`. Returns every interval exactly
/// once, flagged.
pub(crate) fn run_component_marking(
    query: &JoinQuery,
    comps: &Components,
    part: &Partitioning,
    records: &[IvRec],
    engine: &Engine,
    chain: &mut JobChain,
) -> Result<Vec<FlagRec>, AlgoError> {
    let p_count = part.len() as u64;
    // Per-relation component id (single-attribute: vertex = ⟨rel, 0⟩).
    let comp_of: Vec<usize> = (0..query.num_relations())
        .map(|r| {
            comps
                .component_of(AttrRef::whole(r))
                .expect("every relation has a component")
        })
        .collect();
    let multi: Vec<bool> = comps
        .components
        .iter()
        .map(|c| c.vertices.len() >= 2)
        .collect();
    // Pre-extract per-component sub-queries and local relation maps.
    let sub_queries: Vec<Option<(JoinQuery, Vec<u16>)>> = comps
        .components
        .iter()
        .map(|c| {
            c.as_query(query).map(|sq| {
                // global rel -> local index (dense map sized by relations).
                let mut map = vec![u16::MAX; query.num_relations() as usize];
                for (i, v) in c.vertices.iter().enumerate() {
                    map[v.rel.idx()] = i as u16;
                }
                (sq, map)
            })
        })
        .collect();

    let partc = part.clone();
    let out = engine.run_job(
        "component-mark",
        records,
        {
            let partc = partc.clone();
            let comp_of = comp_of.clone();
            let multi = multi.clone();
            move |rec: &IvRec, em: &mut Emitter<IvRec>| {
                let k = comp_of[rec.rel.idx()] as u64;
                if multi[comp_of[rec.rel.idx()]] {
                    for p in ops::split(rec.iv, &partc) {
                        em.emit(k * p_count + p as u64, *rec);
                    }
                } else {
                    // Singletons only pass through to pick up their flag.
                    em.emit(k * p_count + ops::project(rec.iv, &partc) as u64, *rec);
                }
            }
        },
        move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<FlagRec>| {
            let key: ReducerId = ctx.key;
            let k = (key / p_count) as usize;
            let p = (key % p_count) as usize;
            match &sub_queries[k] {
                None => {
                    // Singleton component: never replicated.
                    for v in values.by_ref() {
                        out.push(FlagRec {
                            rec: v,
                            replicate: false,
                        });
                    }
                }
                Some((sq, local_of)) => {
                    let mut per_rel: Vec<Vec<(Interval, TupleId)>> =
                        vec![Vec::new(); sq.num_relations() as usize];
                    // Remember global identity alongside.
                    let mut globals: Vec<Vec<IvRec>> =
                        vec![Vec::new(); sq.num_relations() as usize];
                    for v in values.by_ref() {
                        let l = local_of[v.rel.idx()] as usize;
                        per_rel[l].push((v.iv, v.tid));
                        globals[l].push(v);
                    }
                    let marking = crate::rccis::marking::mark(sq, &partc, p, per_rel);
                    ctx.add_work(marking.work);
                    for (l, (list, flags)) in marking.sorted.iter().zip(&marking.flags).enumerate()
                    {
                        for (&(iv, tid), &replicate) in list.iter().zip(flags) {
                            if partc.index_of(iv.start()) == p {
                                // Find the global record (rel known from the
                                // component's vertex list).
                                let rec = globals[l]
                                    .iter()
                                    .find(|g| g.tid == tid)
                                    .expect("marked interval came from input");
                                debug_assert_eq!(rec.iv, iv);
                                out.push(FlagRec {
                                    rec: *rec,
                                    replicate,
                                });
                            }
                        }
                    }
                }
            }
        },
    )?;
    chain.push(out.metrics);
    Ok(out.outputs)
}

/// Ownership test shared by the matrix joins: the assignment is owned by
/// cell `coords` when, for every component, the maximal start partition
/// among the component's member intervals equals the cell's coordinate.
pub(crate) fn owns_assignment(
    comps: &Components,
    part: &Partitioning,
    coords: &[usize],
    iv_of_rel: impl Fn(usize) -> Interval,
) -> bool {
    for comp in &comps.components {
        let q_k = comp
            .vertices
            .iter()
            .map(|v| part.index_of(iv_of_rel(v.rel.idx()).start()))
            .max()
            .expect("components are non-empty");
        if q_k != coords[comp.id] {
            return false;
        }
    }
    true
}
