//! Pruned-All-Seq-Matrix (paper Section 8.2).
//!
//! Three MR cycles:
//!
//! 1. the All-Seq-Matrix replication marking;
//! 2. each colocation component's join is computed (RCCIS second cycle per
//!    component, all components in one job) and every interval appearing in
//!    at least one component output is marked as *participating*;
//! 3. the All-Seq-Matrix join runs over the pruned relations — intervals
//!    that appear in no component output are never shuffled.
//!
//! Pruning shrinks both the communication and the per-reducer work; when
//! little prunes, the extra cycle can make PASM slightly slower than
//! All-Seq-Matrix (the Table 3 trade-off).

use crate::algorithm::{
    empty_output, iv_records, require_single_attr, AlgoError, Algorithm, RunArtifacts,
};
use crate::all_matrix::CellSpace;
use crate::executor::Candidates;
use crate::hybrid::{owns_assignment, run_component_marking};
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{FlagRec, IvRec, OutRec};
use ij_interval::{ops, Interval, TupleId};
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::{AttrRef, JoinQuery};
use std::collections::BTreeSet;

/// The PASM algorithm.
#[derive(Debug, Clone)]
pub struct Pasm {
    /// Partitions per matrix dimension (`o`).
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl Pasm {
    /// PASM with `o = per_dim`, materializing output.
    pub fn new(per_dim: usize) -> Self {
        Pasm {
            per_dim,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for Pasm {
    fn name(&self) -> &'static str {
        "PASM"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        let order = query.start_order();
        if order.contradictory() {
            return Ok(empty_output(self.mode));
        }
        let comps = query.components();
        let l = comps.len();
        let part = RunArtifacts::partition_span(input.span(), self.per_dim)?;
        let space = CellSpace::new(l, self.per_dim, order.component_constraints(&comps))?;
        let mut chain = JobChain::new();

        // ---- Cycle 1: per-component replication marking --------------------
        let flags =
            run_component_marking(query, &comps, &part, &iv_records(input), engine, &mut chain)?;
        let replicated = flags.iter().filter(|f| f.replicate).count() as u64;

        let comp_of: Vec<usize> = (0..query.num_relations())
            .map(|r| comps.component_of(AttrRef::whole(r)).expect("component"))
            .collect();
        let multi: Vec<bool> = comps
            .components
            .iter()
            .map(|c| c.vertices.len() >= 2)
            .collect();

        // ---- Cycle 2: component joins mark participating intervals ---------
        let p_count = part.len() as u64;
        let sub_queries: Vec<Option<(JoinQuery, Vec<u16>)>> = comps
            .components
            .iter()
            .map(|c| {
                c.as_query(query).map(|sq| {
                    let mut map = vec![u16::MAX; query.num_relations() as usize];
                    for (i, v) in c.vertices.iter().enumerate() {
                        map[v.rel.idx()] = i as u16;
                    }
                    (sq, map)
                })
            })
            .collect();
        // Per component: the global relation of each local slot, for
        // translating the component join's assignments back.
        let vertex_rels: Vec<Vec<u16>> = comps
            .components
            .iter()
            .map(|c| c.vertices.iter().map(|v| v.rel.0).collect())
            .collect();
        let partc = part.clone();
        let prune_out = engine.run_job(
            "pasm-prune",
            &flags,
            {
                let partc = partc.clone();
                let comp_of = comp_of.clone();
                let multi = multi.clone();
                move |rec: &FlagRec, em: &mut Emitter<IvRec>| {
                    let k = comp_of[rec.rec.rel.idx()];
                    if !multi[k] {
                        return; // singletons always participate
                    }
                    let op = if rec.replicate {
                        ij_interval::MapOp::Replicate
                    } else {
                        ij_interval::MapOp::Project
                    };
                    for p in ops::apply(op, rec.rec.iv, &partc) {
                        em.emit(k as u64 * p_count + p as u64, rec.rec);
                    }
                }
            },
            {
                let partc = partc.clone();
                move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<u64>| {
                    let k = (ctx.key / p_count) as usize;
                    let p = (ctx.key % p_count) as usize;
                    let (sq, local_of) = sub_queries[k].as_ref().expect("multi component");
                    let mut cands = Candidates::new(sq.num_relations() as usize);
                    for v in values.by_ref() {
                        cands.push(local_of[v.rel.idx()] as usize, v.iv, v.tid);
                    }
                    cands.finish();
                    let mut participating: BTreeSet<u64> = BTreeSet::new();
                    kernel::reduce_join(
                        ctx,
                        sq,
                        &cands,
                        |a: &[(Interval, TupleId)]| {
                            let max_start =
                                a.iter().map(|(iv, _)| iv.start()).max().expect("nonempty");
                            partc.index_of(max_start) == p
                        },
                        |a| {
                            for (local, (_, tid)) in a.iter().enumerate() {
                                let rel = vertex_rels[k][local];
                                participating.insert((rel as u64) << 32 | *tid as u64);
                            }
                        },
                    );
                    out.extend(participating);
                }
            },
        )?;
        chain.push(prune_out.metrics);
        let participating: BTreeSet<u64> = prune_out.outputs.into_iter().collect();

        // Pruned fractions per relation (only multi-component relations are
        // ever pruned).
        let mut pruned_fraction = Vec::new();
        for (r, rel) in input.relations().iter().enumerate() {
            if multi[comp_of[r]] && !rel.is_empty() {
                let alive = (0..rel.len() as u32)
                    .filter(|&t| participating.contains(&((r as u64) << 32 | t as u64)))
                    .count();
                pruned_fraction.push((
                    query.relations()[r].name.clone(),
                    1.0 - alive as f64 / rel.len() as f64,
                ));
            }
        }

        // ---- Cycle 3: matrix join over pruned relations ---------------------
        let mode = self.mode;
        let q = query.clone();
        let spacec = space.clone();
        let compsc = comps.clone();
        let m = query.num_relations() as usize;
        let out = engine.run_job(
            "pasm-join",
            &flags,
            {
                let partc = partc.clone();
                let spacec = spacec.clone();
                let comp_of = comp_of.clone();
                let multi = multi.clone();
                let participating = participating.clone();
                move |rec: &FlagRec, em: &mut Emitter<IvRec>| {
                    let k = comp_of[rec.rec.rel.idx()];
                    if multi[k]
                        && !participating
                            .contains(&((rec.rec.rel.0 as u64) << 32 | rec.rec.tid as u64))
                    {
                        return; // pruned
                    }
                    let qidx = partc.index_of(rec.rec.iv.start());
                    let cells = if rec.replicate {
                        spacec.cells_ge(k, qidx)
                    } else {
                        spacec.cells_eq(k, qidx)
                    };
                    em.emit_to_all(cells.iter().copied(), &rec.rec);
                }
            },
            move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
                let coords = spacec.decode(ctx.key);
                let mut cands = Candidates::new(m);
                for v in values.by_ref() {
                    cands.push(v.rel.idx(), v.iv, v.tid);
                }
                cands.finish();
                let mut count = 0u64;
                kernel::reduce_join(
                    ctx,
                    &q,
                    &cands,
                    |a: &[(Interval, TupleId)]| {
                        owns_assignment(&compsc, &partc, &coords, |r| a[r].0)
                    },
                    |a| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                        }
                    },
                );
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;
        chain.push(out.metrics);

        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.replicated_intervals = Some(replicated);
        result.stats.consistent_cells =
            Some((space.consistent_cells().len() as u64, space.total_cells()));
        result.stats.pruned_fraction = pruned_fraction;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::AllSeqMatrix;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use ij_query::Condition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check_q(q: &JoinQuery, seed: u64, n: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, 300, 50))
            .collect();
        let input = JoinInput::bind_owned(q, rels).unwrap();
        let got = Pasm::new(5)
            .run(q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(q, &input), "query {q}");
    }

    #[test]
    fn q4_matches_oracle() {
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        check_q(&q, 1, 50);
    }

    #[test]
    fn hybrid_chain_matches_oracle() {
        check_q(&JoinQuery::chain(&[Overlaps, Before]).unwrap(), 2, 50);
        check_q(
            &JoinQuery::chain(&[Overlaps, Before, Overlaps]).unwrap(),
            3,
            25,
        );
    }

    #[test]
    fn three_cycles_and_pruning_stats() {
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // Make R3 tiny so many R1 intervals prune away (the Table 3 lever).
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 200, 2000, 20),
                random_rel(&mut rng, 50, 2000, 20),
                random_rel(&mut rng, 4, 2000, 20),
            ],
        )
        .unwrap();
        let out = Pasm::new(5).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.chain.num_cycles(), 3);
        let r1_pruned = out
            .stats
            .pruned_fraction
            .iter()
            .find(|(name, _)| name == "R1")
            .map(|(_, f)| *f)
            .unwrap();
        assert!(r1_pruned > 0.5, "expected heavy pruning, got {r1_pruned}");
        // And correctness under pruning:
        assert_eq!(out.assert_no_duplicates(), oracle_join(&q, &input));
    }

    #[test]
    fn pasm_shuffles_fewer_pairs_than_asm_when_pruning() {
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 300, 3000, 20),
                random_rel(&mut rng, 50, 3000, 20),
                random_rel(&mut rng, 3, 3000, 20),
            ],
        )
        .unwrap();
        let pasm = Pasm::new(5).run(&q, &input, &engine()).unwrap();
        let asm = AllSeqMatrix::new(5).run(&q, &input, &engine()).unwrap();
        assert_eq!(pasm.assert_no_duplicates(), asm.assert_no_duplicates());
        // PASM's final join cycle must shuffle fewer pairs than ASM's.
        let pasm_join_pairs = pasm.chain.cycles.last().unwrap().intermediate_pairs;
        let asm_join_pairs = asm.chain.cycles.last().unwrap().intermediate_pairs;
        assert!(
            pasm_join_pairs < asm_join_pairs,
            "pasm {pasm_join_pairs} vs asm {asm_join_pairs}"
        );
    }
}
