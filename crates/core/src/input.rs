//! Binding relations (data) to a query's logical relations.

use ij_interval::{RelId, Relation};
use ij_query::JoinQuery;
use std::fmt;
use std::sync::Arc;

/// Error binding data to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputError {
    /// Number of relations does not match the query's.
    WrongRelationCount { expected: u16, got: usize },
    /// A relation's arity is smaller than an attribute the query references.
    MissingAttr { rel: RelId, needed: u16, arity: u16 },
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::WrongRelationCount { expected, got } => {
                write!(f, "query has {expected} relations but {got} were bound")
            }
            InputError::MissingAttr { rel, needed, arity } => write!(
                f,
                "query references attribute {needed} of {rel}, which has arity {arity}"
            ),
        }
    }
}

impl std::error::Error for InputError {}

/// The data for a join: one [`Relation`] per logical relation of the query.
///
/// Relations are shared via [`Arc`], so a self-join binds the same physical
/// relation to several logical slots without copying (Table 2's star
/// self-join binds one train relation three times).
#[derive(Debug, Clone)]
pub struct JoinInput {
    relations: Vec<Arc<Relation>>,
}

impl JoinInput {
    /// Binds `relations[i]` to logical relation `RelId(i)` and validates
    /// arity against the query.
    pub fn bind(q: &JoinQuery, relations: Vec<Arc<Relation>>) -> Result<Self, InputError> {
        if relations.len() != q.num_relations() as usize {
            return Err(InputError::WrongRelationCount {
                expected: q.num_relations(),
                got: relations.len(),
            });
        }
        for (i, r) in relations.iter().enumerate() {
            let rel = RelId(i as u16);
            for attr in q.join_attrs_of(rel) {
                if attr >= r.n_attrs {
                    return Err(InputError::MissingAttr {
                        rel,
                        needed: attr,
                        arity: r.n_attrs,
                    });
                }
            }
        }
        Ok(JoinInput { relations })
    }

    /// Binds owned relations (wraps each in an [`Arc`]).
    pub fn bind_owned(q: &JoinQuery, relations: Vec<Relation>) -> Result<Self, InputError> {
        JoinInput::bind(q, relations.into_iter().map(Arc::new).collect())
    }

    /// Binds the same relation to every logical slot — a star self-join.
    pub fn bind_self_join(q: &JoinQuery, relation: Arc<Relation>) -> Result<Self, InputError> {
        let n = q.num_relations() as usize;
        JoinInput::bind(q, vec![relation; n])
    }

    /// The relation bound to `r`.
    pub fn relation(&self, r: RelId) -> &Relation {
        &self.relations[r.idx()]
    }

    /// All bound relations, by logical id.
    pub fn relations(&self) -> &[Arc<Relation>] {
        &self.relations
    }

    /// Number of logical relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relations are bound (never true for validated inputs).
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total tuples across logical relations (self-joined data counted once
    /// per logical slot, matching what the MR jobs read).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// The tight time span of attribute-0 data across all relations, or a
    /// default unit span if everything is empty.
    pub fn span(&self) -> ij_interval::Interval {
        ij_interval::relation::joint_span(self.relations.iter().map(Arc::as_ref), 0)
            .unwrap_or_else(|| ij_interval::Interval::new_unchecked(0, 1))
    }

    /// The tight time span across *all* join attributes referenced by `q` —
    /// the range Gen-Matrix partitions (all dimensions span "identical
    /// temporal range", Section 7.1).
    pub fn span_all_attrs(&self, q: &JoinQuery) -> ij_interval::Interval {
        let mut acc: Option<ij_interval::Interval> = None;
        for (i, r) in self.relations.iter().enumerate() {
            for attr in q.join_attrs_of(RelId(i as u16)) {
                if let Some(s) = r.attr_span(attr) {
                    acc = Some(match acc {
                        Some(a) => a.hull(s),
                        None => s,
                    });
                }
            }
        }
        acc.unwrap_or_else(|| ij_interval::Interval::new_unchecked(0, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::{AllenPredicate::*, Interval};
    use ij_query::JoinQuery;

    fn rel(name: &str, ivs: &[(i64, i64)]) -> Relation {
        Relation::from_intervals(name, ivs.iter().map(|&(s, e)| Interval::new(s, e).unwrap()))
    }

    #[test]
    fn bind_validates_count() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let r = rel("R", &[(0, 5)]);
        let err = JoinInput::bind_owned(&q, vec![r]).unwrap_err();
        assert_eq!(
            err,
            InputError::WrongRelationCount {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn bind_validates_arity() {
        use ij_query::{AttrRef, Condition};
        let q = JoinQuery::with_relations(
            vec![
                ij_query::query::RelationMeta {
                    name: "R1".into(),
                    attr_names: vec!["I".into(), "A".into()],
                },
                ij_query::query::RelationMeta {
                    name: "R2".into(),
                    attr_names: vec!["I".into()],
                },
            ],
            vec![Condition::new(
                AttrRef::new(0, 1),
                Equals,
                AttrRef::new(1, 0),
            )],
        )
        .unwrap();
        // R1's physical data has only 1 attribute but the query uses attr 1.
        let err = JoinInput::bind_owned(&q, vec![rel("R1", &[(0, 1)]), rel("R2", &[(0, 1)])])
            .unwrap_err();
        assert!(matches!(err, InputError::MissingAttr { needed: 1, .. }));
    }

    #[test]
    fn self_join_shares_data() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let r = Arc::new(rel("R", &[(0, 5), (3, 9)]));
        let input = JoinInput::bind_self_join(&q, r.clone()).unwrap();
        assert_eq!(input.len(), 3);
        assert_eq!(input.total_tuples(), 6);
        assert!(Arc::ptr_eq(&input.relations()[0], &input.relations()[2]));
    }

    #[test]
    fn span_covers_data() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input =
            JoinInput::bind_owned(&q, vec![rel("A", &[(5, 9)]), rel("B", &[(0, 2)])]).unwrap();
        assert_eq!(input.span(), Interval::new(0, 9).unwrap());
    }
}
