//! The windowed backtracking fallback — the original `join_single_attr`
//! scan, kept semantically identical.
//!
//! Each level binary-searches the start window compatible with the bound
//! neighbors (via [`ij_interval::AllenPredicate::right_start_bounds`]) and
//! re-checks every condition with [`ij_interval::AllenPredicate::holds`]
//! per candidate. This handles arbitrary Allen mixes and is the dispatch
//! fallback for hybrid condition sets; the sweep and sort-merge kernels
//! beat it on the pure predicate classes by replacing the `holds` re-check
//! with exact endpoint ranges (see [`super::ranges`]).

use super::scratch::with_scratch;
use super::{Compiled, Emit};
use crate::executor::{tighten_lower, tighten_upper, window, Candidates};
use ij_interval::{Interval, TupleId};
use std::ops::Bound;
use std::ops::Range;

/// Runs the backtracking join over `outer` positions of the level-0 list.
pub(crate) fn run(
    cands: &Candidates,
    compiled: &Compiled,
    outer: Range<usize>,
    emit: &mut Emit<'_>,
    work: &mut u64,
) {
    let rel0 = compiled.order[0];
    let list0 = cands.list(rel0);
    with_scratch(|s| {
        let assignment = s.reset_assignment(compiled.order.len());
        *work += outer.len() as u64;
        for &(iv, tid) in &list0[outer] {
            assignment[rel0] = (iv, tid);
            descend(cands, compiled, 1, assignment, emit, work);
        }
    });
}

fn descend(
    cands: &Candidates,
    compiled: &Compiled,
    level: usize,
    assignment: &mut Vec<(Interval, TupleId)>,
    emit: &mut Emit<'_>,
    work: &mut u64,
) {
    if level == compiled.order.len() {
        emit(assignment);
        return;
    }
    let rel = compiled.order[level];
    let checks = &compiled.checks[level];
    // Window bounds from every condition to an already-bound neighbor.
    let mut lo = Bound::Unbounded;
    let mut hi = Bound::Unbounded;
    for &(other, pred) in checks {
        let (l, h) = pred.right_start_bounds(assignment[other].0);
        lo = tighten_lower(lo, l);
        hi = tighten_upper(hi, h);
    }
    let list = cands.list(rel);
    let (from, to) = window(list, lo, hi);
    *work += (to - from) as u64;
    'candidates: for &(iv, tid) in &list[from..to] {
        // Full predicate check against all bound neighbors.
        for &(other, pred) in checks {
            if !pred.holds(assignment[other].0, iv) {
                continue 'candidates;
            }
        }
        assignment[rel] = (iv, tid);
        descend(cands, compiled, level + 1, assignment, emit, work);
    }
}
