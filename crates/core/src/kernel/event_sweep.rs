//! Event-list sweep for multi-way colocation condition sets
//! (Piatov-style: one merged endpoint event list, gapless active arrays).
//!
//! All relations' endpoints are merged into a single array of tagged
//! events sorted by `(time, is_end, rel, idx)` — start events before end
//! events at equal time, so endpoint-touching matches (*meets*-shaped
//! pairs) are still live when their partner starts. A cursor walks the
//! events once, maintaining one **gapless** active array per relation:
//! a start event appends the tuple (recording its slot in a position
//! index), an end event swap-removes it, fixing up the displaced tuple's
//! slot — the arrays stay densely packed, so probes are pure linear scans
//! with no skip lists and no per-level binary searches.
//!
//! **Emission rule (Helly).** At each start event the kernel binds the
//! starting tuple and enumerates assignments from the *other* relations'
//! active arrays, checking the exact endpoint ranges of
//! [`super::ranges::range_pair`]. This finds every satisfying binding
//! exactly once *provided every pair of relations is guaranteed to
//! intersect*: pairwise-intersecting 1-D intervals share a common point
//! (Helly), that point is the maximum start, and the binding surfaces
//! precisely at the event of its latest-starting tuple, when all its
//! other tuples are active. [`qualifies`] decides that guarantee
//! statically — every directly-conditioned pair intersects (all
//! colocation predicates imply a shared point on closed intervals), the
//! containment-shaped predicates (*contains*, *starts*, *finishes*,
//! *equals* families) add subset facts whose transitive closure extends
//! intersection to indirectly-connected pairs. Overlaps *chains* famously
//! do not qualify (`[0,10] ov [5,15] ov [12,20]` has no common point) and
//! stay on the dual-window sweep.
//!
//! **Deterministic chunking.** The outer positions are event indices. A
//! chunk first replays its prefix events (appends and swap-removes only —
//! no probing, no work charged), reconstructing the exact active-array
//! contents *and order* at its start boundary, then processes its own
//! range. Active state at event `i` is a pure function of `events[..i]`,
//! so chunked emission is byte-identical to the serial order and `work` /
//! `active_peak` are chunk-invariant for every thread count.

use super::ranges::range_pair;
use super::scratch::with_scratch;
use super::{Emit, RangePair};
use crate::executor::Candidates;
use ij_interval::{AllenPredicate, Interval, Time, TupleId};
use ij_query::JoinQuery;
use std::ops::Range;

/// Sentinel for "tuple not currently active" in the position index.
const INACTIVE: u32 = u32::MAX;

/// Whether `q`'s condition set guarantees that *every* pair of relations
/// intersects in every satisfying assignment — the precondition for the
/// event sweep's emit-at-latest-start rule to be complete.
///
/// Facts are derived statically: a direct colocation condition between
/// two relations proves they intersect; containment-shaped predicates
/// prove one operand is a subset of the other; subset facts compose
/// transitively, and `i` intersects `j` whenever some `k1 ⊆ i` and
/// `k2 ⊆ j` intersect (or coincide). Any sequence predicate, or any pair
/// left unproven, disqualifies the query.
pub(crate) fn qualifies(q: &JoinQuery) -> bool {
    use AllenPredicate::*;
    let m = q.num_relations() as usize;
    if m < 2 {
        return false;
    }
    // subset[i][j]: relation i's interval is provably contained in j's.
    let mut subset = vec![vec![false; m]; m];
    for (i, row) in subset.iter_mut().enumerate() {
        row[i] = true;
    }
    // inter[i][j]: i and j provably share a point (direct condition).
    let mut inter = vec![vec![false; m]; m];
    for c in q.conditions() {
        if !c.pred.is_colocation() {
            return false;
        }
        let (l, r) = (c.left.rel.idx(), c.right.rel.idx());
        inter[l][r] = true;
        inter[r][l] = true;
        match c.pred {
            Contains | StartedBy | FinishedBy => subset[r][l] = true,
            ContainedBy | Starts | Finishes => subset[l][r] = true,
            Equals => {
                subset[l][r] = true;
                subset[r][l] = true;
            }
            _ => {}
        }
    }
    for k in 0..m {
        let row_k = subset[k].clone();
        for row in subset.iter_mut() {
            if row[k] {
                for (dst, &via) in row.iter_mut().zip(&row_k) {
                    *dst |= via;
                }
            }
        }
    }
    for i in 0..m {
        for j in (i + 1)..m {
            let proven = (0..m).any(|k1| {
                subset[k1][i] && (0..m).any(|k2| subset[k2][j] && (k1 == k2 || inter[k1][k2]))
            });
            if !proven {
                return false;
            }
        }
    }
    true
}

/// One tagged endpoint. The derived sort order `(time, end, rel, idx)`
/// puts start events before end events at equal time and is a total
/// order, so the merged list — and everything downstream of it — is
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: Time,
    end: bool,
    rel: u32,
    idx: u32,
}

/// The probe program run when a tuple of one particular relation starts:
/// a BFS binding order rooted at that relation plus per-level checks in
/// right-operand form (mirroring [`super::Compiled`]).
#[derive(Debug)]
struct Program {
    /// Relations in binding order; `order[0]` is the trigger relation.
    order: Vec<usize>,
    /// `checks[level]` = `(other_rel, pred)` with the level's candidate
    /// as the right operand of `pred`.
    checks: Vec<Vec<(usize, AllenPredicate)>>,
}

/// Precomputed event-sweep structures for one bucket, shared (read-only)
/// across parallel chunks.
#[derive(Debug)]
pub(crate) struct EventSweepPlan {
    /// All relations' endpoints, merged and sorted.
    events: Vec<Event>,
    /// One probe program per trigger relation.
    programs: Vec<Program>,
    /// Whether relation `r` can ever hold a binding's latest-starting
    /// tuple (see [`possible_latest`]). Start events of pruned relations
    /// only update the active arrays — their probes would always come up
    /// empty, so they are skipped entirely.
    probe: Vec<bool>,
}

/// Which relations can hold the *latest-starting* tuple of a satisfying
/// binding — the only start events whose probes can emit.
///
/// Colocation predicates impose a partial order on start points:
/// `overlaps`/`contains`/`meets`/`finished-by` force the left operand to
/// start strictly first (their converses force the right), while the
/// `starts`/`equals` family pins starts equal. A relation with a strict
/// successor in the transitive closure (through equalities) can never be
/// the latest-starter, so its start-event probes are statically dead:
/// the strictly-later tuple in any would-be binding cannot be active yet.
/// Ties stay unpruned — the total event order decides which of the two
/// equal-start tuples probes last and emits.
fn possible_latest(q: &JoinQuery) -> Vec<bool> {
    use AllenPredicate::*;
    let m = q.num_relations() as usize;
    let mut strict = vec![vec![false; m]; m];
    let mut eq = vec![vec![false; m]; m];
    for c in q.conditions() {
        let (l, r) = (c.left.rel.idx(), c.right.rel.idx());
        match c.pred {
            Overlaps | Contains | Meets | FinishedBy => strict[l][r] = true,
            OverlappedBy | ContainedBy | MetBy | Finishes => strict[r][l] = true,
            Starts | StartedBy | Equals => {
                eq[l][r] = true;
                eq[r][l] = true;
            }
            _ => {}
        }
    }
    // Fixpoint closure: strict composes with strict or equality on
    // either side. m is tiny, so the cubic loop-to-fixpoint is fine.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..m {
            for k in 0..m {
                if !(strict[i][k] || eq[i][k]) {
                    continue;
                }
                for j in 0..m {
                    let via =
                        (strict[i][k] && (strict[k][j] || eq[k][j])) || (eq[i][k] && strict[k][j]);
                    if via && !strict[i][j] {
                        strict[i][j] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    (0..m).map(|r| !(0..m).any(|p| strict[r][p])).collect()
}

impl EventSweepPlan {
    pub(crate) fn new(q: &JoinQuery, cands: &Candidates) -> EventSweepPlan {
        debug_assert!(qualifies(q), "event sweep requires a qualifying query");
        let m = q.num_relations() as usize;
        let mut events = Vec::with_capacity((0..m).map(|r| 2 * cands.len(r)).sum());
        for r in 0..m {
            for (i, &(iv, _)) in cands.list(r).iter().enumerate() {
                let (rel, idx) = (r as u32, i as u32);
                events.push(Event {
                    time: iv.start(),
                    end: false,
                    rel,
                    idx,
                });
                events.push(Event {
                    time: iv.end(),
                    end: true,
                    rel,
                    idx,
                });
            }
        }
        events.sort_unstable();
        let mut adj = vec![Vec::new(); m];
        for c in q.conditions() {
            adj[c.left.rel.idx()].push(c.right.rel.idx());
            adj[c.right.rel.idx()].push(c.left.rel.idx());
        }
        let programs = (0..m).map(|root| Program::new(q, &adj, root)).collect();
        EventSweepPlan {
            events,
            programs,
            probe: possible_latest(q),
        }
    }

    /// Chunkable outer positions: one per merged event.
    pub(crate) fn outer_len(&self) -> usize {
        self.events.len()
    }

    /// Processes `outer` event positions after replaying the prefix
    /// events to reconstruct the active-array state at the chunk
    /// boundary. `active_peak` is raised to the maximum total active
    /// occupancy observed over the owned range.
    pub(crate) fn run(
        &self,
        cands: &Candidates,
        outer: Range<usize>,
        emit: &mut Emit<'_>,
        work: &mut u64,
        active_peak: &mut u64,
    ) {
        let m = self.programs.len();
        with_scratch(|s| {
            s.active.resize_with(m, Vec::new);
            s.pos.resize_with(m, Vec::new);
            for r in 0..m {
                s.active[r].clear();
                s.pos[r].clear();
                s.pos[r].resize(cands.len(r), INACTIVE);
            }
            s.reset_assignment(m);
            let (active, pos, assignment) = (&mut s.active, &mut s.pos, &mut s.assignment);
            let mut occupancy = 0u64;
            // Prefix replay: state only, no probing, no work charged.
            for e in &self.events[..outer.start] {
                occupancy = apply(e, cands, active, pos, occupancy);
            }
            for e in &self.events[outer] {
                occupancy = apply(e, cands, active, pos, occupancy);
                *active_peak = (*active_peak).max(occupancy);
                if e.end || !self.probe[e.rel as usize] {
                    continue;
                }
                *work += 1;
                let rel = e.rel as usize;
                assignment[rel] = cands.list(rel)[e.idx as usize];
                let program = &self.programs[rel];
                descend(program, active, 1, assignment, emit, work);
            }
        });
    }
}

/// Applies one event to the gapless active arrays, returning the new
/// total occupancy. Start: append and record the slot. End: swap-remove
/// and repoint the displaced tuple's slot.
fn apply(
    e: &Event,
    cands: &Candidates,
    active: &mut [Vec<(Interval, TupleId, u32)>],
    pos: &mut [Vec<u32>],
    occupancy: u64,
) -> u64 {
    let (rel, idx) = (e.rel as usize, e.idx as usize);
    if e.end {
        let p = pos[rel][idx] as usize;
        debug_assert_ne!(p as u32, INACTIVE, "end event for inactive tuple");
        pos[rel][idx] = INACTIVE;
        active[rel].swap_remove(p);
        if p < active[rel].len() {
            let moved = active[rel][p].2 as usize;
            pos[rel][moved] = p as u32;
        }
        occupancy - 1
    } else {
        let (iv, tid) = cands.list(rel)[idx];
        pos[rel][idx] = active[rel].len() as u32;
        active[rel].push((iv, tid, e.idx));
        occupancy + 1
    }
}

/// Enumerates bindings level by level from the active arrays, with the
/// level's intersected endpoint ranges checked exactly — predicate
/// satisfaction *is* range membership (see [`super::ranges`]).
fn descend(
    program: &Program,
    active: &[Vec<(Interval, TupleId, u32)>],
    level: usize,
    assignment: &mut Vec<(Interval, TupleId)>,
    emit: &mut Emit<'_>,
    work: &mut u64,
) {
    if level == program.order.len() {
        emit(assignment);
        return;
    }
    let rel = program.order[level];
    let mut rp = RangePair::full();
    for &(other, pred) in &program.checks[level] {
        rp.intersect(&range_pair(pred, assignment[other].0));
    }
    if rp.is_empty() {
        return;
    }
    let arr = &active[rel];
    *work += arr.len() as u64;
    for &(iv, tid, _) in arr {
        if rp.contains(iv) {
            assignment[rel] = (iv, tid);
            descend(program, active, level + 1, assignment, emit, work);
        }
    }
}

impl Program {
    /// BFS binding order rooted at `root` (neighbors in ascending
    /// relation index — deterministic), with each condition checked at
    /// the level where its later-bound endpoint binds, oriented so the
    /// candidate is the right operand.
    fn new(q: &JoinQuery, adj: &[Vec<usize>], root: usize) -> Program {
        let m = q.num_relations() as usize;
        let mut order = vec![root];
        let mut seen = vec![false; m];
        seen[root] = true;
        let mut head = 0;
        while head < order.len() {
            let cur = order[head];
            head += 1;
            let mut next: Vec<usize> = adj[cur].iter().copied().filter(|&n| !seen[n]).collect();
            next.sort_unstable();
            next.dedup();
            for n in next {
                seen[n] = true;
                order.push(n);
            }
        }
        debug_assert_eq!(order.len(), m, "qualifying queries are connected");
        let mut level_of = vec![0usize; m];
        for (lvl, &r) in order.iter().enumerate() {
            level_of[r] = lvl;
        }
        let mut checks: Vec<Vec<(usize, AllenPredicate)>> = vec![Vec::new(); m];
        for c in q.conditions() {
            let (l, r) = (c.left.rel.idx(), c.right.rel.idx());
            let (lvl, other, pred) = if level_of[l] > level_of[r] {
                (level_of[l], r, c.pred.inverse())
            } else {
                (level_of[r], l, c.pred)
            };
            checks[lvl].push((other, pred));
        }
        Program { order, checks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;
    use ij_query::Condition;

    fn chain(preds: &[AllenPredicate]) -> JoinQuery {
        JoinQuery::chain(preds).unwrap()
    }

    #[test]
    fn colocation_cliques_qualify() {
        // All pairs directly conditioned — qualification is immediate.
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(0, Contains, 2),
            ],
        )
        .unwrap();
        assert!(qualifies(&q));
    }

    #[test]
    fn overlaps_chains_do_not_qualify() {
        // R1=[0,10] ov R2=[5,15] ov R3=[12,20] has no common point: the
        // (0,2) pair is unprovable, so the chain must stay off this path.
        assert!(!qualifies(&chain(&[Overlaps, Overlaps])));
        assert!(!qualifies(&chain(&[Overlaps, Overlaps, Overlaps])));
    }

    #[test]
    fn containment_chains_qualify_via_subset_closure() {
        // r3 ⊆ r2 ⊆ r1 proves the (0,2) intersection transitively.
        assert!(qualifies(&chain(&[Contains, Contains])));
        assert!(qualifies(&chain(&[ContainedBy, Equals, Starts])));
        // Mixed: 1 ov 2 is direct; 2 ⊆ 1 is not derivable from ov, but
        // contains on (1,2) then ov on (0,1) leaves (0,2) unprovable.
        assert!(!qualifies(&chain(&[Overlaps, Contains])));
    }

    #[test]
    fn sequence_or_tiny_queries_never_qualify() {
        assert!(!qualifies(&chain(&[Before])));
        assert!(!qualifies(&chain(&[Overlaps, Before])));
        // Pair colocation queries qualify (both relations conditioned).
        assert!(qualifies(&chain(&[Meets])));
        assert!(qualifies(&chain(&[Equals])));
    }

    #[test]
    fn disconnected_colocation_queries_do_not_qualify() {
        let q = JoinQuery::new(
            4,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(2, Overlaps, 3),
            ],
        )
        .unwrap();
        assert!(!qualifies(&q));
    }

    #[test]
    fn possible_latest_prunes_strictly_earlier_relations() {
        // ov(0,1) forces s0 < s1, contains(1,2) forces s1 < s2: only r2
        // can hold a binding's latest start, so r0/r1 probes are dead.
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Contains, 2),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        assert_eq!(possible_latest(&q), vec![false, false, true]);
        // Equal starts are a tie — both relations keep their probes (the
        // event order picks which of the two actually emits)...
        assert_eq!(possible_latest(&chain(&[Starts])), vec![true, true]);
        // ...but strictness composes *through* an equality: s0 == s1 < s2.
        assert_eq!(
            possible_latest(&chain(&[Starts, Contains])),
            vec![false, false, true]
        );
        // Containment chains leave only the innermost interval.
        assert_eq!(
            possible_latest(&chain(&[Contains, Contains])),
            vec![false, false, true]
        );
        assert_eq!(possible_latest(&chain(&[Equals])), vec![true, true]);
    }

    #[test]
    fn event_order_puts_starts_before_ends() {
        let a = Event {
            time: 5,
            end: false,
            rel: 1,
            idx: 9,
        };
        let b = Event {
            time: 5,
            end: true,
            rel: 0,
            idx: 0,
        };
        assert!(a < b, "equal-time start must sort before end");
    }
}
