//! Predicate-specialized reduce-side join kernels.
//!
//! Every reducer of every single-attribute algorithm funnels into
//! [`execute`] (via `executor::join_single_attr` or [`reduce_join`]): the
//! dispatcher classifies the query's condition set and routes each bucket
//! to the fastest applicable kernel —
//!
//! | Condition set | Kernel | Counter |
//! |---|---|---|
//! | colocation, all pairs provably intersecting | `event_sweep` (merged event list, gapless active arrays) | `kernel.event_sweep_buckets` |
//! | other colocation-only sets | `sweep` (active-set / dual-window plane sweep) | `kernel.sweep_buckets` |
//! | sequence only | `sort_merge` (suffix/prefix merge) | `kernel.merge_buckets` |
//! | mixed (hybrid) | `backtrack` (windowed backtracking) | `kernel.fallback_buckets` |
//!
//! The event-list sweep is the multi-way generalization of the pair
//! sweep: one pass over all relations' merged endpoints, emitting each
//! binding at its latest-starting tuple's event. Completeness of that
//! rule needs every relation pair of a satisfying assignment to
//! intersect (1-D Helly), which `event_sweep::qualifies` proves
//! statically — colocation cliques and containment-shaped chains route
//! there, while e.g. pure *overlaps* chains (where the ends of a binding
//! may not share a point) stay on the dual-window sweep. All kernels are
//! complete join executors for arbitrary single-attribute
//! Allen condition sets (they share the binding-order skeleton and differ
//! only in the per-level scan strategy), so dispatch is purely a
//! performance decision — property-tested to produce identical result
//! sets.
//!
//! **Heavy-bucket intra-reducer parallelism.** When a bucket's candidate
//! count reaches the configured threshold, [`execute`] splits the level-0
//! outer iteration into contiguous chunks across a bounded worker pool and
//! concatenates the per-chunk outputs in chunk order. Because every kernel
//! emits along a fixed outer order (and the pair sweep's retirement state
//! is a function of the current outer interval only), the merged output is
//! byte-identical to the serial run for any thread count, and reported
//! work units are chunk-invariant. The owner-`accept` filter runs inside
//! the workers; the `on_output` sink is only ever called on the caller's
//! thread.
//!
//! **Streaming reducers.** Since the memory-budgeted reduce pipeline,
//! reducers receive their bucket as a pull-based
//! [`ij_mapreduce::ValueStream`] and build [`Candidates`] by draining it
//! once, in emission order — whether the stream is backed by the
//! in-memory merge or by spilled Dfs runs is invisible here. The kernels
//! themselves are unchanged: they run over the materialized `Candidates`
//! index, never over the raw stream.

mod backtrack;
mod event_sweep;
mod ranges;
mod scratch;
mod sort_merge;
mod sweep;

pub use ranges::{range_pair, RangePair};

use crate::executor::Candidates;
use ij_interval::{AllenPredicate, Interval, TupleId};
use ij_mapreduce::metrics::names;
use ij_mapreduce::ReduceCtx;
use ij_query::{JoinQuery, QueryClass};
use std::any::Any;
use std::ops::Range;
use std::panic::resume_unwind;

/// Sink for complete bindings: one `(interval, tuple)` slot per relation,
/// in query order.
pub(crate) type Emit<'a> = dyn FnMut(&[(Interval, TupleId)]) + 'a;

/// Which kernel a bucket was routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Endpoint-sorted plane sweep (colocation condition sets).
    Sweep,
    /// Merged-event-list sweep with gapless active arrays (colocation
    /// sets whose relation pairs all provably intersect).
    EventSweep,
    /// Sort-merge path (sequence condition sets).
    SortMerge,
    /// Windowed backtracking fallback (mixed Allen condition sets).
    Backtrack,
}

impl KernelKind {
    /// The per-bucket user counter this kernel increments. Valid for
    /// every kernel kind regardless of predicate class.
    pub fn counter(self) -> &'static str {
        match self {
            KernelKind::Sweep => names::KERNEL_SWEEP_BUCKETS,
            KernelKind::EventSweep => names::KERNEL_EVENT_SWEEP_BUCKETS,
            KernelKind::SortMerge => names::KERNEL_MERGE_BUCKETS,
            KernelKind::Backtrack => names::KERNEL_FALLBACK_BUCKETS,
        }
    }
}

/// The fine-grained scan strategy the dispatcher will use for a query —
/// [`KernelKind`] plus the sweep kernel's internal pair/dual-window
/// split. This is query-static (independent of bucket contents), so the
/// cost model in `core::estimate` can price reducers per strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// Two-relation active-set sweep with a retirement array.
    PairSweep,
    /// Merged-event-list sweep over gapless active arrays.
    EventSweep,
    /// Per-level adaptive dual-window scan.
    DualWindow,
    /// Suffix/prefix merge for sequence condition sets.
    SortMerge,
    /// Windowed backtracking with per-candidate `holds` re-checks.
    Backtrack,
}

/// Whether the sweep kernel's two-relation fast path applies: a single
/// condition whose predicate orients to an *overlaps*/*contains* shape.
fn pair_sweep_eligible(q: &JoinQuery) -> bool {
    use AllenPredicate::*;
    q.num_relations() == 2
        && q.conditions().len() == 1
        && matches!(
            q.conditions()[0].pred,
            Overlaps | OverlappedBy | Contains | ContainedBy
        )
}

/// The strategy [`execute`] will route `q`'s buckets to. Valid for any
/// single-attribute query of any predicate class — the mapping depends
/// only on the condition set.
pub fn planned_kernel(q: &JoinQuery) -> KernelStrategy {
    match choose(q) {
        KernelKind::EventSweep => KernelStrategy::EventSweep,
        KernelKind::SortMerge => KernelStrategy::SortMerge,
        KernelKind::Backtrack => KernelStrategy::Backtrack,
        KernelKind::Sweep => {
            if pair_sweep_eligible(q) {
                KernelStrategy::PairSweep
            } else {
                KernelStrategy::DualWindow
            }
        }
    }
}

/// What one [`execute`] call did.
#[derive(Debug, Clone, Copy)]
pub struct KernelReport {
    /// The kernel the dispatcher chose.
    pub kind: KernelKind,
    /// Work units spent (candidates examined), chunk-invariant.
    pub work: u64,
    /// Outer chunks executed (1 = serial).
    pub parallel_chunks: usize,
    /// Maximum total active-array occupancy the event sweep observed
    /// (0 for the other kernels), chunk-invariant — the direct input for
    /// skew-driven intra-reduce budgeting.
    pub active_peak: u64,
}

/// Execution knobs for [`execute`]; reducers derive theirs from the
/// engine via [`reduce_join`].
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Maximum worker threads for one bucket (1 disables parallelism).
    pub threads: usize,
    /// Total candidate count at which a bucket becomes "heavy" and may be
    /// split across the worker pool.
    pub parallel_threshold: usize,
}

impl KernelConfig {
    /// Strictly serial execution. Predicate-class independent: every
    /// kernel accepts a serial config.
    pub fn serial() -> KernelConfig {
        KernelConfig {
            threads: 1,
            parallel_threshold: usize::MAX,
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::serial()
    }
}

/// Routes a condition set to its kernel.
fn choose(q: &JoinQuery) -> KernelKind {
    match q.class() {
        // The pair fast path is the strongest specialization, so
        // pair-eligible queries keep the classic sweep; other colocation
        // sets take the event-list sweep when its completeness
        // precondition (all relation pairs provably intersecting) holds.
        QueryClass::Colocation if pair_sweep_eligible(q) => KernelKind::Sweep,
        QueryClass::Colocation if event_sweep::qualifies(q) => KernelKind::EventSweep,
        QueryClass::Colocation => KernelKind::Sweep,
        QueryClass::Sequence => KernelKind::SortMerge,
        // Mixed colocation/sequence sets (and anything unclassified) fall
        // back to the general windowed backtracking scan.
        _ => KernelKind::Backtrack,
    }
}

/// Binding order plus per-level checks, shared by all kernels.
///
/// `checks[level]` lists `(other_rel, pred)` for every condition whose
/// later-bound endpoint is at `level`, with the predicate oriented so the
/// *candidate is the right operand*: the check is `pred.holds(other, cand)`
/// and the candidate's endpoint ranges come from
/// [`ranges::range_pair`]`(pred, other)`.
pub(crate) struct Compiled {
    pub(crate) order: Vec<usize>,
    pub(crate) checks: Vec<Vec<(usize, AllenPredicate)>>,
}

impl Compiled {
    fn new(q: &JoinQuery, list_len: impl Fn(usize) -> usize) -> Compiled {
        let m = q.num_relations() as usize;
        let order = crate::executor::binding_order(q, list_len);
        let mut level_of = vec![0usize; m];
        for (lvl, &r) in order.iter().enumerate() {
            level_of[r] = lvl;
        }
        let mut checks: Vec<Vec<(usize, AllenPredicate)>> = vec![Vec::new(); m];
        for c in q.conditions() {
            let (l, r) = (c.left.rel.idx(), c.right.rel.idx());
            let (lvl, other, pred) = if level_of[l] > level_of[r] {
                // `l` binds later: the candidate is the LEFT operand, so
                // flip to the right-operand form.
                (level_of[l], r, c.pred.inverse())
            } else {
                (level_of[r], l, c.pred)
            };
            checks[lvl].push((other, pred));
        }
        Compiled { order, checks }
    }
}

/// One prepared bucket: everything the chunk runner needs, immutable.
struct Prepared {
    kind: KernelKind,
    compiled: Compiled,
    sweep: Option<sweep::SweepPlan>,
    event: Option<event_sweep::EventSweepPlan>,
    outer_len: usize,
    total: usize,
}

fn prepare(q: &JoinQuery, cands: &Candidates, kind: KernelKind) -> Option<Prepared> {
    assert!(
        cands.is_sorted(),
        "Candidates::finish must be called before joining"
    );
    if cands.any_empty() {
        return None;
    }
    let m = q.num_relations() as usize;
    let compiled = Compiled::new(q, |r| cands.len(r));
    let sweep = (kind == KernelKind::Sweep).then(|| sweep::SweepPlan::new(q, cands, &compiled));
    let event =
        (kind == KernelKind::EventSweep).then(|| event_sweep::EventSweepPlan::new(q, cands));
    let outer_len = match (&sweep, &event) {
        (Some(p), _) => p.outer_len(cands, &compiled),
        (_, Some(p)) => p.outer_len(),
        _ => cands.len(compiled.order[0]),
    };
    let total = (0..m).map(|r| cands.len(r)).sum();
    Some(Prepared {
        kind,
        compiled,
        sweep,
        event,
        outer_len,
        total,
    })
}

fn run_range(
    prep: &Prepared,
    cands: &Candidates,
    outer: Range<usize>,
    emit: &mut Emit<'_>,
    work: &mut u64,
    active_peak: &mut u64,
) {
    match prep.kind {
        KernelKind::Backtrack => backtrack::run(cands, &prep.compiled, outer, emit, work),
        KernelKind::SortMerge => sort_merge::run(cands, &prep.compiled, outer, emit, work),
        KernelKind::Sweep => prep.sweep.as_ref().expect("sweep plan prepared").run(
            cands,
            &prep.compiled,
            outer,
            emit,
            work,
        ),
        KernelKind::EventSweep => prep.event.as_ref().expect("event sweep plan prepared").run(
            cands,
            outer,
            emit,
            work,
            active_peak,
        ),
    }
}

/// Dispatching kernel execution, serial only (no `Sync` bound on
/// `accept`). Precondition: any single-attribute query — the dispatcher
/// routes colocation condition sets to the sweep, sequence sets to
/// sort-merge and mixed Allen sets to the backtracking fallback.
///
/// `executor::join_single_attr` delegates here, so the whole algorithm
/// suite picks the kernels up without signature changes.
pub fn execute_serial(
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    mut on_output: impl FnMut(&[(Interval, TupleId)]),
) -> KernelReport {
    let kind = choose(q);
    let Some(prep) = prepare(q, cands, kind) else {
        return KernelReport {
            kind,
            work: 0,
            parallel_chunks: 1,
            active_peak: 0,
        };
    };
    let mut work = 0u64;
    let mut active_peak = 0u64;
    run_range(
        &prep,
        cands,
        0..prep.outer_len,
        &mut |a| {
            if accept(a) {
                on_output(a)
            }
        },
        &mut work,
        &mut active_peak,
    );
    KernelReport {
        kind,
        work,
        parallel_chunks: 1,
        active_peak,
    }
}

/// Dispatching kernel execution with heavy-bucket parallelism.
/// Precondition: any single-attribute query (same predicate-class
/// routing as [`execute_serial`]).
///
/// When the bucket's total candidate count reaches
/// `cfg.parallel_threshold` and `cfg.threads > 1`, the outer iteration is
/// chunked across a scoped worker pool; `accept` runs inside the workers
/// (hence the `Sync` bound) while `on_output` observes the chunk-ordered
/// concatenation on the calling thread — byte-identical to the serial
/// emission order for every thread count.
pub fn execute<A, F>(
    q: &JoinQuery,
    cands: &Candidates,
    cfg: &KernelConfig,
    accept: A,
    mut on_output: F,
) -> KernelReport
where
    A: Fn(&[(Interval, TupleId)]) -> bool + Sync,
    F: FnMut(&[(Interval, TupleId)]),
{
    let kind = choose(q);
    let Some(prep) = prepare(q, cands, kind) else {
        return KernelReport {
            kind,
            work: 0,
            parallel_chunks: 1,
            active_peak: 0,
        };
    };
    let threads = if prep.total >= cfg.parallel_threshold {
        cfg.threads.min(prep.outer_len).max(1)
    } else {
        1
    };
    if threads <= 1 {
        let mut work = 0u64;
        let mut active_peak = 0u64;
        run_range(
            &prep,
            cands,
            0..prep.outer_len,
            &mut |a| {
                if accept(a) {
                    on_output(a)
                }
            },
            &mut work,
            &mut active_peak,
        );
        return KernelReport {
            kind,
            work,
            parallel_chunks: 1,
            active_peak,
        };
    }

    let chunk = prep.outer_len.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * chunk)..((t + 1) * chunk).min(prep.outer_len))
        .filter(|r| !r.is_empty())
        .collect();
    let m = prep.compiled.order.len();
    let prep_ref = &prep;
    let accept_ref = &accept;
    // Per chunk: (work units, active peak, buffered accepted rows).
    type ChunkResult = (u64, u64, Vec<(Interval, TupleId)>);
    let mut chunk_results: Vec<ChunkResult> = Vec::with_capacity(ranges.len());
    let mut panic_payload: Option<Box<dyn Any + Send>> = None;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|r| {
                scope.spawn(move |_| {
                    let mut work = 0u64;
                    let mut peak = 0u64;
                    let mut buf: Vec<(Interval, TupleId)> = Vec::new();
                    run_range(
                        prep_ref,
                        cands,
                        r,
                        &mut |a| {
                            if accept_ref(a) {
                                buf.extend_from_slice(a);
                            }
                        },
                        &mut work,
                        &mut peak,
                    );
                    (work, peak, buf)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(res) => chunk_results.push(res),
                Err(p) => {
                    panic_payload.get_or_insert(p);
                }
            }
        }
    })
    .unwrap_or_else(|p| resume_unwind(p));
    if let Some(p) = panic_payload {
        resume_unwind(p);
    }

    let parallel_chunks = chunk_results.len();
    let mut work = 0u64;
    // Per-chunk peaks are maxima of the same per-event occupancy series
    // the serial run observes, so their maximum is chunk-invariant.
    let mut active_peak = 0u64;
    for (w, peak, buf) in &chunk_results {
        work += w;
        active_peak = active_peak.max(*peak);
        for a in buf.chunks_exact(m) {
            on_output(a);
        }
    }
    KernelReport {
        kind,
        work,
        parallel_chunks,
        active_peak,
    }
}

/// Runs a bucket inside a reducer: derives the [`KernelConfig`] from the
/// engine's per-bucket thread budget, reports the work units to the cost
/// model and maintains the `kernel.*` counters. Algorithm call sites use
/// this instead of raw `join_single_attr`. Precondition: any
/// single-attribute query; the dispatcher picks the kernel by predicate
/// class.
pub fn reduce_join<A, F>(
    ctx: &mut ReduceCtx,
    q: &JoinQuery,
    cands: &Candidates,
    accept: A,
    on_output: F,
) -> KernelReport
where
    A: Fn(&[(Interval, TupleId)]) -> bool + Sync,
    F: FnMut(&[(Interval, TupleId)]),
{
    let cfg = KernelConfig {
        threads: ctx.thread_budget(),
        parallel_threshold: ctx.heavy_bucket_threshold(),
    };
    let rep = execute(q, cands, &cfg, accept, on_output);
    ctx.add_work(rep.work);
    ctx.inc(rep.kind.counter(), 1);
    if rep.parallel_chunks > 1 {
        ctx.inc(names::KERNEL_PARALLEL_BUCKETS, 1);
    }
    if rep.active_peak > 0 {
        // Execution-shape counter (see `ij_mapreduce::is_execution_shape`):
        // the event sweep's peak concurrent-interval count, the signal the
        // skew-driven thread budget consumes. The engine also records the
        // per-bucket values into the `kernel.active_peak` histogram.
        ctx.inc(names::KERNEL_ACTIVE_PEAK, rep.active_peak);
    }
    rep
}

fn run_forced(
    kind: KernelKind,
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    mut on_output: impl FnMut(&[(Interval, TupleId)]),
) -> u64 {
    let Some(prep) = prepare(q, cands, kind) else {
        return 0;
    };
    let mut work = 0u64;
    let mut active_peak = 0u64;
    run_range(
        &prep,
        cands,
        0..prep.outer_len,
        &mut |a| {
            if accept(a) {
                on_output(a)
            }
        },
        &mut work,
        &mut active_peak,
    );
    work
}

/// Forces the plane-sweep kernel (complete for any single-attribute
/// query); returns work units. Used by benchmarks and equivalence tests.
pub fn sweep_join(
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    on_output: impl FnMut(&[(Interval, TupleId)]),
) -> u64 {
    run_forced(KernelKind::Sweep, q, cands, accept, on_output)
}

/// Forces the event-list sweep (complete only for colocation condition
/// sets whose relation pairs all provably intersect — see
/// `event_sweep::qualifies`); non-qualifying queries fall back to the
/// plane sweep, which is complete for any single-attribute query.
/// Returns work units. Used by benchmarks and equivalence tests.
pub fn event_sweep_join(
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    on_output: impl FnMut(&[(Interval, TupleId)]),
) -> u64 {
    let kind = if event_sweep::qualifies(q) {
        KernelKind::EventSweep
    } else {
        KernelKind::Sweep
    };
    run_forced(kind, q, cands, accept, on_output)
}

/// Forces the sort-merge kernel (complete for any single-attribute
/// query); returns work units.
pub fn merge_join(
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    on_output: impl FnMut(&[(Interval, TupleId)]),
) -> u64 {
    run_forced(KernelKind::SortMerge, q, cands, accept, on_output)
}

/// Forces the windowed backtracking fallback (the pre-kernel
/// `join_single_attr` semantics, complete for any single-attribute
/// query including mixed Allen condition sets); returns work units.
pub fn backtrack_join(
    q: &JoinQuery,
    cands: &Candidates,
    accept: impl Fn(&[(Interval, TupleId)]) -> bool,
    on_output: impl FnMut(&[(Interval, TupleId)]),
) -> u64 {
    run_forced(KernelKind::Backtrack, q, cands, accept, on_output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    fn random_cands(m: usize, n: u32, seed: u64) -> Candidates {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Candidates::new(m);
        for r in 0..m {
            for t in 0..n {
                let s = rng.gen_range(0..60);
                let e = s + rng.gen_range(0..20);
                c.push(r, iv(s, e), t);
            }
        }
        c.finish();
        c
    }

    fn collect(
        run: impl FnOnce(&mut dyn FnMut(&[(Interval, TupleId)])) -> u64,
    ) -> (u64, Vec<Vec<TupleId>>) {
        let mut got = Vec::new();
        let work = run(&mut |a: &[(Interval, TupleId)]| {
            got.push(a.iter().map(|(_, t)| *t).collect::<Vec<_>>())
        });
        (work, got)
    }

    #[test]
    fn dispatch_follows_query_class() {
        // Overlaps∘Contains chains don't guarantee pairwise intersection,
        // so they stay on the dual-window sweep.
        let coloc = JoinQuery::chain(&[Overlaps, Contains]).unwrap();
        let seq = JoinQuery::chain(&[Before, Before]).unwrap();
        let mixed = JoinQuery::chain(&[Overlaps, Before]).unwrap();
        assert_eq!(choose(&coloc), KernelKind::Sweep);
        assert_eq!(choose(&seq), KernelKind::SortMerge);
        assert_eq!(choose(&mixed), KernelKind::Backtrack);
        // Qualifying multi-way colocation sets route to the event sweep:
        // cliques (every pair conditioned) and containment chains.
        let clique = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(1, Contains, 2),
                ij_query::Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        assert_eq!(choose(&clique), KernelKind::EventSweep);
        let containment = JoinQuery::chain(&[Contains, Contains]).unwrap();
        assert_eq!(choose(&containment), KernelKind::EventSweep);
        // Pair-eligible queries keep the pair-sweep fast path.
        let pair = JoinQuery::chain(&[Overlaps]).unwrap();
        assert_eq!(choose(&pair), KernelKind::Sweep);
        assert_eq!(planned_kernel(&pair), KernelStrategy::PairSweep);
        assert_eq!(planned_kernel(&coloc), KernelStrategy::DualWindow);
        assert_eq!(planned_kernel(&clique), KernelStrategy::EventSweep);
        assert_eq!(planned_kernel(&seq), KernelStrategy::SortMerge);
        assert_eq!(planned_kernel(&mixed), KernelStrategy::Backtrack);
    }

    /// A satisfiable 3-clique: r0 ov r1, r1 ⊇ r2, r0 ov r2 — e.g.
    /// r0=[0,10], r1=[5,20], r2=[8,12].
    fn clique3() -> JoinQuery {
        JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(1, Contains, 2),
                ij_query::Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn event_sweep_matches_other_kernels_on_cliques() {
        let q = clique3();
        for seed in 0..6 {
            let c = random_cands(3, 40, 100 + seed);
            let (_, mut es) = collect(|e| event_sweep_join(&q, &c, |_| true, |a| e(a)));
            let (_, mut bt) = collect(|e| backtrack_join(&q, &c, |_| true, |a| e(a)));
            let (_, mut sw) = collect(|e| sweep_join(&q, &c, |_| true, |a| e(a)));
            es.sort();
            bt.sort();
            sw.sort();
            assert!(!es.is_empty(), "workload too sparse");
            assert_eq!(es, bt, "event sweep != backtrack");
            assert_eq!(es, sw, "event sweep != dual-window sweep");
        }
    }

    #[test]
    fn event_sweep_parallel_is_byte_identical_with_invariant_peak() {
        let q = clique3();
        let c = random_cands(3, 60, 17);
        let run = |threads: usize| {
            let cfg = KernelConfig {
                threads,
                parallel_threshold: 0,
            };
            let mut got: Vec<TupleId> = Vec::new();
            let rep = execute(
                &q,
                &c,
                &cfg,
                |_| true,
                |a| got.extend(a.iter().map(|(_, t)| *t)),
            );
            assert_eq!(rep.kind, KernelKind::EventSweep);
            (rep.work, rep.active_peak, got)
        };
        let (base_work, base_peak, base) = run(1);
        assert!(!base.is_empty());
        assert!(base_peak > 0, "active_peak must be tracked");
        for t in [2, 3, 8] {
            let (work, peak, got) = run(t);
            assert_eq!(got, base, "threads = {t}: output order must not change");
            assert_eq!(
                work, base_work,
                "threads = {t}: work must be chunk-invariant"
            );
            assert_eq!(
                peak, base_peak,
                "threads = {t}: active_peak must be chunk-invariant"
            );
        }
    }

    #[test]
    fn event_sweep_reduce_join_reports_counters() {
        let q = clique3();
        let c = random_cands(3, 30, 5);
        let mut ctx = ReduceCtx::new(0);
        let rep = reduce_join(&mut ctx, &q, &c, |_| true, |_| {});
        assert_eq!(rep.kind, KernelKind::EventSweep);
        assert_eq!(ctx.counters().get("kernel.event_sweep_buckets"), 1);
        assert_eq!(ctx.counters().get("kernel.active_peak"), rep.active_peak);
        assert!(rep.active_peak > 0);
    }

    #[test]
    fn all_kernels_agree_on_every_chain_predicate() {
        for p in AllenPredicate::ALL {
            let q = JoinQuery::chain(&[p]).unwrap();
            let c = random_cands(2, 40, 7 + p as u64);
            let (_, mut bt) = collect(|e| backtrack_join(&q, &c, |_| true, |a| e(a)));
            let (_, mut sw) = collect(|e| sweep_join(&q, &c, |_| true, |a| e(a)));
            let (_, mut mg) = collect(|e| merge_join(&q, &c, |_| true, |a| e(a)));
            bt.sort();
            sw.sort();
            mg.sort();
            assert_eq!(bt, sw, "{p}: sweep != backtrack");
            assert_eq!(bt, mg, "{p}: merge != backtrack");
        }
    }

    #[test]
    fn parallel_output_is_byte_identical_and_work_invariant() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let c = random_cands(3, 60, 42);
        let run = |threads: usize| {
            let cfg = KernelConfig {
                threads,
                parallel_threshold: 0,
            };
            let mut got: Vec<TupleId> = Vec::new();
            let rep = execute(
                &q,
                &c,
                &cfg,
                |_| true,
                |a| got.extend(a.iter().map(|(_, t)| *t)),
            );
            (rep.work, got)
        };
        let (base_work, base) = run(1);
        assert!(!base.is_empty());
        for t in [2, 3, 8] {
            let (work, got) = run(t);
            assert_eq!(got, base, "threads = {t}: output order must not change");
            assert_eq!(
                work, base_work,
                "threads = {t}: work must be chunk-invariant"
            );
        }
    }

    #[test]
    fn accept_filter_runs_in_parallel_path() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let c = random_cands(2, 50, 9);
        let cfg = KernelConfig {
            threads: 4,
            parallel_threshold: 0,
        };
        let mut par = Vec::new();
        let rep = execute(&q, &c, &cfg, |a| a[1].1 % 2 == 0, |a| par.push(a[1].1));
        assert!(rep.parallel_chunks > 1);
        let mut ser = Vec::new();
        execute_serial(&q, &c, |a| a[1].1 % 2 == 0, |a| ser.push(a[1].1));
        assert_eq!(par, ser);
        assert!(par.iter().all(|t| t % 2 == 0));
    }

    #[test]
    fn empty_bucket_reports_zero() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut c = Candidates::new(2);
        c.push(0, iv(0, 5), 0);
        c.finish();
        let rep = execute_serial(&q, &c, |_| true, |_| panic!("no outputs"));
        assert_eq!(rep.work, 0);
        assert_eq!(rep.kind, KernelKind::Sweep);
    }

    #[test]
    fn reduce_join_reports_work_and_counters() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let c = random_cands(2, 30, 3);
        let mut ctx = ReduceCtx::new(0);
        let rep = reduce_join(&mut ctx, &q, &c, |_| true, |_| {});
        assert_eq!(ctx.work(), rep.work);
        assert_eq!(ctx.counters().get("kernel.sweep_buckets"), 1);
        assert_eq!(ctx.counters().get("kernel.parallel_buckets"), 0);
    }
}
