//! Exact endpoint-range decomposition of Allen predicates.
//!
//! Every Allen predicate `P`, given a fixed left operand `r1 = (s1, e1)`,
//! is *exactly* equivalent to a pair of independent range constraints on
//! the right operand's endpoints: `P.holds(r1, r2)` iff `r2.start` lies in
//! a start range and `r2.end` lies in an end range (both derived from
//! `r1` alone). For example `overlaps` decomposes into
//! `s2 ∈ (s1, e1)` and `e2 ∈ (e1, ∞)`; `contains` into `s2 ∈ (s1, e1)` and
//! `e2 ∈ (s1, e1)` (using `s2 <= e2`).
//!
//! This is what lets the sweep and sort-merge kernels drop the per-candidate
//! `holds` re-check of the backtracking path: conditions at one binding
//! level intersect their start ranges and their end ranges, and membership
//! in both intersected ranges *is* satisfaction of all the conditions. The
//! decomposition is verified exhaustively against [`AllenPredicate::holds`]
//! in this module's tests.

use crate::executor::{tighten_lower, tighten_upper};
use ij_interval::{bounds_contain, AllenPredicate, Interval, Time};
use std::ops::Bound;

/// Range constraints on a candidate interval's start and end points.
///
/// Produced by [`range_pair`] and intersected across all conditions at one
/// binding level. A contradictory pair (lower bound above upper bound)
/// simply yields empty windows / `contains == false`; no separate empty
/// flag is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePair {
    /// Bounds on the candidate's start point.
    pub start: (Bound<Time>, Bound<Time>),
    /// Bounds on the candidate's end point.
    pub end: (Bound<Time>, Bound<Time>),
}

impl RangePair {
    /// The unconstrained pair (identity of [`RangePair::intersect`]) —
    /// the starting point for conjoining any Allen predicate's ranges.
    pub fn full() -> RangePair {
        RangePair {
            start: (Bound::Unbounded, Bound::Unbounded),
            end: (Bound::Unbounded, Bound::Unbounded),
        }
    }

    /// Tightens `self` to the conjunction of both constraint pairs —
    /// how a condition set's Allen predicates compose on one candidate.
    pub fn intersect(&mut self, other: &RangePair) {
        self.start.0 = tighten_lower(self.start.0, other.start.0);
        self.start.1 = tighten_upper(self.start.1, other.start.1);
        self.end.0 = tighten_lower(self.end.0, other.end.0);
        self.end.1 = tighten_upper(self.end.1, other.end.1);
    }

    /// Whether `iv` satisfies both range constraints. Exact for every
    /// Allen predicate given a valid interval (`start <= end`).
    #[inline]
    pub fn contains(&self, iv: Interval) -> bool {
        bounds_contain(self.start, iv.start()) && bounds_contain(self.end, iv.end())
    }

    /// Whether either range is contradictory — no point can satisfy it.
    /// Class-independent: works on the intersected ranges of any
    /// predicate mix.
    ///
    /// Exact for the integer [`Time`] domain (an `(Excluded(a),
    /// Excluded(b))` range is empty iff `a + 1 >= b`), so a `true` lets a
    /// probe loop skip a scan entirely and a `false` guarantees the range
    /// admits at least one point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        fn empty(range: (Bound<Time>, Bound<Time>)) -> bool {
            match range {
                (Bound::Included(a), Bound::Included(b)) => a > b,
                (Bound::Included(a), Bound::Excluded(b))
                | (Bound::Excluded(a), Bound::Included(b)) => a >= b,
                (Bound::Excluded(a), Bound::Excluded(b)) => a.saturating_add(1) >= b,
                _ => false,
            }
        }
        empty(self.start) || empty(self.end)
    }
}

/// The exact endpoint ranges a candidate `r2` must satisfy for
/// `pred.holds(r1, r2)`.
///
/// Exactness (for any *valid* interval, i.e. `s2 <= e2`):
/// `range_pair(p, r1).contains(r2) == p.holds(r1, r2)` — tested
/// exhaustively below. The ranges are normalized with the `s2 <= e2`
/// implication (an upper bound on `e2` also bounds `s2`, a lower bound on
/// `s2` also bounds `e2`), so the start range is always at least as tight
/// as [`AllenPredicate::right_start_bounds`].
pub fn range_pair(pred: AllenPredicate, r1: Interval) -> RangePair {
    use AllenPredicate::*;
    use Bound::*;
    let (s1, e1) = (r1.start(), r1.end());
    type Endpoint = (Bound<Time>, Bound<Time>);
    let (start, end): (Endpoint, Endpoint) = match pred {
        // e1 < s2
        Before => ((Excluded(e1), Unbounded), (Unbounded, Unbounded)),
        // e2 < s1
        After => ((Unbounded, Unbounded), (Unbounded, Excluded(s1))),
        // s1 < s2 < e1 < e2
        Overlaps => ((Excluded(s1), Excluded(e1)), (Excluded(e1), Unbounded)),
        // s2 < s1 < e2 < e1
        OverlappedBy => ((Unbounded, Excluded(s1)), (Excluded(s1), Excluded(e1))),
        // s1 < s2 && e2 < e1
        Contains => ((Excluded(s1), Unbounded), (Unbounded, Excluded(e1))),
        // s2 < s1 && e1 < e2
        ContainedBy => ((Unbounded, Excluded(s1)), (Excluded(e1), Unbounded)),
        // s2 == e1 && s1 < s2 && e1 < e2 (point start; empty when s1 == e1)
        Meets => (
            (tighten_lower(Included(e1), Excluded(s1)), Included(e1)),
            (Excluded(e1), Unbounded),
        ),
        // e2 == s1 && s2 < s1 && e2 < e1 (point end; empty when s1 == e1)
        MetBy => (
            (Unbounded, Excluded(s1)),
            (Included(s1), tighten_upper(Included(s1), Excluded(e1))),
        ),
        // s2 == s1 && e1 < e2
        Starts => ((Included(s1), Included(s1)), (Excluded(e1), Unbounded)),
        // s2 == s1 && e2 < e1
        StartedBy => ((Included(s1), Included(s1)), (Unbounded, Excluded(e1))),
        // e2 == e1 && s2 < s1
        Finishes => ((Unbounded, Excluded(s1)), (Included(e1), Included(e1))),
        // e2 == e1 && s1 < s2
        FinishedBy => ((Excluded(s1), Unbounded), (Included(e1), Included(e1))),
        Equals => ((Included(s1), Included(s1)), (Included(e1), Included(e1))),
    };
    let mut rp = RangePair { start, end };
    // Normalize with s2 <= e2: e2's upper bound also caps s2, s2's lower
    // bound also floors e2. This keeps start windows tight for predicates
    // whose literal constraint touches only one endpoint.
    rp.start.1 = tighten_upper(rp.start.1, rp.end.1);
    rp.end.0 = tighten_lower(rp.end.0, rp.start.0);
    rp
}

/// Index range of an end-sorted `(end, index)` list compatible with bounds
/// on the end point — the end-list analogue of `executor::window`.
pub(crate) fn window_ends(
    ends: &[(Time, u32)],
    lo: Bound<Time>,
    hi: Bound<Time>,
) -> (usize, usize) {
    let start = match lo {
        Bound::Unbounded => 0,
        Bound::Included(x) => ends.partition_point(|&(e, _)| e < x),
        Bound::Excluded(x) => ends.partition_point(|&(e, _)| e <= x),
    };
    let end = match hi {
        Bound::Unbounded => ends.len(),
        Bound::Included(x) => ends.partition_point(|&(e, _)| e <= x),
        Bound::Excluded(x) => ends.partition_point(|&(e, _)| e < x),
    };
    (start, end.max(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::bounds_contain;

    fn iv(s: Time, e: Time) -> Interval {
        Interval::new(s, e).unwrap()
    }

    fn universe(hi: Time) -> Vec<Interval> {
        let mut ivs = Vec::new();
        for s in 0..=hi {
            for e in s..=hi {
                ivs.push(iv(s, e));
            }
        }
        ivs
    }

    /// The decomposition is *exact*: range membership is predicate truth,
    /// for every predicate and every pair of small intervals.
    #[test]
    fn range_pair_is_exact() {
        let ivs = universe(5);
        for &a in &ivs {
            for p in AllenPredicate::ALL {
                let rp = range_pair(p, a);
                for &b in &ivs {
                    assert_eq!(
                        rp.contains(b),
                        p.holds(a, b),
                        "{p}: r1={a} r2={b} ranges={rp:?}"
                    );
                }
            }
        }
    }

    /// The normalized start range never loosens the executor's windows.
    #[test]
    fn start_range_at_least_as_tight_as_right_start_bounds() {
        let ivs = universe(5);
        for &a in &ivs {
            for p in AllenPredicate::ALL {
                let rp = range_pair(p, a);
                for t in -1..=6 {
                    if bounds_contain(rp.start, t) {
                        assert!(
                            bounds_contain(p.right_start_bounds(a), t),
                            "{p}: start range admits {t} outside right_start_bounds for {a}"
                        );
                    }
                }
            }
        }
    }

    /// Intersection is the conjunction of memberships.
    #[test]
    fn intersect_is_conjunction() {
        let ivs = universe(4);
        for &a in &ivs {
            for &b in &ivs {
                for p in AllenPredicate::ALL {
                    for q in AllenPredicate::ALL {
                        let mut rp = range_pair(p, a);
                        rp.intersect(&range_pair(q, b));
                        for &c in &ivs {
                            assert_eq!(
                                rp.contains(c),
                                p.holds(a, c) && q.holds(b, c),
                                "{p}∧{q}: r1={a} r1'={b} r2={c}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// `is_empty` is exact on the small universe: a pair is empty iff no
    /// interval (indeed no endpoint pair) satisfies it.
    #[test]
    fn is_empty_matches_exhaustive_membership() {
        let ivs = universe(5);
        for &a in &ivs {
            for p in AllenPredicate::ALL {
                for &b in &ivs {
                    for q in AllenPredicate::ALL {
                        let mut rp = range_pair(p, a);
                        rp.intersect(&range_pair(q, b));
                        let any = ivs.iter().any(|&c| rp.contains(c));
                        if rp.is_empty() {
                            assert!(!any, "{p}∧{q}: empty pair admits a member ({a},{b})");
                        }
                    }
                }
            }
        }
        // And fully exact on single ranges over raw points.
        for lo in [Bound::Unbounded, Bound::Included(2), Bound::Excluded(2)] {
            for hi in [Bound::Unbounded, Bound::Included(3), Bound::Excluded(3)] {
                let rp = RangePair {
                    start: (lo, hi),
                    end: (Bound::Unbounded, Bound::Unbounded),
                };
                let any = (-1..=6).any(|t| bounds_contain((lo, hi), t));
                assert_eq!(rp.is_empty(), !any, "lo={lo:?} hi={hi:?}");
            }
        }
    }

    #[test]
    fn window_ends_matches_scan() {
        let ends: Vec<(Time, u32)> = vec![(1, 0), (3, 1), (3, 2), (7, 3), (9, 4)];
        for lo in [
            Bound::Unbounded,
            Bound::Included(3),
            Bound::Excluded(3),
            Bound::Included(10),
        ] {
            for hi in [
                Bound::Unbounded,
                Bound::Included(3),
                Bound::Excluded(3),
                Bound::Excluded(0),
            ] {
                let (from, to) = window_ends(&ends, lo, hi);
                for (i, &(e, _)) in ends.iter().enumerate() {
                    let inside = bounds_contain((lo, hi), e);
                    assert_eq!(
                        (from..to).contains(&i),
                        inside,
                        "lo={lo:?} hi={hi:?} i={i} e={e}"
                    );
                }
            }
        }
    }
}
