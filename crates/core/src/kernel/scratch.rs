//! Reusable per-worker scratch buffers for the kernel runners.
//!
//! Every kernel needs a handful of working vectors per `run` call — the
//! `assignment` slot array, the pair sweep's retirement pointers, the
//! event sweep's active arrays and position index. Rebuilding them per
//! bucket made reducer hot loops allocation-bound on small buckets, so
//! they live in a thread-local [`Scratch`] instead: each runner takes the
//! buffers out, resizes them (capacity is retained across calls), and
//! puts them back when done. The take/put protocol keeps re-entrancy safe
//! — a nested kernel call on the same thread (e.g. from inside an emit
//! callback) simply sees an empty default scratch and allocates its own.
//!
//! Class-independent: the scratch holds no predicate state, only buffer
//! capacity; behavioral equivalence is pinned by the kernel-vs-oracle
//! proptests.

use ij_interval::{Interval, TupleId};
use std::cell::RefCell;

/// Reusable buffers shared by all kernel strategies on one thread.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// One `(interval, tuple)` slot per relation — the binding being built.
    pub(crate) assignment: Vec<(Interval, TupleId)>,
    /// The pair sweep's path-halving retirement array (`n + 1` slots).
    pub(crate) next: Vec<u32>,
    /// The event sweep's gapless active arrays, one per relation; the
    /// third slot is the tuple's candidate-list index (for `pos` fixup
    /// after a swap-remove).
    pub(crate) active: Vec<Vec<(Interval, TupleId, u32)>>,
    /// The event sweep's position index: `pos[rel][list_idx]` is the slot
    /// of that tuple in `active[rel]`, or `u32::MAX` when inactive.
    pub(crate) pos: Vec<Vec<u32>>,
}

impl Scratch {
    /// Resets `assignment` to `m` placeholder slots (capacity retained).
    pub(crate) fn reset_assignment(&mut self, m: usize) -> &mut Vec<(Interval, TupleId)> {
        self.assignment.clear();
        self.assignment.resize(m, (Interval::point(0), 0));
        &mut self.assignment
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with this thread's scratch buffers. The buffers are moved out
/// for the duration of the call, so nested invocations fall back to a
/// fresh default rather than aliasing.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut s = SCRATCH.with(RefCell::take);
    let r = f(&mut s);
    SCRATCH.with(|cell| *cell.borrow_mut() = s);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_capacity_survives_round_trips() {
        let cap = with_scratch(|s| {
            s.reset_assignment(16);
            s.assignment.capacity()
        });
        assert!(cap >= 16);
        let cap2 = with_scratch(|s| {
            s.reset_assignment(4);
            assert_eq!(s.assignment.len(), 4);
            s.assignment.capacity()
        });
        assert!(cap2 >= cap, "capacity must be retained across calls");
    }

    #[test]
    fn nested_calls_get_independent_buffers() {
        with_scratch(|outer| {
            outer.reset_assignment(3);
            outer.assignment[0] = (Interval::point(7), 42);
            with_scratch(|inner| {
                // The outer buffers are checked out; the inner call must
                // see a fresh scratch, not the outer's live data.
                assert!(inner.assignment.is_empty());
                inner.reset_assignment(2);
            });
            assert_eq!(outer.assignment[0], (Interval::point(7), 42));
        });
    }
}
