//! Sort-merge path for sequence-class (before/after) condition sets.
//!
//! Sequence predicates decompose into *half-open* endpoint ranges
//! (`before` is just `s2 > e1`), so on the start-sorted candidate lists a
//! level's window is a single suffix or prefix and every candidate whose
//! end point passes the (usually unbounded) end range is a match — a merge
//! join with no per-candidate `holds` re-check. The same code is exact for
//! arbitrary condition sets via [`super::ranges::range_pair`]; dispatch
//! routes only sequence-class queries here because the sweep kernel has
//! the better access pattern for colocation windows.

use super::scratch::with_scratch;
use super::Compiled;
use super::{ranges::range_pair, Emit, RangePair};
use crate::executor::{window, Candidates};
use ij_interval::{bounds_contain, Interval, TupleId};
use std::ops::Range;

/// Runs the merge join over `outer` positions of the level-0 list.
pub(crate) fn run(
    cands: &Candidates,
    compiled: &Compiled,
    outer: Range<usize>,
    emit: &mut Emit<'_>,
    work: &mut u64,
) {
    let rel0 = compiled.order[0];
    let list0 = cands.list(rel0);
    with_scratch(|s| {
        let assignment = s.reset_assignment(compiled.order.len());
        *work += outer.len() as u64;
        for &(iv, tid) in &list0[outer] {
            assignment[rel0] = (iv, tid);
            descend(cands, compiled, 1, assignment, emit, work);
        }
    });
}

fn descend(
    cands: &Candidates,
    compiled: &Compiled,
    level: usize,
    assignment: &mut Vec<(Interval, TupleId)>,
    emit: &mut Emit<'_>,
    work: &mut u64,
) {
    if level == compiled.order.len() {
        emit(assignment);
        return;
    }
    let rel = compiled.order[level];
    let mut rp = RangePair::full();
    for &(other, pred) in &compiled.checks[level] {
        rp.intersect(&range_pair(pred, assignment[other].0));
    }
    let list = cands.list(rel);
    let (from, to) = window(list, rp.start.0, rp.start.1);
    *work += (to - from) as u64;
    for &(iv, tid) in &list[from..to] {
        // Start membership is the window itself; the end range is the whole
        // remaining constraint — no `holds` re-check.
        if bounds_contain(rp.end, iv.end()) {
            assignment[rel] = (iv, tid);
            descend(cands, compiled, level + 1, assignment, emit, work);
        }
    }
}
