//! Endpoint-sorted plane-sweep kernel for colocation condition sets.
//!
//! Two strategies, both driven by the exact range decomposition of
//! [`super::ranges`]:
//!
//! * **Pair sweep** (`m == 2`, single `overlaps`/`contains`-shaped
//!   condition): a genuine active-set plane sweep. Outer intervals are
//!   processed in end-point order; inner candidates whose end point can no
//!   longer satisfy the end range are *retired* from an alive list (a
//!   path-compressed next-pointer array over the start-sorted inner list,
//!   O(1) amortized deletion and skip). Every alive candidate inside the
//!   outer's start range is then an exact match — enumeration is
//!   output-linear, `O(n log n + output)` overall.
//!
//! * **Adaptive dual-window scan** (general colocation sets, any arity):
//!   each relation gets an end-sorted view next to its start-sorted list;
//!   at each binding level the intersected [`RangePair`] yields a start
//!   window *and* an end window, and the kernel scans whichever is
//!   narrower, filtering by the other range with a single comparison. For
//!   predicates like `overlaps` with long outer intervals the end window
//!   (`e2 > e1`) is often tiny while the start window (`s2 ∈ (s1, e1)`)
//!   is huge — exactly the case where the windowed backtracking path
//!   degrades.
//!
//! Outer iteration (level 0) is a contiguous position range in a fixed
//! per-call order (end order for the pair sweep, start order otherwise), so
//! the parallel driver in [`super`] can chunk it across workers: each
//! worker's alive state depends only on the outer interval being processed
//! (retirement is monotone along the outer order), making chunked output a
//! permutation-free concatenation of the serial emission order.

use super::ranges::{range_pair, window_ends};
use super::scratch::with_scratch;
use super::{Compiled, Emit, RangePair};
use crate::executor::{window, Candidates};
use ij_interval::{bounds_contain, AllenPredicate, Interval, Time, TupleId};
use ij_query::JoinQuery;
use std::ops::Range;

/// Precomputed sweep structures for one bucket, shared (read-only) across
/// parallel chunks.
#[derive(Debug)]
pub(crate) struct SweepPlan {
    /// Per-relation end-sorted views: `(end, index into the start-sorted
    /// list)`, sorted by `(end, index)`. Empty for the level-0 relation.
    ends: Vec<Vec<(Time, u32)>>,
    pair: Option<PairSweep>,
}

/// The specialized two-relation active-set sweep.
#[derive(Debug)]
struct PairSweep {
    outer_rel: usize,
    inner_rel: usize,
    /// `false` → `overlaps` shape (inner must outlive the outer: retire
    /// `e2 <= e1`, ends ascending); `true` → `contains` shape (inner must
    /// end inside the outer: retire `e2 >= e1`, ends descending).
    contains: bool,
    /// Outer list positions in processing order: ascending `(end, idx)`
    /// for `overlaps`, descending for `contains`.
    outer_order: Vec<u32>,
    /// Inner list positions sorted by ascending `(end, idx)` — the
    /// retirement schedule.
    inner_ends: Vec<(Time, u32)>,
}

fn end_view(list: &[(Interval, TupleId)]) -> Vec<(Time, u32)> {
    let mut v: Vec<(Time, u32)> = list
        .iter()
        .enumerate()
        .map(|(i, (iv, _))| (iv.end(), i as u32))
        .collect();
    v.sort_unstable();
    v
}

impl SweepPlan {
    pub(crate) fn new(q: &JoinQuery, cands: &Candidates, compiled: &Compiled) -> SweepPlan {
        // Pair fast path: two relations, one condition, oriented to an
        // `overlaps`/`contains` shape (binding_order places the provably
        // earlier-starting relation first, so the level-1 predicate is in
        // left-operand form for both families).
        if compiled.order.len() == 2 && q.conditions().len() == 1 {
            if let [(other, pred)] = compiled.checks[1][..] {
                if matches!(pred, AllenPredicate::Overlaps | AllenPredicate::Contains) {
                    let outer_rel = other;
                    let inner_rel = compiled.order[1];
                    let contains = pred == AllenPredicate::Contains;
                    let mut outer_order: Vec<u32> = {
                        let ends = end_view(cands.list(outer_rel));
                        ends.into_iter().map(|(_, i)| i).collect()
                    };
                    if contains {
                        outer_order.reverse();
                    }
                    return SweepPlan {
                        ends: Vec::new(),
                        pair: Some(PairSweep {
                            outer_rel,
                            inner_rel,
                            contains,
                            outer_order,
                            inner_ends: end_view(cands.list(inner_rel)),
                        }),
                    };
                }
            }
        }
        let m = q.num_relations() as usize;
        let ends = (0..m)
            .map(|r| {
                if r == compiled.order[0] {
                    Vec::new()
                } else {
                    end_view(cands.list(r))
                }
            })
            .collect();
        SweepPlan { ends, pair: None }
    }

    /// Level-0 iteration length (chunkable outer positions).
    pub(crate) fn outer_len(&self, cands: &Candidates, compiled: &Compiled) -> usize {
        match &self.pair {
            Some(p) => p.outer_order.len(),
            None => cands.len(compiled.order[0]),
        }
    }

    /// Runs the sweep over `outer` positions of the plan's outer order.
    pub(crate) fn run(
        &self,
        cands: &Candidates,
        compiled: &Compiled,
        outer: Range<usize>,
        emit: &mut Emit<'_>,
        work: &mut u64,
    ) {
        match &self.pair {
            Some(p) => p.run(cands, outer, emit, work),
            None => self.run_multi(cands, compiled, outer, emit, work),
        }
    }

    fn run_multi(
        &self,
        cands: &Candidates,
        compiled: &Compiled,
        outer: Range<usize>,
        emit: &mut Emit<'_>,
        work: &mut u64,
    ) {
        let rel0 = compiled.order[0];
        let list0 = cands.list(rel0);
        with_scratch(|s| {
            let assignment = s.reset_assignment(compiled.order.len());
            *work += outer.len() as u64;
            for &(iv, tid) in &list0[outer] {
                assignment[rel0] = (iv, tid);
                self.descend(cands, compiled, 1, assignment, emit, work);
            }
        });
    }

    fn descend(
        &self,
        cands: &Candidates,
        compiled: &Compiled,
        level: usize,
        assignment: &mut Vec<(Interval, TupleId)>,
        emit: &mut Emit<'_>,
        work: &mut u64,
    ) {
        if level == compiled.order.len() {
            emit(assignment);
            return;
        }
        let rel = compiled.order[level];
        let mut rp = RangePair::full();
        for &(other, pred) in &compiled.checks[level] {
            rp.intersect(&range_pair(pred, assignment[other].0));
        }
        let list = cands.list(rel);
        let ends = &self.ends[rel];
        let (sfrom, sto) = window(list, rp.start.0, rp.start.1);
        let (efrom, eto) = window_ends(ends, rp.end.0, rp.end.1);
        // Scan the narrower window, filter by the other range — exact
        // either way, no `holds` re-check.
        if eto - efrom < sto - sfrom {
            *work += (eto - efrom) as u64;
            for &(_, idx) in &ends[efrom..eto] {
                let (iv, tid) = list[idx as usize];
                if bounds_contain(rp.start, iv.start()) {
                    assignment[rel] = (iv, tid);
                    self.descend(cands, compiled, level + 1, assignment, emit, work);
                }
            }
        } else {
            *work += (sto - sfrom) as u64;
            for &(iv, tid) in &list[sfrom..sto] {
                if bounds_contain(rp.end, iv.end()) {
                    assignment[rel] = (iv, tid);
                    self.descend(cands, compiled, level + 1, assignment, emit, work);
                }
            }
        }
    }
}

/// First alive position `>= i` in the retirement array (path-halving find;
/// `next[i] == i` means alive, the last slot is a sentinel).
#[inline]
fn find(next: &mut [u32], mut i: usize) -> usize {
    while next[i] as usize != i {
        let p = next[i] as usize;
        next[i] = next[p];
        i = next[i] as usize;
    }
    i
}

impl PairSweep {
    fn run(&self, cands: &Candidates, outer: Range<usize>, emit: &mut Emit<'_>, work: &mut u64) {
        let outer_list = cands.list(self.outer_rel);
        let inner_list = cands.list(self.inner_rel);
        let n = inner_list.len();
        with_scratch(|s| {
            s.reset_assignment(2);
            let super::scratch::Scratch {
                assignment, next, ..
            } = s;
            // Alive structure over the start-sorted inner list. Retirement
            // is monotone along the outer order, so a chunk starting
            // mid-order reaches the identical alive state by fast-forwarding
            // its own retirement pointer — no cross-chunk dependency.
            next.clear();
            next.extend(0..=n as u32);
            let mut retire = if self.contains { n } else { 0 };
            for &oi in &self.outer_order[outer] {
                let (o_iv, o_tid) = outer_list[oi as usize];
                let (s1, e1) = (o_iv.start(), o_iv.end());
                *work += 1;
                assignment[self.outer_rel] = (o_iv, o_tid);
                if self.contains {
                    // Alive ⇔ e2 < e1 (outer ends descending ⇒ retire from
                    // the top of the end order). Every alive inner with
                    // s2 > s1 is a match: s2 <= e2 < e1 holds automatically.
                    while retire > 0 && self.inner_ends[retire - 1].0 >= e1 {
                        retire -= 1;
                        let victim = self.inner_ends[retire].1 as usize;
                        next[victim] = victim as u32 + 1;
                    }
                    let from = inner_list.partition_point(|(iv, _)| iv.start() <= s1);
                    let mut j = find(next, from);
                    while j < n {
                        *work += 1;
                        assignment[self.inner_rel] = inner_list[j];
                        emit(assignment);
                        j = find(next, j + 1);
                    }
                } else {
                    // Alive ⇔ e2 > e1 (outer ends ascending ⇒ retire from
                    // the bottom). Every alive inner with s2 ∈ (s1, e1) is
                    // a match.
                    while retire < n && self.inner_ends[retire].0 <= e1 {
                        let victim = self.inner_ends[retire].1 as usize;
                        next[victim] = victim as u32 + 1;
                        retire += 1;
                    }
                    let from = inner_list.partition_point(|(iv, _)| iv.start() <= s1);
                    let mut j = find(next, from);
                    while j < n && inner_list[j].0.start() < e1 {
                        *work += 1;
                        assignment[self.inner_rel] = inner_list[j];
                        emit(assignment);
                        j = find(next, j + 1);
                    }
                }
            }
        });
    }
}
