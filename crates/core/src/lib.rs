//! The paper's contribution: multi-way interval join algorithms on
//! MapReduce.
//!
//! | Algorithm | Query class | Cycles | Paper |
//! |-----------|-------------|--------|-------|
//! | [`two_way`] per-predicate joins | any 2-way | 1 | Section 4 |
//! | [`cascade::TwoWayCascade`] | any | 1 per condition | Section 6 (baseline) |
//! | [`all_replicate::AllReplicate`] | colocation/sequence | 1 | Sections 6–7 (baseline) |
//! | [`rccis::Rccis`] | colocation | 2 | Section 6.1 |
//! | [`all_matrix::AllMatrix`] | sequence | 1 | Section 7.1 |
//! | [`hybrid::fcts::Fcts`] / [`hybrid::fstc::Fstc`] | hybrid | many | Section 8 (baselines) |
//! | [`hybrid::all_seq_matrix::AllSeqMatrix`] | hybrid | 2 | Section 8.1 |
//! | [`hybrid::pasm::Pasm`] | hybrid | 3 | Section 8.2 |
//! | [`gen_matrix::GenMatrix`] | general (multi-attribute) | 2 | Section 9.1 |
//!
//! All algorithms implement the [`Algorithm`] trait and are verified against
//! the single-node [`oracle`].

pub mod algorithm;
pub mod all_matrix;
pub mod all_replicate;
pub mod cascade;
pub mod estimate;
pub mod executor;
pub mod gen_matrix;
pub mod hybrid;
pub mod input;
pub mod kernel;
pub mod one_bucket;
pub mod oracle;
pub mod output;
pub mod planner;
pub mod rccis;
pub mod records;
pub mod two_way;

pub use algorithm::{Algorithm, PartitionStrategy, RunArtifacts};
pub use input::JoinInput;
pub use output::{JoinOutput, OutputMode, OutputTuple};
pub use planner::{plan, PlanConfig};
