//! 1-Bucket-Theta (Okcan & Riedewald, SIGMOD 2011) — the related work the
//! paper's All-Matrix extends (Section 7.2: "The idea of theta-join output
//! space as a cross-product of relations was first used in Okcan et al.").
//!
//! The 2-way join's output space is the |R1| × |R2| cross-product matrix,
//! tiled into `rows × cols` cells. Each left tuple is assigned a *random*
//! row and sent to every cell of that row; each right tuple a random column
//! and sent to every cell of that column — so every (left, right) pair
//! meets in exactly one cell. Unlike All-Matrix the assignment ignores the
//! data entirely: load balance is perfect by construction for any
//! distribution and any theta predicate, at the price of replicating every
//! left tuple `cols` times and every right tuple `rows` times, with no
//! inconsistent-cell pruning possible.
//!
//! Included as a baseline: the paper's contribution is precisely that for
//! *interval* predicates the start-point order makes the partitioned
//! matrix (fewer copies, pruned cells) possible.

use crate::algorithm::{empty_output, iv_records, require_single_attr, AlgoError, Algorithm};
use crate::executor::Candidates;
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{IvRec, OutRec};
use ij_mapreduce::metrics::names;
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::JoinQuery;

/// The 1-Bucket-Theta 2-way join.
#[derive(Debug, Clone)]
pub struct OneBucketTheta {
    /// Matrix rows (left-relation side).
    pub rows: usize,
    /// Matrix columns (right-relation side).
    pub cols: usize,
    /// Materialize or count.
    pub mode: OutputMode,
    /// Seed for the (deterministic) tuple-to-row/column assignment.
    pub seed: u64,
}

impl OneBucketTheta {
    /// A `rows × cols` bucket matrix, materializing output.
    pub fn new(rows: usize, cols: usize) -> Self {
        OneBucketTheta {
            rows,
            cols,
            mode: OutputMode::Materialize,
            seed: 0,
        }
    }
}

/// SplitMix64 — a tiny, high-quality deterministic mixer; the "random"
/// row/column assignment must be reproducible across mapper threads.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Algorithm for OneBucketTheta {
    fn name(&self) -> &'static str {
        "1-Bucket-Theta"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        if query.num_relations() != 2 {
            return Err(AlgoError::Unsupported {
                algorithm: self.name(),
                reason: "1-Bucket-Theta is a 2-way join".into(),
            });
        }
        if self.rows == 0 || self.cols == 0 {
            return Err(AlgoError::BadConfig("rows and cols must be >= 1".into()));
        }
        if query.start_order().contradictory() {
            return Ok(empty_output(self.mode));
        }
        let (rows, cols, seed) = (self.rows as u64, self.cols as u64, self.seed);
        let mode = self.mode;
        let q = query.clone();
        let out = engine.run_job(
            "one-bucket-theta",
            &iv_records(input),
            move |rec: &IvRec, em: &mut Emitter<IvRec>| {
                let h = mix(seed, ((rec.rel.0 as u64) << 32) | rec.tid as u64);
                if rec.rel.idx() == 0 {
                    let row = h % rows;
                    for col in 0..cols {
                        em.emit(row * cols + col, *rec);
                    }
                    em.inc(names::ONEBUCKET_ROW_COPIES, cols);
                } else {
                    let col = h % cols;
                    for row in 0..rows {
                        em.emit(row * cols + col, *rec);
                    }
                    em.inc(names::ONEBUCKET_COL_COPIES, rows);
                }
            },
            move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
                let mut cands = Candidates::new(2);
                for v in values.by_ref() {
                    cands.push(v.rel.idx(), v.iv, v.tid);
                }
                cands.finish();
                let mut count = 0u64;
                let rep = kernel::reduce_join(
                    ctx,
                    &q,
                    &cands,
                    |_| true,
                    |a| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                        }
                    },
                );
                ctx.inc(names::JOIN_CANDIDATES, rep.work);
                ctx.inc(names::JOIN_EMITTED, count);
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;
        let mut chain = JobChain::new();
        chain.push(out.metrics);
        let mut result = JoinOutput::from_records(self.mode, out.outputs, chain);
        result.stats.consistent_cells = Some((rows * cols, rows * cols));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_matrix::AllMatrix;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::{self, *};
    use ij_interval::{Interval, Relation};
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                Interval::new(s, s + rng.gen_range(0..=max_len)).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check(pred: AllenPredicate, seed: u64) {
        let q = JoinQuery::chain(&[pred]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 100, 300, 40),
                random_rel(&mut rng, 100, 300, 40),
            ],
        )
        .unwrap();
        let got = OneBucketTheta::new(3, 4)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input), "{pred}");
    }

    #[test]
    fn matches_oracle_on_every_predicate() {
        for (i, pred) in AllenPredicate::ALL.into_iter().enumerate() {
            check(pred, 700 + i as u64);
        }
    }

    #[test]
    fn load_is_balanced_even_under_extreme_skew() {
        // Every interval identical: start-partitioned schemes collapse onto
        // one reducer; the random bucket matrix stays flat.
        let q = JoinQuery::chain(&[Before]).unwrap();
        let left = Relation::from_intervals("L", vec![Interval::new(0, 1).unwrap(); 400]);
        let right = Relation::from_intervals("R", vec![Interval::new(5, 6).unwrap(); 400]);
        let input = JoinInput::bind_owned(&q, vec![left, right]).unwrap();
        let obt = OneBucketTheta::new(4, 4)
            .run(&q, &input, &engine())
            .unwrap();
        let obt_skew = obt.chain.cycles[0].skew();
        assert!(obt_skew < 1.3, "skew {obt_skew}");
        // All-Matrix under the same degenerate data concentrates both
        // relations onto the coordinate-0 cells and skews accordingly.
        let am = AllMatrix::new(4).run(&q, &input, &engine()).unwrap();
        let am_skew = am.chain.cycles[0].skew();
        assert!(
            am_skew > obt_skew + 0.2,
            "All-Matrix skew {am_skew} should exceed bucket skew {obt_skew}"
        );
        assert_eq!(obt.count, am.count);
    }

    #[test]
    fn replicates_more_than_all_matrix_on_uniform_data() {
        // The trade-off the paper's Section 7.2 describes: the bucket matrix
        // ships rows+cols copies per tuple; All-Matrix's start-partitioned
        // cells ship fewer on well-spread data.
        let q = JoinQuery::chain(&[Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 300, 1000, 20),
                random_rel(&mut rng, 300, 1000, 20),
            ],
        )
        .unwrap();
        let obt = OneBucketTheta::new(4, 4)
            .run(&q, &input, &engine())
            .unwrap();
        let am = AllMatrix::new(4).run(&q, &input, &engine()).unwrap();
        assert_eq!(obt.count, am.count);
        assert!(
            obt.chain.total_pairs() > am.chain.total_pairs(),
            "bucket {} vs matrix {}",
            obt.chain.total_pairs(),
            am.chain.total_pairs()
        );
    }

    #[test]
    fn counters_count_matrix_copies() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 50, 300, 40),
                random_rel(&mut rng, 70, 300, 40),
            ],
        )
        .unwrap();
        let out = OneBucketTheta::new(3, 4)
            .run(&q, &input, &engine())
            .unwrap();
        let c = out.chain.total_counters();
        // Every left tuple is copied to all 4 columns, every right tuple to
        // all 3 rows — exactly, by construction.
        assert_eq!(c.get("onebucket.row_copies"), 50 * 4);
        assert_eq!(c.get("onebucket.col_copies"), 70 * 3);
        assert_eq!(
            c.get("onebucket.row_copies") + c.get("onebucket.col_copies"),
            out.chain.total_pairs()
        );
        assert!(c.get("join.candidates") >= c.get("join.emitted"));
    }

    #[test]
    fn rejects_multiway() {
        let q = JoinQuery::chain(&[Before, Before]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rels = (0..3).map(|_| random_rel(&mut rng, 5, 50, 5)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        assert!(matches!(
            OneBucketTheta::new(2, 2).run(&q, &input, &engine()),
            Err(AlgoError::Unsupported { .. })
        ));
    }
}
