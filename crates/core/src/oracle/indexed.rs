//! An index-based 2-way join — the third independent oracle.
//!
//! Builds an [`IntervalIndex`] over the left relation and probes it with
//! each right tuple's *candidate region* (derived from the predicate), then
//! verifies the predicate exactly. Independent of both the backtracking
//! executor and the plane sweep, so the three implementations cross-check
//! one another.

use ij_interval::{AllenPredicate, Interval, IntervalIndex, Relation, Time, TupleId};

/// All pairs `(l, r)` with `left[l] pred right[r]`, sorted. Works for every
/// Allen predicate (sequence predicates probe an unbounded half-line,
/// expressed as a clamped huge interval).
pub fn indexed_join_2way(
    left: &Relation,
    right: &Relation,
    pred: AllenPredicate,
) -> Vec<(TupleId, TupleId)> {
    let idx = IntervalIndex::build(left.tuples().iter().map(|t| (t.interval(), t.id)));
    let span = left
        .attr_span(0)
        .unwrap_or_else(|| Interval::new_unchecked(0, 0));
    let mut out = Vec::new();
    for r in right.tuples() {
        let rv = r.interval();
        // A region guaranteed to contain every left interval that can
        // satisfy pred(left, rv): for colocation predicates the left
        // interval must share a point with rv; for sequence predicates it
        // lies entirely on one side.
        let probe = match pred {
            AllenPredicate::Before => clamp(Time::MIN, rv.start() - 1, span),
            AllenPredicate::After => clamp(rv.end() + 1, Time::MAX, span),
            _ => Some(rv),
        };
        if let Some(probe) = probe {
            idx.for_each_intersecting(probe, |liv, &lid| {
                if pred.holds(liv, rv) {
                    out.push((lid, r.id));
                }
            });
            // Sequence predicates don't require intersection with the probe
            // region in the index sense — Before needs the whole left
            // interval before rv, which intersecting the clamped half-line
            // guarantees for the *start*; the exact `holds` check settles
            // the rest. (Colocation predicates imply intersection with rv,
            // so probing rv is complete.)
        }
    }
    out.sort_unstable();
    out
}

/// Clamps an unbounded half-line to the data span (intersection queries
/// need finite intervals); returns `None` when the half-line misses the
/// span entirely.
fn clamp(lo: Time, hi: Time, span: Interval) -> Option<Interval> {
    let lo = lo.max(span.start());
    let hi = hi.min(span.end());
    (lo <= hi).then(|| Interval::new_unchecked(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::sweep_join_2way;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                Interval::new(s, s + rng.gen_range(0..=max_len)).unwrap()
            }),
        )
    }

    fn brute(left: &Relation, right: &Relation, pred: AllenPredicate) -> Vec<(TupleId, TupleId)> {
        let mut out = Vec::new();
        for l in left.tuples() {
            for r in right.tuples() {
                if pred.holds(l.interval(), r.interval()) {
                    out.push((l.id, r.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_brute_force_on_every_predicate() {
        let mut rng = StdRng::seed_from_u64(13);
        for pred in AllenPredicate::ALL {
            for _ in 0..4 {
                let l = random_rel(&mut rng, 80, 200, 30);
                let r = random_rel(&mut rng, 80, 200, 30);
                assert_eq!(
                    indexed_join_2way(&l, &r, pred),
                    brute(&l, &r, pred),
                    "{pred}"
                );
            }
        }
    }

    #[test]
    fn three_oracles_agree_on_colocation() {
        // Executor-backed oracle vs plane sweep vs index: all three
        // independent implementations must produce the same pairs.
        let mut rng = StdRng::seed_from_u64(21);
        for pred in AllenPredicate::ALL {
            if pred.is_sequence() {
                continue; // the sweep covers colocation only
            }
            let l = random_rel(&mut rng, 120, 300, 50);
            let r = random_rel(&mut rng, 120, 300, 50);
            let sweep = sweep_join_2way(&l, &r, pred);
            let indexed = indexed_join_2way(&l, &r, pred);
            assert_eq!(sweep, indexed, "{pred}");
        }
    }

    #[test]
    fn empty_relations() {
        let e = Relation::new("E", 1);
        let r = Relation::from_intervals("R", vec![Interval::new(0, 5).unwrap()]);
        assert!(indexed_join_2way(&e, &r, AllenPredicate::Overlaps).is_empty());
        assert!(indexed_join_2way(&r, &e, AllenPredicate::Overlaps).is_empty());
    }

    #[test]
    fn sequence_half_lines_clamped_correctly() {
        let l = Relation::from_intervals(
            "L",
            vec![Interval::new(0, 2).unwrap(), Interval::new(10, 12).unwrap()],
        );
        let r = Relation::from_intervals("R", vec![Interval::new(5, 6).unwrap()]);
        assert_eq!(
            indexed_join_2way(&l, &r, AllenPredicate::Before),
            vec![(0, 0)]
        );
        assert_eq!(
            indexed_join_2way(&l, &r, AllenPredicate::After),
            vec![(1, 0)]
        );
    }
}
