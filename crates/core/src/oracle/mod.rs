//! Single-node reference implementations.
//!
//! The oracle computes the exact join output without MapReduce; every
//! distributed algorithm is tested against it. Two engines:
//!
//! * [`nested_loop`] — the generic oracle for any query class;
//! * [`plane_sweep`] — an independent sort-based implementation for 2-way
//!   colocation joins, used to cross-check the oracle itself;
//! * [`indexed`] — a third independent 2-way implementation on top of
//!   [`ij_interval::IntervalIndex`].

pub mod indexed;
pub mod nested_loop;
pub mod plane_sweep;

pub use indexed::indexed_join_2way;
pub use nested_loop::oracle_join;
pub use plane_sweep::sweep_join_2way;
