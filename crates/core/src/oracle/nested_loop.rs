//! The generic single-node oracle.

use crate::executor::{join_single_attr, join_tuples, Candidates};
use crate::input::JoinInput;
use crate::output::OutputTuple;
use ij_interval::TupleId;
use ij_query::{JoinQuery, QueryClass};

/// Computes the exact join output on a single node, sorted canonically.
///
/// Uses the windowed single-attribute executor when possible and the
/// general tuple executor for multi-attribute queries. Despite the module
/// name this is not a naive quadratic loop — it shares the backtracking
/// engine with the reducers, but over the *whole* input and with no
/// ownership filter, which makes it an independent end-to-end check of the
/// distributed routing (routing bugs cannot hide in a shared reducer step:
/// they manifest as missing or duplicated tuples).
pub fn oracle_join(q: &JoinQuery, input: &JoinInput) -> Vec<OutputTuple> {
    let mut out: Vec<OutputTuple> = Vec::new();
    if q.class() == QueryClass::General {
        let lists: Vec<Vec<(TupleId, Vec<ij_interval::Interval>)>> = input
            .relations()
            .iter()
            .map(|r| r.tuples().iter().map(|t| (t.id, t.attrs.clone())).collect())
            .collect();
        join_tuples(
            q,
            &lists,
            |_| true,
            |a| {
                out.push(a.iter().map(|(tid, _)| *tid).collect());
            },
        );
    } else {
        let m = q.num_relations() as usize;
        let mut cands = Candidates::new(m);
        for (r, rel) in input.relations().iter().enumerate() {
            for t in rel.tuples() {
                cands.push(r, t.interval(), t.id);
            }
        }
        cands.finish();
        join_single_attr(
            q,
            &cands,
            |_| true,
            |a| {
                out.push(a.iter().map(|(_, tid)| *tid).collect());
            },
        );
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;
    use ij_interval::{Interval, Relation};

    fn rel(ivs: &[(i64, i64)]) -> Relation {
        Relation::from_intervals("R", ivs.iter().map(|&(s, e)| Interval::new(s, e).unwrap()))
    }

    #[test]
    fn two_way_overlap() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                rel(&[(0, 10), (20, 25)]),
                rel(&[(5, 15), (22, 30), (40, 50)]),
            ],
        )
        .unwrap();
        assert_eq!(oracle_join(&q, &input), vec![vec![0, 0], vec![1, 1]]);
    }

    #[test]
    fn empty_when_no_matches() {
        let q = JoinQuery::chain(&[Before]).unwrap();
        let input = JoinInput::bind_owned(&q, vec![rel(&[(10, 20)]), rel(&[(0, 5)])]).unwrap();
        assert!(oracle_join(&q, &input).is_empty());
    }

    #[test]
    fn intro_contains_query() {
        // The introduction's pollution query: u2 and u3 contained in u1.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Contains, 1),
                ij_query::Condition::whole(0, Contains, 2),
            ],
        )
        .unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                rel(&[(0, 100), (200, 210)]),
                rel(&[(10, 20), (205, 206)]),
                rel(&[(50, 60)]),
            ],
        )
        .unwrap();
        assert_eq!(oracle_join(&q, &input), vec![vec![0, 0, 0]]);
    }

    #[test]
    fn self_join_star() {
        // R overlaps R and R overlaps R (Table 2's star query) via three
        // logical bindings of the same relation.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(1, Overlaps, 2),
            ],
        )
        .unwrap();
        let data = std::sync::Arc::new(rel(&[(0, 10), (5, 15), (12, 20)]));
        let input = JoinInput::bind_self_join(&q, data).unwrap();
        let out = oracle_join(&q, &input);
        // 0 ov 1, 1 ov 2 -> (0,1,2) only.
        assert_eq!(out, vec![vec![0, 1, 2]]);
    }
}
