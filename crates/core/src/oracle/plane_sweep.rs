//! A plane-sweep 2-way colocation join — an independent cross-check.
//!
//! Classic interval-join sweep: sort both sides by start point and, for
//! each right-side interval, scan the left-side window of starts `<=` its
//! end, testing the predicate. Implemented without the backtracking
//! executor so the two oracles fail independently.

use ij_interval::{AllenPredicate, Relation, TupleId};

/// All pairs `(l, r)` with `left[l] pred right[r]`, for a *colocation*
/// predicate, sorted.
///
/// # Panics
/// Panics if `pred` is a sequence predicate (use a band join for those) or
/// if a relation is not single-attribute.
pub fn sweep_join_2way(
    left: &Relation,
    right: &Relation,
    pred: AllenPredicate,
) -> Vec<(TupleId, TupleId)> {
    assert!(
        pred.is_colocation(),
        "plane sweep covers colocation predicates; got {pred}"
    );
    // Sort ids by start point.
    let mut ls: Vec<TupleId> = (0..left.len() as TupleId).collect();
    ls.sort_unstable_by_key(|&t| left.tuple(t).interval().start());
    let mut rs: Vec<TupleId> = (0..right.len() as TupleId).collect();
    rs.sort_unstable_by_key(|&t| right.tuple(t).interval().start());

    let mut out = Vec::new();
    // Colocation means the intervals share a point: for each left interval
    // u, matching right intervals start at or before u.end and end at or
    // after u.start. Sweep rights by start; maintain a window of candidate
    // lefts whose [start, end] can still intersect.
    let mut li = 0usize;
    let mut active: Vec<TupleId> = Vec::new();
    for &r in &rs {
        let rv = right.tuple(r).interval();
        // Admit lefts starting at or before rv.end.
        while li < ls.len() && left.tuple(ls[li]).interval().start() <= rv.end() {
            active.push(ls[li]);
            li += 1;
        }
        // Retire lefts ending before rv.start cannot match this or any later
        // right (rights are start-sorted), so drop them.
        active.retain(|&l| left.tuple(l).interval().end() >= rv.start());
        for &l in &active {
            if pred.holds(left.tuple(l).interval(), rv) {
                out.push((l, r));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Interval;

    fn rel(ivs: &[(i64, i64)]) -> Relation {
        Relation::from_intervals("R", ivs.iter().map(|&(s, e)| Interval::new(s, e).unwrap()))
    }

    fn brute(left: &Relation, right: &Relation, pred: AllenPredicate) -> Vec<(TupleId, TupleId)> {
        let mut out = Vec::new();
        for l in left.tuples() {
            for r in right.tuples() {
                if pred.holds(l.interval(), r.interval()) {
                    out.push((l.id, r.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_brute_force_for_every_colocation_predicate() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let gen_rel = |rng: &mut StdRng| {
            let ivs: Vec<(i64, i64)> = (0..60)
                .map(|_| {
                    let s = rng.gen_range(0..100);
                    (s, s + rng.gen_range(0..20))
                })
                .collect();
            rel(&ivs)
        };
        for pred in AllenPredicate::ALL {
            if pred.is_sequence() {
                continue;
            }
            for _ in 0..5 {
                let l = gen_rel(&mut rng);
                let r = gen_rel(&mut rng);
                assert_eq!(
                    sweep_join_2way(&l, &r, pred),
                    brute(&l, &r, pred),
                    "predicate {pred}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "colocation")]
    fn rejects_sequence_predicates() {
        let r = rel(&[(0, 1)]);
        sweep_join_2way(&r, &r, Before);
    }

    #[test]
    fn simple_overlap() {
        let l = rel(&[(0, 10), (50, 60)]);
        let r = rel(&[(5, 20)]);
        assert_eq!(sweep_join_2way(&l, &r, Overlaps), vec![(0, 0)]);
    }
}
