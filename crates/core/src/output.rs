//! Join outputs and run statistics.

use crate::records::OutRec;
use ij_interval::TupleId;
use ij_mapreduce::JobChain;
use serde::{Deserialize, Serialize};

/// One output tuple: the contributing tuple id of every logical relation,
/// indexed by relation (`tuple[r]` comes from relation `r`).
pub type OutputTuple = Vec<TupleId>;

/// Whether reducers materialize output tuples or only count them.
///
/// A three-way interval join's output can be orders of magnitude larger
/// than its input (Table 1's workloads produce hundreds of millions of
/// tuples at paper scale); the benchmark harness runs in `Count` mode while
/// tests run in `Materialize` mode and compare against the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputMode {
    /// Emit every output tuple.
    Materialize,
    /// Emit only per-reducer counts.
    Count,
}

/// Extra per-run statistics that the paper's tables report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Intervals selected for replication (Table 1, "# Intervals
    /// Replicated"). For All-Rep this counts every interval of every
    /// replicated relation; for RCCIS only the flagged ones.
    pub replicated_intervals: Option<u64>,
    /// Consistent reducers used vs the full matrix size (Sections 7–9,
    /// e.g. 55-ish of 216 for Q2 with o=6).
    pub consistent_cells: Option<(u64, u64)>,
    /// Fraction of intervals pruned by PASM, per relation (Table 3's
    /// "% intervals pruned in R1").
    pub pruned_fraction: Vec<(String, f64)>,
}

/// The result of running a join algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinOutput {
    /// The mode the run used.
    pub mode: OutputMode,
    /// Materialized tuples (empty in `Count` mode), in no particular order.
    pub tuples: Vec<OutputTuple>,
    /// Total output tuples (equals `tuples.len()` when materializing).
    pub count: u64,
    /// Per-cycle MapReduce metrics.
    pub chain: JobChain,
    /// Table-level statistics.
    pub stats: RunStats,
}

impl JoinOutput {
    /// Creates an output from reducer [`OutRec`]s.
    pub fn from_records(mode: OutputMode, records: Vec<OutRec>, chain: JobChain) -> Self {
        let mut tuples = Vec::new();
        let mut count = 0u64;
        for r in records {
            match r {
                OutRec::Tuple(ids) => {
                    count += 1;
                    tuples.push(ids);
                }
                OutRec::Count(n) => count += n,
            }
        }
        JoinOutput {
            mode,
            tuples,
            count,
            chain,
            stats: RunStats::default(),
        }
    }

    /// The tuples in canonical (sorted) order — for comparisons in tests.
    pub fn sorted_tuples(&self) -> Vec<OutputTuple> {
        let mut t = self.tuples.clone();
        t.sort_unstable();
        t
    }

    /// Asserts there are no duplicate output tuples and returns the sorted
    /// list. Panics with a descriptive message otherwise (used by tests —
    /// every algorithm must compute each output tuple exactly once).
    pub fn assert_no_duplicates(&self) -> Vec<OutputTuple> {
        let t = self.sorted_tuples();
        for w in t.windows(2) {
            assert_ne!(w[0], w[1], "duplicate output tuple {:?}", w[0]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_records_mixes_counts_and_tuples() {
        let out = JoinOutput::from_records(
            OutputMode::Materialize,
            vec![
                OutRec::Tuple(vec![1, 2]),
                OutRec::Count(5),
                OutRec::Tuple(vec![0, 0]),
            ],
            JobChain::new(),
        );
        assert_eq!(out.count, 7);
        assert_eq!(out.tuples.len(), 2);
        assert_eq!(out.sorted_tuples(), vec![vec![0, 0], vec![1, 2]]);
    }

    #[test]
    fn no_duplicates_passes_on_unique() {
        let out = JoinOutput::from_records(
            OutputMode::Materialize,
            vec![OutRec::Tuple(vec![1]), OutRec::Tuple(vec![2])],
            JobChain::new(),
        );
        assert_eq!(out.assert_no_duplicates().len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate output tuple")]
    fn no_duplicates_panics_on_dupe() {
        let out = JoinOutput::from_records(
            OutputMode::Materialize,
            vec![OutRec::Tuple(vec![1]), OutRec::Tuple(vec![1])],
            JobChain::new(),
        );
        out.assert_no_duplicates();
    }
}
