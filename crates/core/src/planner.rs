//! Choosing an algorithm for a query — the paper's Sections 6–9 as a
//! dispatch table.
//!
//! | Query class | Chosen algorithm |
//! |-------------|------------------|
//! | any 2-way single-attribute | [`TwoWayJoin`] (Section 4) |
//! | Colocation | [`Rccis`] (Section 6) |
//! | Sequence | [`AllMatrix`] (Section 7) |
//! | Hybrid | [`AllSeqMatrix`] or [`Pasm`] (Section 8) |
//! | General | [`GenMatrix`] (Section 9) |

use crate::algorithm::Algorithm;
use crate::all_matrix::AllMatrix;
use crate::gen_matrix::GenMatrix;
use crate::hybrid::{AllSeqMatrix, Pasm};
use crate::output::OutputMode;
use crate::rccis::Rccis;
use crate::two_way::TwoWayJoin;
use ij_query::{JoinQuery, QueryClass};

/// Tuning knobs for the planner.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Partitions for 1-D algorithms (2-way, RCCIS).
    pub partitions: usize,
    /// Partitions per dimension for the matrix algorithms.
    pub per_dim: usize,
    /// Materialize or count.
    pub mode: OutputMode,
    /// Prefer PASM over All-Seq-Matrix for hybrid queries (pays one extra
    /// cycle to prune; wins when component joins are selective).
    pub prune_hybrid: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            partitions: 16,
            per_dim: 6,
            mode: OutputMode::Materialize,
            prune_hybrid: false,
        }
    }
}

/// Picks the paper's algorithm for the query's class.
pub fn plan(query: &JoinQuery, cfg: PlanConfig) -> Box<dyn Algorithm> {
    if query.num_relations() == 2 && query.class() != QueryClass::General {
        return Box::new(TwoWayJoin {
            partitions: cfg.partitions,
            mode: cfg.mode,
        });
    }
    match query.class() {
        QueryClass::Colocation => Box::new(Rccis {
            partitions: cfg.partitions,
            mode: cfg.mode,
            mark_options: Default::default(),
            partition_strategy: Default::default(),
        }),
        QueryClass::Sequence => Box::new(AllMatrix {
            per_dim: cfg.per_dim,
            mode: cfg.mode,
            prune_inconsistent: true,
        }),
        QueryClass::Hybrid => {
            if cfg.prune_hybrid {
                Box::new(Pasm {
                    per_dim: cfg.per_dim,
                    mode: cfg.mode,
                })
            } else {
                Box::new(AllSeqMatrix {
                    per_dim: cfg.per_dim,
                    mode: cfg.mode,
                })
            }
        }
        QueryClass::General => Box::new(GenMatrix {
            per_dim: cfg.per_dim,
            mode: cfg.mode,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;
    use ij_query::parse_query;

    fn plan_name(q: &str) -> &'static str {
        plan(&parse_query(q).unwrap(), PlanConfig::default()).name()
    }

    #[test]
    fn dispatch_matches_paper_sections() {
        assert_eq!(plan_name("R1 overlaps R2"), "2-way");
        assert_eq!(plan_name("R1 before R2"), "2-way");
        assert_eq!(plan_name("R1 overlaps R2 and R2 contains R3"), "RCCIS");
        assert_eq!(plan_name("R1 before R2 and R2 before R3"), "All-Matrix");
        assert_eq!(
            plan_name("R1 overlaps R2 and R2 before R3"),
            "All-Seq-Matrix"
        );
        assert_eq!(
            plan_name("R1.I overlaps R2.I and R1.A = R2.A"),
            "Gen-Matrix"
        );
    }

    #[test]
    fn prune_hybrid_selects_pasm() {
        let q = ij_query::JoinQuery::chain(&[Overlaps, Before]).unwrap();
        let cfg = PlanConfig {
            prune_hybrid: true,
            ..PlanConfig::default()
        };
        assert_eq!(plan(&q, cfg).name(), "PASM");
    }

    #[test]
    fn planned_algorithms_run() {
        use crate::input::JoinInput;
        use crate::oracle::oracle_join;
        use ij_interval::{Interval, Relation};
        use ij_mapreduce::{ClusterConfig, Engine};
        let engine = Engine::new(ClusterConfig::with_slots(4));
        for qs in [
            "R1 overlaps R2",
            "R1 overlaps R2 and R2 contains R3",
            "R1 before R2 and R2 before R3",
            "R1 overlaps R2 and R2 before R3",
        ] {
            let q = parse_query(qs).unwrap();
            let rels = (0..q.num_relations())
                .map(|r| {
                    Relation::from_intervals(
                        format!("R{r}"),
                        (0..30).map(|i| {
                            let s = (i * 37 + r as i64 * 11) % 200;
                            Interval::new(s, s + 25).unwrap()
                        }),
                    )
                })
                .collect();
            let input = JoinInput::bind_owned(&q, rels).unwrap();
            let alg = plan(&q, PlanConfig::default());
            let got = alg.run(&q, &input, &engine).unwrap().assert_no_duplicates();
            assert_eq!(got, oracle_join(&q, &input), "{qs}");
        }
    }
}
