//! The RCCIS replication-marking computation run by first-cycle reducers.
//!
//! Reducer `p` receives all intervals intersecting partition `p` (one split
//! copy each) and must find `uS_p`: the union of all interval-sets that
//! satisfy C1 (consistent) and C2 (cross `p`). It then flags the members of
//! `uS_p` that *start* in `p`.
//!
//! ## Enumeration strategy
//!
//! A crossing set never needs relations from two different *connected
//! pieces* of the query graph: if the set's relation-set is disconnected,
//! the crossing conditions factor per piece, so the union over connected
//! relation-subsets already yields `uS_p`. The enumeration therefore:
//!
//! 1. enumerates the connected relation-subsets of the query graph (for the
//!    paper's chain queries these are the `O(m²)` contiguous ranges);
//! 2. for each subset, backtracks over its relations in BFS order, using
//!    the same start-point windows as the join executor, checking pairwise
//!    consistency incrementally;
//! 3. at each complete assignment, checks the crossing conditions (B1/B2)
//!    and marks the assigned intervals that start in `p`.

use crate::executor::{tighten_lower, tighten_upper, window};
use ij_interval::{Interval, PartitionIndex, Partitioning, TupleId};
use ij_query::{crosses_partition, JoinQuery};
use std::ops::Bound;

/// Per-relation inputs for one marking reducer: intervals intersecting the
/// partition, each with its tuple id, sorted by start by [`mark`].
pub type PerRelation = Vec<Vec<(Interval, TupleId)>>;

/// Runs the marking for partition `p`: returns, per relation, a flag per
/// input interval (parallel to the *sorted* list also returned), plus the
/// work units expended. Only intervals whose start point lies in `p` can be
/// flagged.
pub struct Marking {
    /// Sorted candidate lists, per relation.
    pub sorted: PerRelation,
    /// `flags[r][i]` — whether `sorted[r][i]` is to be replicated.
    pub flags: Vec<Vec<bool>>,
    /// Candidates examined (reported to the cost model).
    pub work: u64,
}

/// Options for [`mark_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct MarkOptions {
    /// Enforce condition C2 (the set must *cross* the partition). Turning
    /// this off is the paper-motivated ablation: every interval belonging
    /// to any consistent set gets replicated, quantifying how much the
    /// crossing condition saves (DESIGN.md §8).
    pub enforce_crossing: bool,
}

impl Default for MarkOptions {
    fn default() -> Self {
        MarkOptions {
            enforce_crossing: true,
        }
    }
}

/// Computes the marking (see module docs).
pub fn mark(
    q: &JoinQuery,
    part: &Partitioning,
    p: PartitionIndex,
    per_rel: PerRelation,
) -> Marking {
    mark_with_options(q, part, p, per_rel, MarkOptions::default())
}

/// [`mark`] with explicit [`MarkOptions`].
pub fn mark_with_options(
    q: &JoinQuery,
    part: &Partitioning,
    p: PartitionIndex,
    mut per_rel: PerRelation,
    opts: MarkOptions,
) -> Marking {
    let m = q.num_relations() as usize;
    assert_eq!(per_rel.len(), m);
    assert!(m <= 16, "marking enumerates relation subsets; m <= 16");
    for l in &mut per_rel {
        l.sort_unstable_by_key(|(iv, tid)| (iv.start(), *tid));
    }
    let mut flags: Vec<Vec<bool>> = per_rel.iter().map(|l| vec![false; l.len()]).collect();
    let mut work = 0u64;

    let full_mask = (1u32 << m) - 1;
    for subset in connected_subsets(q) {
        if opts.enforce_crossing && subset == full_mask {
            // A set covering every relation is an output tuple, never a
            // crossing set (Section 6.1) — skip the whole enumeration.
            continue;
        }
        let order = bfs_order(q, subset);
        let constraints = if opts.enforce_crossing {
            boundary_constraints(q, subset)
        } else {
            vec![BoundaryNeed::default(); m]
        };
        let mut assign: Vec<Option<(Interval, usize)>> = vec![None; m];
        enumerate(
            q,
            part,
            p,
            &per_rel,
            &order,
            &constraints,
            opts.enforce_crossing,
            0,
            &mut assign,
            &mut flags,
            &mut work,
        );
    }

    Marking {
        sorted: per_rel,
        flags,
        work,
    }
}

/// All subsets of relations (as bitmasks) that are connected in the join
/// graph, in ascending mask order. Singletons are connected.
fn connected_subsets(q: &JoinQuery) -> Vec<u32> {
    let m = q.num_relations() as usize;
    let mut adj = vec![0u32; m];
    for c in q.conditions() {
        adj[c.left.rel.idx()] |= 1 << c.right.rel.idx();
        adj[c.right.rel.idx()] |= 1 << c.left.rel.idx();
    }
    (1u32..(1 << m))
        .filter(|&mask| {
            // Flood fill from the lowest set bit.
            let start = mask.trailing_zeros();
            let mut seen = 1u32 << start;
            loop {
                let mut grew = false;
                for (r, &nbrs) in adj.iter().enumerate() {
                    if seen & (1 << r) != 0 {
                        let add = nbrs & mask & !seen;
                        if add != 0 {
                            seen |= add;
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            seen == mask
        })
        .collect()
}

/// BFS order over the relations of `mask` (every later relation has a bound
/// neighbor within the subset, enabling window pruning).
fn bfs_order(q: &JoinQuery, mask: u32) -> Vec<usize> {
    let m = q.num_relations() as usize;
    let mut adj = vec![Vec::new(); m];
    for c in q.conditions() {
        adj[c.left.rel.idx()].push(c.right.rel.idx());
        adj[c.right.rel.idx()].push(c.left.rel.idx());
    }
    let mut order = Vec::new();
    let mut placed = 0u32;
    while (placed & mask) != mask {
        let next = (0..m)
            .filter(|&r| mask & (1 << r) != 0 && placed & (1 << r) == 0)
            .find(|&r| order.is_empty() || adj[r].iter().any(|&n| placed & (1 << n) != 0))
            .unwrap_or_else(|| {
                (0..m)
                    .find(|&r| mask & (1 << r) != 0 && placed & (1 << r) == 0)
                    .expect("unplaced relation exists")
            });
        placed |= 1 << next;
        order.push(next);
    }
    order
}

/// Per-relation boundary requirements of a subset (conditions B1/B2): for
/// every query edge with exactly one endpoint inside `mask`, the in-set
/// member must cross the right boundary if it is the lesser relation, the
/// left boundary otherwise. Knowing these *before* enumerating lets the
/// search reject candidates immediately instead of materializing every
/// consistent set and testing crossing at the leaf — this is what makes
/// the marking cheap relative to the join itself.
fn boundary_constraints(q: &JoinQuery, mask: u32) -> Vec<BoundaryNeed> {
    let m = q.num_relations() as usize;
    let mut needs = vec![BoundaryNeed::default(); m];
    for c in q.conditions() {
        let l_in = mask & (1 << c.left.rel.idx()) != 0;
        let r_in = mask & (1 << c.right.rel.idx()) != 0;
        let member = match (l_in, r_in) {
            (true, false) => c.left,
            (false, true) => c.right,
            _ => continue,
        };
        if c.lesser() == member {
            needs[member.rel.idx()].right = true;
        } else {
            needs[member.rel.idx()].left = true;
        }
    }
    needs
}

/// Whether a subset member must cross the partition's boundaries.
#[derive(Debug, Clone, Copy, Default)]
struct BoundaryNeed {
    left: bool,
    right: bool,
}

impl BoundaryNeed {
    fn satisfied(self, part: &Partitioning, p: PartitionIndex, iv: Interval) -> bool {
        (!self.left || part.crosses_left(iv, p)) && (!self.right || part.crosses_right(iv, p))
    }
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn enumerate(
    q: &JoinQuery,
    part: &Partitioning,
    p: PartitionIndex,
    per_rel: &PerRelation,
    order: &[usize],
    constraints: &[BoundaryNeed],
    enforce_crossing: bool,
    level: usize,
    assign: &mut Vec<Option<(Interval, usize)>>,
    flags: &mut [Vec<bool>],
    work: &mut u64,
) {
    if level == order.len() {
        // With crossing enforced, the boundary constraints were applied per
        // candidate and inputs intersect p by construction (split routing),
        // so the set crosses.
        debug_assert!(
            !enforce_crossing || {
                let ivs: Vec<Option<Interval>> =
                    assign.iter().map(|a| a.map(|(iv, _)| iv)).collect();
                crosses_partition(q, part, p, &ivs)
            }
        );
        for &r in order {
            let (iv, idx) = assign[r].expect("assigned");
            if part.index_of(iv.start()) == p {
                flags[r][idx] = true;
            }
        }
        return;
    }
    let rel = order[level];
    // Start-point window from bound neighbors.
    let mut lo = Bound::Unbounded;
    let mut hi = Bound::Unbounded;
    let mut neighbor_conds: Vec<&ij_query::Condition> = Vec::new();
    for c in q.conditions_of(ij_interval::RelId(rel as u16)) {
        let (other, pred_right) = if c.left.rel.idx() == rel {
            (c.right.rel.idx(), c.pred.inverse())
        } else {
            (c.left.rel.idx(), c.pred)
        };
        if let Some((other_iv, _)) = assign[other] {
            let (l, h) = pred_right.right_start_bounds(other_iv);
            lo = tighten_lower(lo, l);
            hi = tighten_upper(hi, h);
            neighbor_conds.push(c);
        }
    }
    let list = &per_rel[rel];
    let (from, to) = window(list, lo, hi);
    *work += (to - from) as u64;
    'cands: for (offset, &(iv, _tid)) in list[from..to].iter().enumerate() {
        if !constraints[rel].satisfied(part, p, iv) {
            continue;
        }
        for c in &neighbor_conds {
            let ok = if c.left.rel.idx() == rel {
                c.pred
                    .holds(iv, assign[c.right.rel.idx()].expect("bound").0)
            } else {
                c.pred.holds(assign[c.left.rel.idx()].expect("bound").0, iv)
            };
            if !ok {
                continue 'cands;
            }
        }
        assign[rel] = Some((iv, from + offset));
        enumerate(
            q,
            part,
            p,
            per_rel,
            order,
            constraints,
            enforce_crossing,
            level + 1,
            assign,
            flags,
            work,
        );
    }
    assign[rel] = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    #[test]
    fn connected_subsets_of_a_chain_are_ranges() {
        // Chain R1-R2-R3: connected subsets are the 6 contiguous ranges.
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let subs = connected_subsets(&q);
        assert_eq!(subs, vec![0b001, 0b010, 0b011, 0b100, 0b110, 0b111]);
    }

    #[test]
    fn connected_subsets_of_a_star() {
        // Star R1-R2, R1-R3: {R2,R3} alone is NOT connected.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        let subs = connected_subsets(&q);
        assert!(!subs.contains(&0b110));
        assert!(subs.contains(&0b111));
        assert_eq!(subs.len(), 6);
    }

    /// A hand-verified Q0 marking at partition p = [10, 20):
    ///
    /// * R1 `(12,15)`: in no consistent crossing set (does not cross right
    ///   alone, does not overlap the only R2 interval) → unflagged;
    /// * R1 `(14,23)`: crosses right alone (B1 for `R1 ov R2`) → flagged;
    /// * R2 `(16,29)`: `{u=(14,23), v}` is consistent, and v crossing right
    ///   satisfies B1 for `R2 contains R3` → flagged;
    /// * R3 `(17,25)`: `{u, v, w}` is consistent and w crossing right
    ///   satisfies B1 for `R3 ov R4` → flagged (note `{v, w}` alone does NOT
    ///   cross: B2 for `R1 ov R2` needs v to cross left, and it does not).
    #[test]
    fn hand_verified_q0_marking() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        let marking = mark(
            &q,
            &part,
            1,
            vec![
                vec![(iv(12, 15), 0), (iv(14, 23), 1)],
                vec![(iv(16, 29), 0)],
                vec![(iv(17, 25), 0)],
                vec![],
            ],
        );
        assert_eq!(marking.flags[0], vec![false, true]);
        assert_eq!(marking.flags[1], vec![true]);
        assert_eq!(marking.flags[2], vec![true]);
        assert!(marking.work > 0);
    }

    #[test]
    fn nothing_flagged_when_no_set_crosses() {
        // Everything comfortably inside the partition: no crossing sets.
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        let marking = mark(&q, &part, 0, vec![vec![(iv(1, 4), 0)], vec![(iv(2, 6), 0)]]);
        assert!(marking.flags.iter().flatten().all(|&f| !f));
    }

    #[test]
    fn singleton_set_can_cross() {
        // A lone R1 interval crossing right is a crossing set for
        // R1 overlaps R2 (B1 on the boundary edge).
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        let marking = mark(&q, &part, 0, vec![vec![(iv(3, 15), 0)], vec![]]);
        assert_eq!(marking.flags[0], vec![true]);
    }

    #[test]
    fn only_intervals_starting_in_partition_flagged() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        // Both cross p1's right boundary but u starts in p0.
        let marking = mark(
            &q,
            &part,
            1,
            vec![vec![(iv(5, 25), 0), (iv(12, 25), 1)], vec![]],
        );
        let flags: Vec<bool> = marking.flags[0].clone();
        // sorted order: (5,25) then (12,25); only the latter starts in p1.
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "m <= 16")]
    fn too_many_relations_rejected() {
        let preds = vec![Overlaps; 17];
        let q = JoinQuery::chain(&preds).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        mark(&q, &part, 0, vec![Vec::new(); 18]);
    }
}
