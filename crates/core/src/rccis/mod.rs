//! RCCIS — *Replicate Consistent And Crossing Interval Sets*
//! (paper Section 6.1).
//!
//! The colocation multi-way join algorithm. Two MR cycles:
//!
//! 1. **Marking** ([`marking`]): every relation is *split*; reducer `p_i`
//!    finds the interval-sets that are consistent (Section 5.2) and cross
//!    `p_i` (Section 5.3), and flags for replication the member intervals
//!    that *start* in `p_i`. The flagged stream — every interval exactly
//!    once, with its flag — is written to the DFS.
//! 2. **Join** ([`rounds`]): flagged intervals are *replicated*, the rest
//!    *projected*; each reducer joins what it received and emits the output
//!    tuples it owns (those whose maximal start point lies in its
//!    partition).

pub mod marking;
pub mod rounds;

pub use rounds::Rccis;
