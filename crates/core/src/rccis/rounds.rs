//! The two MR cycles of RCCIS.

use crate::algorithm::{
    empty_output, iv_records, require_single_attr, AlgoError, Algorithm, RunArtifacts,
};
use crate::executor::Candidates;
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{FlagRec, IvRec, OutRec};
use ij_interval::{ops, Interval, Partitioning, TupleId};
use ij_mapreduce::metrics::names;
use ij_mapreduce::{Dfs, Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::{JoinQuery, QueryClass};

/// RCCIS (Section 6.1) — the efficient multi-way colocation join.
#[derive(Debug, Clone)]
pub struct Rccis {
    /// Number of partition-intervals.
    pub partitions: usize,
    /// Materialize or count.
    pub mode: OutputMode,
    /// Marking options; `enforce_crossing: false` is the C2 ablation
    /// (replicate every interval in any consistent set — still correct,
    /// just more communication).
    pub mark_options: crate::rccis::marking::MarkOptions,
    /// Boundary placement (equi-width by default; equi-depth for skew).
    pub partition_strategy: crate::algorithm::PartitionStrategy,
}

impl Rccis {
    /// RCCIS over `partitions` partitions, materializing output.
    pub fn new(partitions: usize) -> Self {
        Rccis {
            partitions,
            mode: OutputMode::Materialize,
            mark_options: Default::default(),
            partition_strategy: Default::default(),
        }
    }
}

impl Algorithm for Rccis {
    fn name(&self) -> &'static str {
        "RCCIS"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        if query.class() == QueryClass::Sequence || query.class() == QueryClass::Hybrid {
            // Sequence predicates force replicating everything — "RCCIS
            // hence reduces to All-Rep" (Section 7). We reject instead of
            // silently degrading.
            return Err(AlgoError::Unsupported {
                algorithm: self.name(),
                reason: "sequence predicates present; use All-Matrix / All-Seq-Matrix".into(),
            });
        }
        if query.start_order().contradictory() {
            return Ok(empty_output(self.mode));
        }
        let part = RunArtifacts::partition_input(input, self.partitions, self.partition_strategy)?;
        let mut chain = JobChain::new();
        let dfs = Dfs::new();

        // ---- Cycle 1: split everything; mark intervals for replication ----
        let flags = run_marking_cycle(
            query,
            &part,
            &iv_records(input),
            engine,
            &mut chain,
            self.mark_options,
        )?;
        let replicated = flags.iter().filter(|f| f.replicate).count() as u64;
        dfs.write("rccis/flags", flags).expect("fresh dfs path");

        // ---- Cycle 2: replicate flagged / project rest; join; own-filter --
        let flags = dfs.read::<FlagRec>("rccis/flags").expect("just written");
        let records = run_join_cycle(query, &part, &flags, self.mode, engine, &mut chain)?;

        let mut out = JoinOutput::from_records(self.mode, records, chain);
        out.stats.replicated_intervals = Some(replicated);
        Ok(out)
    }
}

/// Cycle 1: split all relations; each reducer marks the intervals starting
/// in its partition that belong to a consistent crossing set. Returns every
/// interval exactly once, flagged.
pub(crate) fn run_marking_cycle(
    query: &JoinQuery,
    part: &Partitioning,
    records: &[IvRec],
    engine: &Engine,
    chain: &mut JobChain,
    opts: crate::rccis::marking::MarkOptions,
) -> Result<Vec<FlagRec>, AlgoError> {
    let m = query.num_relations() as usize;
    let q = query.clone();
    let partc = part.clone();
    let out = engine.run_job(
        "rccis-mark",
        records,
        {
            let partc = partc.clone();
            move |rec: &IvRec, em: &mut Emitter<IvRec>| {
                let before = em.emitted();
                for p in ops::split(rec.iv, &partc) {
                    em.emit(p as u64, *rec);
                }
                let copies = (em.emitted() - before) as u64;
                em.inc(names::RCCIS_SPLIT_PAIRS, copies);
                if copies > 1 {
                    // The interval crosses at least one partition boundary.
                    em.inc(names::RCCIS_CROSSING_INTERVALS, 1);
                }
            }
        },
        move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<FlagRec>| {
            let p = ctx.key as usize;
            let mut per_rel: Vec<Vec<(Interval, TupleId)>> = vec![Vec::new(); m];
            // Keep (rel -> tids) so flags can be matched back to records.
            for v in values.by_ref() {
                per_rel[v.rel.idx()].push((v.iv, v.tid));
            }
            let marking = crate::rccis::marking::mark_with_options(&q, &partc, p, per_rel, opts);
            ctx.add_work(marking.work);
            for (r, (list, flags)) in marking.sorted.iter().zip(&marking.flags).enumerate() {
                for (&(iv, tid), &replicate) in list.iter().zip(flags) {
                    // Each interval is written once: by its start partition.
                    if partc.index_of(iv.start()) == p {
                        if replicate {
                            ctx.inc(names::RCCIS_FLAGGED_INTERVALS, 1);
                        }
                        out.push(FlagRec {
                            rec: IvRec {
                                rel: ij_interval::RelId(r as u16),
                                tid,
                                iv,
                            },
                            replicate,
                        });
                    }
                }
            }
        },
    )?;
    chain.push(out.metrics);
    Ok(out.outputs)
}

/// Cycle 2: route by flag, join, and emit owned tuples (max start point in
/// the reducer's partition).
pub(crate) fn run_join_cycle(
    query: &JoinQuery,
    part: &Partitioning,
    flags: &[FlagRec],
    mode: OutputMode,
    engine: &Engine,
    chain: &mut JobChain,
) -> Result<Vec<OutRec>, AlgoError> {
    let m = query.num_relations() as usize;
    let q = query.clone();
    let partc = part.clone();
    let out = engine.run_job(
        "rccis-join",
        flags,
        {
            let partc = partc.clone();
            move |rec: &FlagRec, em: &mut Emitter<IvRec>| {
                let op = if rec.replicate {
                    ij_interval::MapOp::Replicate
                } else {
                    ij_interval::MapOp::Project
                };
                let before = em.emitted();
                for p in ops::apply(op, rec.rec.iv, &partc) {
                    em.emit(p as u64, rec.rec);
                }
                let copies = (em.emitted() - before) as u64;
                if rec.replicate {
                    em.inc(names::RCCIS_REPLICA_PAIRS, copies);
                } else {
                    em.inc(names::RCCIS_PROJECTED_PAIRS, copies);
                }
            }
        },
        move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
            let mut cands = Candidates::new(m);
            for v in values.by_ref() {
                cands.push(v.rel.idx(), v.iv, v.tid);
            }
            cands.finish();
            let own = ctx.key as usize;
            let partr = &partc;
            let mut count = 0u64;
            let rep = kernel::reduce_join(
                ctx,
                &q,
                &cands,
                |a: &[(Interval, TupleId)]| {
                    let max_start = a.iter().map(|(iv, _)| iv.start()).max().expect("nonempty");
                    partr.index_of(max_start) == own
                },
                |a| {
                    count += 1;
                    if mode == OutputMode::Materialize {
                        out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                    }
                },
            );
            ctx.inc(names::JOIN_CANDIDATES, rep.work);
            ctx.inc(names::JOIN_EMITTED, count);
            if mode == OutputMode::Count && count > 0 {
                out.push(OutRec::Count(count));
            }
        },
    )?;
    chain.push(out.metrics);
    Ok(out.outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_replicate::AllReplicate;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::{self, *};
    use ij_interval::Relation;
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn engine() -> Engine {
        Engine::new(ClusterConfig::with_slots(4))
    }

    fn check(preds: &[AllenPredicate], seed: u64, n: usize, span: i64, max_len: i64, k: usize) {
        let q = JoinQuery::chain(preds).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rels = (0..q.num_relations())
            .map(|_| random_rel(&mut rng, n, span, max_len))
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let got = Rccis::new(k)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input), "preds {preds:?} seed {seed}");
    }

    #[test]
    fn q1_overlap_chain_matches_oracle() {
        check(&[Overlaps, Overlaps], 1, 80, 400, 60, 8);
    }

    #[test]
    fn q0_mixed_colocation_chain_matches_oracle() {
        check(&[Overlaps, Contains, Overlaps], 2, 50, 400, 80, 8);
    }

    #[test]
    fn long_intervals_spanning_many_partitions() {
        // Intervals longer than several partitions stress the replication
        // chain (an output can span most of the time range).
        check(&[Overlaps, Contains], 3, 40, 200, 150, 10);
    }

    #[test]
    fn exotic_predicates_match_oracle() {
        check(&[Meets, Overlaps], 4, 60, 300, 40, 6);
        check(&[FinishedBy, Contains], 5, 60, 300, 40, 6);
        check(&[Starts, OverlappedBy], 6, 60, 300, 40, 6);
        check(&[Equals, Overlaps], 7, 80, 200, 30, 6);
    }

    #[test]
    fn star_queries_match_oracle() {
        // R1 ov R2, R1 contains R3 — the star shape exercises non-chain
        // connected subsets in the marking.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(0, Contains, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 60, 300, 60),
                random_rel(&mut rng, 60, 300, 60),
                random_rel(&mut rng, 60, 300, 60),
            ],
        )
        .unwrap();
        let got = Rccis::new(8)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn replicates_fewer_than_all_rep() {
        // The Table 1 claim: RCCIS replicates far fewer intervals.
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let rels = (0..3)
            .map(|_| random_rel(&mut rng, 300, 5000, 50))
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let rccis = Rccis::new(16).run(&q, &input, &engine()).unwrap();
        let allrep = AllReplicate::new(16).run(&q, &input, &engine()).unwrap();
        assert_eq!(rccis.assert_no_duplicates(), allrep.assert_no_duplicates());
        let r = rccis.stats.replicated_intervals.unwrap();
        let a = allrep.stats.replicated_intervals.unwrap();
        assert!(r * 4 < a, "RCCIS replicated {r}, All-Rep {a}");
        assert!(rccis.chain.total_pairs() < allrep.chain.total_pairs());
    }

    #[test]
    fn rejects_sequence_queries() {
        let q = JoinQuery::chain(&[Before]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(5, 6).unwrap()]),
            ],
        )
        .unwrap();
        assert!(matches!(
            Rccis::new(4).run(&q, &input, &engine()),
            Err(AlgoError::Unsupported { .. })
        ));
    }

    #[test]
    fn two_cycles_reported() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 30, 100, 20),
                random_rel(&mut rng, 30, 100, 20),
            ],
        )
        .unwrap();
        let out = Rccis::new(4).run(&q, &input, &engine()).unwrap();
        assert_eq!(out.chain.num_cycles(), 2);
        assert_eq!(out.chain.cycles[0].name, "rccis-mark");
        assert_eq!(out.chain.cycles[1].name, "rccis-join");
    }

    #[test]
    fn counters_surface_in_chain() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let rels = (0..3).map(|_| random_rel(&mut rng, 120, 800, 60)).collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let out = Rccis::new(8).run(&q, &input, &engine()).unwrap();
        let c = out.chain.total_counters();
        // Cycle 1 splits every record at least once.
        assert!(c.get("rccis.split_pairs") >= 360);
        assert!(c.get("rccis.crossing_intervals") > 0);
        // Cycle 2 routes the marking's verdicts; the flagged count matches
        // the replication stat the algorithm already reports.
        assert_eq!(
            c.get("rccis.flagged_intervals"),
            out.stats.replicated_intervals.unwrap()
        );
        assert!(c.get("rccis.projected_pairs") > 0);
        // The join examined at least as many candidates as it emitted.
        assert!(c.get("join.candidates") >= c.get("join.emitted"));
        assert!(c.get("join.emitted") > 0);
        // Per-cycle attribution: split counters live in cycle 1 only.
        assert_eq!(out.chain.cycles[1].counters.get("rccis.split_pairs"), 0);
    }

    #[test]
    fn self_join_star_matches_oracle() {
        // Table 2's query: R ov R and R ov R on one physical relation.
        let q = JoinQuery::new(
            3,
            vec![
                ij_query::Condition::whole(0, Overlaps, 1),
                ij_query::Condition::whole(1, Overlaps, 2),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data = std::sync::Arc::new(random_rel(&mut rng, 120, 600, 40));
        let input = JoinInput::bind_self_join(&q, data).unwrap();
        let got = Rccis::new(8)
            .run(&q, &input, &engine())
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }

    #[test]
    fn c2_ablation_correct_but_replicates_more() {
        // Without the crossing condition, every interval in any consistent
        // set is flagged: the join output is unchanged (replication is
        // always safe) but communication grows — quantifying what C2 saves.
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let rels = (0..3)
            .map(|_| random_rel(&mut rng, 150, 1500, 60))
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let with_c2 = Rccis::new(12).run(&q, &input, &engine()).unwrap();
        let without_c2 = Rccis {
            partitions: 12,
            mode: OutputMode::Materialize,
            mark_options: crate::rccis::marking::MarkOptions {
                enforce_crossing: false,
            },
            partition_strategy: Default::default(),
        }
        .run(&q, &input, &engine())
        .unwrap();
        assert_eq!(
            without_c2.assert_no_duplicates(),
            with_c2.assert_no_duplicates()
        );
        let r_with = with_c2.stats.replicated_intervals.unwrap();
        let r_without = without_c2.stats.replicated_intervals.unwrap();
        assert!(
            r_without > r_with * 3,
            "ablation should replicate much more: {r_without} vs {r_with}"
        );
        assert!(without_c2.chain.total_pairs() > with_c2.chain.total_pairs());
    }

    #[test]
    fn equi_depth_partitioning_correct_and_balanced_under_skew() {
        use crate::algorithm::PartitionStrategy;
        // Zipf-like skew: most intervals packed at the left of the range.
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(88);
        let rels = (0..3)
            .map(|_| {
                Relation::from_intervals(
                    "R",
                    (0..200).map(|_| {
                        let u: f64 = rng.gen();
                        let s = (u * u * u * 2000.0) as i64;
                        Interval::new(s, s + rng.gen_range(0..40)).unwrap()
                    }),
                )
            })
            .collect();
        let input = JoinInput::bind_owned(&q, rels).unwrap();
        let width = Rccis::new(10).run(&q, &input, &engine()).unwrap();
        let depth = Rccis {
            partitions: 10,
            mode: OutputMode::Materialize,
            mark_options: Default::default(),
            partition_strategy: PartitionStrategy::EquiDepth,
        }
        .run(&q, &input, &engine())
        .unwrap();
        // Same join either way.
        assert_eq!(depth.assert_no_duplicates(), width.assert_no_duplicates());
        // And meaningfully better balanced in the (split) marking cycle.
        let sw = width.chain.cycles[0].skew();
        let sd = depth.chain.cycles[0].skew();
        assert!(sd < sw, "equi-depth skew {sd} should beat equi-width {sw}");
    }

    /// Randomized stress: many seeds, several query shapes, vs oracle.
    #[test]
    fn randomized_agreement() {
        let shapes: Vec<Vec<AllenPredicate>> = vec![
            vec![Overlaps],
            vec![Contains, Overlaps],
            vec![Overlaps, Overlaps, Overlaps],
            vec![ContainedBy, Meets],
        ];
        for (i, preds) in shapes.iter().enumerate() {
            for seed in 0..4 {
                check(preds, 100 + i as u64 * 10 + seed, 35, 250, 70, 7);
            }
        }
    }
}
