//! Record types flowing through the MapReduce jobs.

use ij_interval::{AttrId, Interval, RelId, TupleId};
use ij_mapreduce::Record;
use serde::{Deserialize, Serialize};

/// A single-attribute interval record: one tuple of one (logical) relation.
/// The workhorse of the Colocation / Sequence / Hybrid algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IvRec {
    /// Logical relation the tuple belongs to.
    pub rel: RelId,
    /// The tuple's id within its relation.
    pub tid: TupleId,
    /// The tuple's interval (attribute 0).
    pub iv: Interval,
}

impl Record for IvRec {}

/// An [`IvRec`] plus the RCCIS replication flag — the record format the
/// first RCCIS cycle writes to the DFS (Section 6.1: "writes out all the
/// intervals on the disk along-with a flag").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlagRec {
    /// The interval record.
    pub rec: IvRec,
    /// Whether RCCIS selected the interval for replication.
    pub replicate: bool,
}

impl Record for FlagRec {}

/// A full multi-attribute tuple record, used by Gen-Matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleRec {
    /// Logical relation.
    pub rel: RelId,
    /// Tuple id.
    pub tid: TupleId,
    /// All attribute values.
    pub attrs: Vec<Interval>,
}

impl Record for TupleRec {
    fn approx_bytes(&self) -> u64 {
        8 + self.attrs.len() as u64 * 16
    }
}

/// A [`TupleRec`] plus one replication flag per *join attribute* — the
/// Gen-Matrix analogue of [`FlagRec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlagTupleRec {
    /// The tuple record.
    pub rec: TupleRec,
    /// `flags[i]` corresponds to the i-th entry of the relation's join
    /// attribute list (in ascending [`AttrId`] order).
    pub flags: Vec<bool>,
}

impl Record for FlagTupleRec {
    fn approx_bytes(&self) -> u64 {
        self.rec.approx_bytes() + self.flags.len() as u64
    }
}

/// One attribute value of one tuple, tagged with its join-graph vertex —
/// the record Gen-Matrix's marking cycle shuffles (a tuple contributes one
/// `VtxRec` per join attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VtxRec {
    /// The relation.
    pub rel: RelId,
    /// The attribute within the relation.
    pub attr: AttrId,
    /// The tuple's id.
    pub tid: TupleId,
    /// The attribute's interval value.
    pub iv: Interval,
}

impl Record for VtxRec {}

/// A partial join result produced by cascade stages: tuple ids and the
/// intervals of the relations joined so far. Which relations those are is
/// carried by the cascade's stage plan, not the record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompRec {
    /// Tuple ids, parallel to the stage plan's joined-relation list.
    pub tids: Vec<TupleId>,
    /// Intervals, parallel to `tids`.
    pub ivs: Vec<Interval>,
}

impl Record for CompRec {
    fn approx_bytes(&self) -> u64 {
        self.tids.len() as u64 * 20 + 8
    }
}

/// Reducer output: either one materialized output tuple (ids indexed by
/// relation) or a partial count of output tuples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutRec {
    /// One output tuple: `ids[r]` is the tuple id contributed by relation r.
    Tuple(Vec<TupleId>),
    /// This reducer found `n` output tuples (count-only mode).
    Count(u64),
}

impl Record for OutRec {
    fn approx_bytes(&self) -> u64 {
        match self {
            OutRec::Tuple(ids) => 1 + ids.len() as u64 * 4,
            OutRec::Count(_) => 9,
        }
    }
}

/// Marks the attribute list position of `attr` within a relation's sorted
/// join-attribute list — the index into [`FlagTupleRec::flags`].
pub fn flag_slot(join_attrs: &[AttrId], attr: AttrId) -> usize {
    join_attrs
        .iter()
        .position(|&a| a == attr)
        .expect("attribute participates in the join")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    #[test]
    fn record_sizes_reasonable() {
        let r = IvRec {
            rel: RelId(0),
            tid: 1,
            iv: iv(0, 5),
        };
        assert!(r.approx_bytes() >= 20);
        let t = TupleRec {
            rel: RelId(0),
            tid: 1,
            attrs: vec![iv(0, 5), iv(1, 1)],
        };
        assert_eq!(t.approx_bytes(), 8 + 32);
        assert_eq!(OutRec::Tuple(vec![1, 2, 3]).approx_bytes(), 13);
        assert_eq!(OutRec::Count(9).approx_bytes(), 9);
    }

    #[test]
    fn flag_slot_looks_up() {
        assert_eq!(flag_slot(&[0, 2, 5], 2), 1);
        assert_eq!(flag_slot(&[0, 2, 5], 0), 0);
    }

    #[test]
    #[should_panic(expected = "participates")]
    fn flag_slot_missing_attr_panics() {
        flag_slot(&[0, 2], 1);
    }
}
