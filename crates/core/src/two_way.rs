//! 2-way interval joins (paper Section 4, Figure 1 column 3).
//!
//! One MR cycle: the two relations are routed with the predicate's
//! project/split/replicate pair and each reducer joins what it received.
//! Because one side is always *projected* (it reaches exactly one reducer),
//! every output pair is computed exactly once with no ownership filter.

use crate::algorithm::{
    empty_output, iv_records, require_single_attr, AlgoError, Algorithm, RunArtifacts,
};
use crate::executor::Candidates;
use crate::input::JoinInput;
use crate::kernel;
use crate::output::{JoinOutput, OutputMode};
use crate::records::{IvRec, OutRec};
use ij_interval::{ops, RelId};
use ij_mapreduce::{Emitter, Engine, JobChain, ReduceCtx, ValueStream};
use ij_query::JoinQuery;

/// The Section 4 two-way join.
#[derive(Debug, Clone)]
pub struct TwoWayJoin {
    /// Number of partition-intervals (= logical reducers), `k` in the paper.
    pub partitions: usize,
    /// Materialize or count.
    pub mode: OutputMode,
}

impl TwoWayJoin {
    /// A two-way join over `partitions` partitions, materializing output.
    pub fn new(partitions: usize) -> Self {
        TwoWayJoin {
            partitions,
            mode: OutputMode::Materialize,
        }
    }
}

impl Algorithm for TwoWayJoin {
    fn name(&self) -> &'static str {
        "2-way"
    }

    fn run(
        &self,
        query: &JoinQuery,
        input: &JoinInput,
        engine: &Engine,
    ) -> Result<JoinOutput, AlgoError> {
        require_single_attr(self.name(), query)?;
        if query.num_relations() != 2 {
            return Err(AlgoError::Unsupported {
                algorithm: self.name(),
                reason: format!(
                    "{} relations; 2-way joins take exactly 2",
                    query.num_relations()
                ),
            });
        }
        if query.start_order().contradictory() {
            return Ok(empty_output(self.mode));
        }
        let part = RunArtifacts::partition_span(input.span(), self.partitions)?;

        // Route by the FIRST condition's operation pair; the reducer-side
        // executor checks all conditions (extra conditions between the same
        // two relations only shrink the output).
        let primary = query.conditions()[0];
        let (op_left, op_right) = primary.pred.map_ops();
        let op_of = |rel: RelId| {
            if rel == primary.left.rel {
                op_left
            } else {
                op_right
            }
        };

        let mode = self.mode;
        let q = query.clone();
        let partc = part.clone();
        let out = engine.run_job(
            "2way-join",
            &iv_records(input),
            move |rec: &IvRec, em: &mut Emitter<IvRec>| {
                for p in ops::apply(op_of(rec.rel), rec.iv, &partc) {
                    em.emit(p as u64, *rec);
                }
            },
            move |ctx: &mut ReduceCtx, values: &mut ValueStream<IvRec>, out: &mut Vec<OutRec>| {
                let mut cands = Candidates::new(2);
                for v in values.by_ref() {
                    cands.push(v.rel.idx(), v.iv, v.tid);
                }
                cands.finish();
                let mut count = 0u64;
                kernel::reduce_join(
                    ctx,
                    &q,
                    &cands,
                    |_| true,
                    |a| {
                        count += 1;
                        if mode == OutputMode::Materialize {
                            out.push(OutRec::Tuple(a.iter().map(|(_, t)| *t).collect()));
                        }
                    },
                );
                if mode == OutputMode::Count && count > 0 {
                    out.push(OutRec::Count(count));
                }
            },
        )?;

        let mut chain = JobChain::new();
        chain.push(out.metrics);
        Ok(JoinOutput::from_records(self.mode, out.outputs, chain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_join;
    use ij_interval::AllenPredicate::{self, *};
    use ij_interval::{Interval, Relation};
    use ij_mapreduce::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rel(rng: &mut StdRng, n: usize, span: i64, max_len: i64) -> Relation {
        Relation::from_intervals(
            "R",
            (0..n).map(|_| {
                let s = rng.gen_range(0..span);
                let e = s + rng.gen_range(0..=max_len);
                Interval::new(s, e).unwrap()
            }),
        )
    }

    fn check_predicate(pred: AllenPredicate, seed: u64) {
        let q = JoinQuery::chain(&[pred]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 120, 200, 30),
                random_rel(&mut rng, 120, 200, 30),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = TwoWayJoin::new(7)
            .run(&q, &input, &engine)
            .unwrap()
            .assert_no_duplicates();
        let want = oracle_join(&q, &input);
        assert_eq!(got, want, "predicate {pred}");
    }

    #[test]
    fn every_allen_predicate_matches_oracle() {
        for (i, pred) in AllenPredicate::ALL.into_iter().enumerate() {
            check_predicate(pred, 1000 + i as u64);
        }
    }

    #[test]
    fn overlap_from_figure1_strategy() {
        // Overlaps must split R1 and project R2 — verify the op table.
        assert_eq!(
            Overlaps.map_ops(),
            (ij_interval::MapOp::Split, ij_interval::MapOp::Project)
        );
        assert_eq!(
            Before.map_ops(),
            (ij_interval::MapOp::Replicate, ij_interval::MapOp::Project)
        );
    }

    #[test]
    fn count_mode_counts_without_materializing() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 80, 100, 20),
                random_rel(&mut rng, 80, 100, 20),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let alg = TwoWayJoin {
            partitions: 5,
            mode: OutputMode::Count,
        };
        let out = alg.run(&q, &input, &engine).unwrap();
        assert!(out.tuples.is_empty());
        assert_eq!(out.count, oracle_join(&q, &input).len() as u64);
    }

    #[test]
    fn rejects_multiway_queries() {
        let q = JoinQuery::chain(&[Overlaps, Overlaps]).unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals("C", vec![Interval::new(0, 1).unwrap()]),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(2));
        assert!(matches!(
            TwoWayJoin::new(4).run(&q, &input, &engine),
            Err(AlgoError::Unsupported { .. })
        ));
    }

    #[test]
    fn contradictory_query_short_circuits() {
        let q = JoinQuery::new(
            2,
            vec![
                ij_query::Condition::whole(0, Before, 1),
                ij_query::Condition::whole(1, Before, 0),
            ],
        )
        .unwrap();
        let input = JoinInput::bind_owned(
            &q,
            vec![
                Relation::from_intervals("A", vec![Interval::new(0, 1).unwrap()]),
                Relation::from_intervals("B", vec![Interval::new(5, 6).unwrap()]),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(2));
        let out = TwoWayJoin::new(4).run(&q, &input, &engine).unwrap();
        assert_eq!(out.count, 0);
        assert_eq!(out.chain.num_cycles(), 0);
    }

    #[test]
    fn reversed_condition_orientation() {
        // Condition written as R2 overlapped-by R1 (left operand is R2).
        let q = JoinQuery::new(2, vec![ij_query::Condition::whole(1, OverlappedBy, 0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let input = JoinInput::bind_owned(
            &q,
            vec![
                random_rel(&mut rng, 100, 150, 25),
                random_rel(&mut rng, 100, 150, 25),
            ],
        )
        .unwrap();
        let engine = Engine::new(ClusterConfig::with_slots(4));
        let got = TwoWayJoin::new(6)
            .run(&q, &input, &engine)
            .unwrap()
            .assert_no_duplicates();
        assert_eq!(got, oracle_join(&q, &input));
    }
}
