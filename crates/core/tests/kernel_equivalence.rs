//! Property tests for the kernel layer: the sweep kernel, the sort-merge
//! kernel and the windowed-backtracking fallback are *complete* executors
//! for any single-attribute query, so on random chains and cliques over all
//! 13 Allen predicates the three must produce identical result sets — and
//! all must agree with the nested-loop oracle. The event-list sweep is
//! complete only on its qualifying domain (pairwise-intersection-
//! guaranteed colocation sets), checked here on colocation cliques and
//! containment chains of arity 3–4. Separately, the parallel driver must
//! emit byte-identical output (same tuples, same order) and identical
//! work units — and, for the event sweep, an identical active peak — for
//! every intra-bucket thread count and chunking threshold.

use ij_core::executor::Candidates;
use ij_core::kernel::{self, KernelConfig};
use ij_core::oracle::oracle_join;
use ij_core::JoinInput;
use ij_interval::{AllenPredicate, Interval, Relation, TupleId};
use ij_query::{Condition, JoinQuery};
use proptest::prelude::*;

/// One relation's worth of random intervals: `(start, len)` pairs over a
/// span small enough that every predicate (including the point-equality
/// ones: meets, starts, equals, …) fires regularly.
fn rel_strategy() -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec(
        (0i64..30, 0i64..12).prop_map(|(s, l)| Interval::new(s, s + l).unwrap()),
        3..25usize,
    )
}

fn pred_strategy() -> impl Strategy<Value = AllenPredicate> {
    (0usize..13).prop_map(|i| AllenPredicate::ALL[i])
}

/// Builds the two candidate representations the executors take: the
/// reducer-side `Candidates` and the oracle's `JoinInput`, with matching
/// sequential tuple ids.
fn build_inputs(q: &JoinQuery, rels: &[Vec<Interval>]) -> (Candidates, JoinInput) {
    let mut cands = Candidates::new(rels.len());
    for (r, ivs) in rels.iter().enumerate() {
        for (t, &iv) in ivs.iter().enumerate() {
            cands.push(r, iv, t as TupleId);
        }
    }
    cands.finish();
    let input = JoinInput::bind_owned(
        q,
        rels.iter()
            .map(|ivs| Relation::from_intervals("R", ivs.iter().copied()))
            .collect(),
    )
    .expect("single-attr input binds");
    (cands, input)
}

/// Sorted result sets from all three forced kernels plus the oracle; panics
/// (via prop_assert in the caller) when any pair disagrees.
fn all_kernel_results(q: &JoinQuery, cands: &Candidates) -> [Vec<Vec<TupleId>>; 3] {
    type Emit<'a> = dyn FnMut(&[(Interval, TupleId)]) + 'a;
    let collect = |run: &dyn Fn(&mut Emit<'_>)| {
        let mut got: Vec<Vec<TupleId>> = Vec::new();
        run(&mut |a| got.push(a.iter().map(|(_, t)| *t).collect()));
        got.sort();
        got
    };
    [
        collect(&|emit| {
            kernel::backtrack_join(q, cands, |_| true, |a| emit(a));
        }),
        collect(&|emit| {
            kernel::sweep_join(q, cands, |_| true, |a| emit(a));
        }),
        collect(&|emit| {
            kernel::merge_join(q, cands, |_| true, |a| emit(a));
        }),
    ]
}

/// The 11 colocation predicates (everything but before/after) — the
/// domain where clique condition sets qualify for the event sweep.
const COLOCATION_PREDS: [AllenPredicate; 11] = {
    use AllenPredicate::*;
    [
        Overlaps,
        OverlappedBy,
        Contains,
        ContainedBy,
        Meets,
        MetBy,
        Starts,
        StartedBy,
        Finishes,
        FinishedBy,
        Equals,
    ]
};

fn colocation_pred_strategy() -> impl Strategy<Value = AllenPredicate> {
    (0usize..COLOCATION_PREDS.len()).prop_map(|i| COLOCATION_PREDS[i])
}

/// A clique: one condition between every pair of relations. Often
/// contradictory — those cases must simply produce empty sets everywhere.
fn clique(m: u16, preds: &[AllenPredicate]) -> JoinQuery {
    let mut conds = Vec::new();
    let mut pi = 0;
    for i in 0..m {
        for j in (i + 1)..m {
            conds.push(Condition::whole(i, preds[pi % preds.len()], j));
            pi += 1;
        }
    }
    JoinQuery::new(m, conds).expect("clique query builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Chains of 2–4 relations over random predicate mixes: every kernel
    /// and the oracle agree on the exact result set.
    #[test]
    fn kernels_match_oracle_on_chains(
        preds in proptest::collection::vec(pred_strategy(), 1..4usize),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = JoinQuery::chain(&preds).unwrap();
        let m = q.num_relations() as usize;
        let rels = &seed_rels[..m];
        let (cands, input) = build_inputs(&q, rels);
        let [bt, sw, mg] = all_kernel_results(&q, &cands);
        let mut oracle = oracle_join(&q, &input);
        oracle.sort();
        prop_assert_eq!(&bt, &sw, "sweep != backtrack for {}", q);
        prop_assert_eq!(&bt, &mg, "merge != backtrack for {}", q);
        prop_assert_eq!(&bt, &oracle, "kernels != oracle for {}", q);
    }

    /// Cliques over 3–4 relations (including contradictory ones, which must
    /// yield empty sets from every path).
    #[test]
    fn kernels_match_oracle_on_cliques(
        m in 3u16..5,
        preds in proptest::array::uniform3(pred_strategy()),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = clique(m, &preds);
        let rels = &seed_rels[..m as usize];
        let (cands, input) = build_inputs(&q, rels);
        let [bt, sw, mg] = all_kernel_results(&q, &cands);
        let mut oracle = oracle_join(&q, &input);
        oracle.sort();
        prop_assert_eq!(&bt, &sw, "sweep != backtrack for {}", q);
        prop_assert_eq!(&bt, &mg, "merge != backtrack for {}", q);
        prop_assert_eq!(&bt, &oracle, "kernels != oracle for {}", q);
    }

    /// The heavy-bucket parallel driver is invisible: for thread counts
    /// 1, 2 and 8 the dispatching kernel emits the same tuples in the same
    /// order (byte-identical output) and reports identical work units.
    #[test]
    fn parallel_execution_is_byte_identical(
        preds in proptest::collection::vec(pred_strategy(), 1..3usize),
        seed_rels in proptest::array::uniform3(rel_strategy()),
    ) {
        let q = JoinQuery::chain(&preds).unwrap();
        let m = q.num_relations() as usize;
        let rels = &seed_rels[..m];
        let (cands, _) = build_inputs(&q, rels);
        let run = |threads: usize| {
            let cfg = KernelConfig { threads, parallel_threshold: 0 };
            let mut flat: Vec<TupleId> = Vec::new();
            let rep = kernel::execute(
                &q,
                &cands,
                &cfg,
                |a| a.iter().map(|(_, t)| *t as u64).sum::<u64>() % 5 != 1,
                |a| flat.extend(a.iter().map(|(_, t)| *t)),
            );
            (rep.work, flat)
        };
        let (base_work, base) = run(1);
        for threads in [2usize, 8] {
            let (work, flat) = run(threads);
            prop_assert_eq!(
                &flat, &base,
                "thread count {} changed output for {}", threads, q
            );
            prop_assert_eq!(
                work, base_work,
                "thread count {} changed work units for {}", threads, q
            );
        }
    }

    /// Arity-3/4 colocation cliques always qualify for the event sweep
    /// (every pair directly conditioned); its result set must match the
    /// oracle and the other complete kernels exactly — including the
    /// contradictory cliques, which must be empty everywhere.
    #[test]
    fn event_sweep_matches_oracle_on_colocation_cliques(
        m in 3u16..5,
        preds in proptest::collection::vec(colocation_pred_strategy(), 6),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = clique(m, &preds);
        let rels = &seed_rels[..m as usize];
        let (cands, input) = build_inputs(&q, rels);
        let mut es: Vec<Vec<TupleId>> = Vec::new();
        kernel::event_sweep_join(&q, &cands, |_| true, |a| {
            es.push(a.iter().map(|(_, t)| *t).collect())
        });
        es.sort();
        let [bt, _, _] = all_kernel_results(&q, &cands);
        let mut oracle = oracle_join(&q, &input);
        oracle.sort();
        prop_assert_eq!(&es, &bt, "event sweep != backtrack for {}", q);
        prop_assert_eq!(&es, &oracle, "event sweep != oracle for {}", q);
    }

    /// Containment-family chains (arity 3–4) reach the event sweep via the
    /// subset closure; the result set must still match the oracle.
    #[test]
    fn event_sweep_matches_oracle_on_containment_chains(
        preds in proptest::collection::vec(
            (0usize..5).prop_map(|i| [
                AllenPredicate::Contains,
                AllenPredicate::ContainedBy,
                AllenPredicate::Starts,
                AllenPredicate::Finishes,
                AllenPredicate::Equals,
            ][i]),
            2..4usize,
        ),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = JoinQuery::chain(&preds).unwrap();
        let m = q.num_relations() as usize;
        let rels = &seed_rels[..m];
        let (cands, input) = build_inputs(&q, rels);
        let mut es: Vec<Vec<TupleId>> = Vec::new();
        kernel::event_sweep_join(&q, &cands, |_| true, |a| {
            es.push(a.iter().map(|(_, t)| *t).collect())
        });
        es.sort();
        let mut oracle = oracle_join(&q, &input);
        oracle.sort();
        prop_assert_eq!(&es, &oracle, "event sweep != oracle for {}", q);
    }

    /// Chunked parallel event sweep is invisible: for worker thread counts
    /// 1/2/8 crossed with "always chunk" and "never chunk" thresholds, the
    /// dispatcher routes qualifying cliques to the event sweep and emits
    /// byte-identical output with chunk-invariant work and active peak.
    #[test]
    fn event_sweep_parallel_chunking_is_invariant(
        m in 3u16..5,
        preds in proptest::collection::vec(colocation_pred_strategy(), 6),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = clique(m, &preds);
        let rels = &seed_rels[..m as usize];
        let (cands, _) = build_inputs(&q, rels);
        let run = |threads: usize, parallel_threshold: usize| {
            let cfg = KernelConfig { threads, parallel_threshold };
            let mut flat: Vec<TupleId> = Vec::new();
            let rep = kernel::execute(
                &q,
                &cands,
                &cfg,
                |a| a.iter().map(|(_, t)| *t as u64).sum::<u64>() % 5 != 1,
                |a| flat.extend(a.iter().map(|(_, t)| *t)),
            );
            assert_eq!(rep.kind, kernel::KernelKind::EventSweep, "{q}");
            (rep.work, rep.active_peak, flat)
        };
        let (base_work, base_peak, base) = run(1, 0);
        for threads in [1usize, 2, 8] {
            for threshold in [0usize, usize::MAX] {
                let (work, peak, flat) = run(threads, threshold);
                prop_assert_eq!(
                    &flat, &base,
                    "threads {} threshold {} changed output for {}", threads, threshold, q
                );
                prop_assert_eq!(
                    work, base_work,
                    "threads {} threshold {} changed work for {}", threads, threshold, q
                );
                prop_assert_eq!(
                    peak, base_peak,
                    "threads {} threshold {} changed active peak for {}", threads, threshold, q
                );
            }
        }
    }
}
