//! Property tests for the kernel layer: the sweep kernel, the sort-merge
//! kernel and the windowed-backtracking fallback are *complete* executors
//! for any single-attribute query, so on random chains and cliques over all
//! 13 Allen predicates the three must produce identical result sets — and
//! all must agree with the nested-loop oracle. Separately, the parallel
//! driver must emit byte-identical output (same tuples, same order) and
//! identical work units for every intra-bucket thread count.

use ij_core::executor::Candidates;
use ij_core::kernel::{self, KernelConfig};
use ij_core::oracle::oracle_join;
use ij_core::JoinInput;
use ij_interval::{AllenPredicate, Interval, Relation, TupleId};
use ij_query::{Condition, JoinQuery};
use proptest::prelude::*;

/// One relation's worth of random intervals: `(start, len)` pairs over a
/// span small enough that every predicate (including the point-equality
/// ones: meets, starts, equals, …) fires regularly.
fn rel_strategy() -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec(
        (0i64..30, 0i64..12).prop_map(|(s, l)| Interval::new(s, s + l).unwrap()),
        3..25usize,
    )
}

fn pred_strategy() -> impl Strategy<Value = AllenPredicate> {
    (0usize..13).prop_map(|i| AllenPredicate::ALL[i])
}

/// Builds the two candidate representations the executors take: the
/// reducer-side `Candidates` and the oracle's `JoinInput`, with matching
/// sequential tuple ids.
fn build_inputs(q: &JoinQuery, rels: &[Vec<Interval>]) -> (Candidates, JoinInput) {
    let mut cands = Candidates::new(rels.len());
    for (r, ivs) in rels.iter().enumerate() {
        for (t, &iv) in ivs.iter().enumerate() {
            cands.push(r, iv, t as TupleId);
        }
    }
    cands.finish();
    let input = JoinInput::bind_owned(
        q,
        rels.iter()
            .map(|ivs| Relation::from_intervals("R", ivs.iter().copied()))
            .collect(),
    )
    .expect("single-attr input binds");
    (cands, input)
}

/// Sorted result sets from all three forced kernels plus the oracle; panics
/// (via prop_assert in the caller) when any pair disagrees.
fn all_kernel_results(q: &JoinQuery, cands: &Candidates) -> [Vec<Vec<TupleId>>; 3] {
    type Emit<'a> = dyn FnMut(&[(Interval, TupleId)]) + 'a;
    let collect = |run: &dyn Fn(&mut Emit<'_>)| {
        let mut got: Vec<Vec<TupleId>> = Vec::new();
        run(&mut |a| got.push(a.iter().map(|(_, t)| *t).collect()));
        got.sort();
        got
    };
    [
        collect(&|emit| {
            kernel::backtrack_join(q, cands, |_| true, |a| emit(a));
        }),
        collect(&|emit| {
            kernel::sweep_join(q, cands, |_| true, |a| emit(a));
        }),
        collect(&|emit| {
            kernel::merge_join(q, cands, |_| true, |a| emit(a));
        }),
    ]
}

/// A clique: one condition between every pair of relations. Often
/// contradictory — those cases must simply produce empty sets everywhere.
fn clique(m: u16, preds: &[AllenPredicate]) -> JoinQuery {
    let mut conds = Vec::new();
    let mut pi = 0;
    for i in 0..m {
        for j in (i + 1)..m {
            conds.push(Condition::whole(i, preds[pi % preds.len()], j));
            pi += 1;
        }
    }
    JoinQuery::new(m, conds).expect("clique query builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Chains of 2–4 relations over random predicate mixes: every kernel
    /// and the oracle agree on the exact result set.
    #[test]
    fn kernels_match_oracle_on_chains(
        preds in proptest::collection::vec(pred_strategy(), 1..4usize),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = JoinQuery::chain(&preds).unwrap();
        let m = q.num_relations() as usize;
        let rels = &seed_rels[..m];
        let (cands, input) = build_inputs(&q, rels);
        let [bt, sw, mg] = all_kernel_results(&q, &cands);
        let mut oracle = oracle_join(&q, &input);
        oracle.sort();
        prop_assert_eq!(&bt, &sw, "sweep != backtrack for {}", q);
        prop_assert_eq!(&bt, &mg, "merge != backtrack for {}", q);
        prop_assert_eq!(&bt, &oracle, "kernels != oracle for {}", q);
    }

    /// Cliques over 3–4 relations (including contradictory ones, which must
    /// yield empty sets from every path).
    #[test]
    fn kernels_match_oracle_on_cliques(
        m in 3u16..5,
        preds in proptest::array::uniform3(pred_strategy()),
        seed_rels in proptest::array::uniform4(rel_strategy()),
    ) {
        let q = clique(m, &preds);
        let rels = &seed_rels[..m as usize];
        let (cands, input) = build_inputs(&q, rels);
        let [bt, sw, mg] = all_kernel_results(&q, &cands);
        let mut oracle = oracle_join(&q, &input);
        oracle.sort();
        prop_assert_eq!(&bt, &sw, "sweep != backtrack for {}", q);
        prop_assert_eq!(&bt, &mg, "merge != backtrack for {}", q);
        prop_assert_eq!(&bt, &oracle, "kernels != oracle for {}", q);
    }

    /// The heavy-bucket parallel driver is invisible: for thread counts
    /// 1, 2 and 8 the dispatching kernel emits the same tuples in the same
    /// order (byte-identical output) and reports identical work units.
    #[test]
    fn parallel_execution_is_byte_identical(
        preds in proptest::collection::vec(pred_strategy(), 1..3usize),
        seed_rels in proptest::array::uniform3(rel_strategy()),
    ) {
        let q = JoinQuery::chain(&preds).unwrap();
        let m = q.num_relations() as usize;
        let rels = &seed_rels[..m];
        let (cands, _) = build_inputs(&q, rels);
        let run = |threads: usize| {
            let cfg = KernelConfig { threads, parallel_threshold: 0 };
            let mut flat: Vec<TupleId> = Vec::new();
            let rep = kernel::execute(
                &q,
                &cands,
                &cfg,
                |a| a.iter().map(|(_, t)| *t as u64).sum::<u64>() % 5 != 1,
                |a| flat.extend(a.iter().map(|(_, t)| *t)),
            );
            (rep.work, flat)
        };
        let (base_work, base) = run(1);
        for threads in [2usize, 8] {
            let (work, flat) = run(threads);
            prop_assert_eq!(
                &flat, &base,
                "thread count {} changed output for {}", threads, q
            );
            prop_assert_eq!(
                work, base_work,
                "thread count {} changed work units for {}", threads, q
            );
        }
    }
}
