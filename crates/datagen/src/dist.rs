//! Sampling distributions for the synthetic generator.
//!
//! The paper's generator takes "distribution of start points (dS)" and
//! "distribution of interval length (dI)" as parameters and reports results
//! for uniform data, noting that "experiments varying other parameters like
//! distribution of start-point of intervals … observed similar results". We
//! provide uniform plus three skewed families so those unreported sweeps can
//! be reproduced too.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sampling distribution over an inclusive integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over `[lo, hi]` — the paper's reported setting.
    Uniform,
    /// Truncated normal centered on the range midpoint with
    /// `sd = span / 6` (≈ 99.7% of mass inside before clamping).
    Normal,
    /// Zipf-like power skew toward `lo`: `lo + span · u^theta` for
    /// `u ~ U(0,1)`. `theta > 1` concentrates mass near `lo`.
    Zipf {
        /// Skew exponent; 1.0 degenerates to uniform.
        theta: f64,
    },
    /// Truncated exponential decaying from `lo` with mean `span · scale`
    /// before clamping.
    Exponential {
        /// Mean as a fraction of the span (e.g. 0.25).
        scale: f64,
    },
}

impl Distribution {
    /// Draws one sample from `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty sample range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        let span = (hi - lo) as f64;
        let v = match self {
            Distribution::Uniform => return rng.gen_range(lo..=hi),
            Distribution::Normal => {
                let mean = span / 2.0;
                let sd = span / 6.0;
                mean + sd * standard_normal(rng)
            }
            Distribution::Zipf { theta } => {
                let u: f64 = rng.gen();
                span * u.powf(theta.max(1e-9))
            }
            Distribution::Exponential { scale } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() * span * scale.max(1e-9)
            }
        };
        lo + (v.round() as i64).clamp(0, hi - lo)
    }

    /// Parses `"uniform"`, `"normal"`, `"zipf"` (theta 2.0) or `"exp"`
    /// (scale 0.25); used by the bench binaries' CLI.
    pub fn parse(s: &str) -> Option<Distribution> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" | "u" => Some(Distribution::Uniform),
            "normal" | "n" => Some(Distribution::Normal),
            "zipf" | "z" => Some(Distribution::Zipf { theta: 2.0 }),
            "exp" | "exponential" | "e" => Some(Distribution::Exponential { scale: 0.25 }),
            _ => None,
        }
    }
}

/// Box–Muller standard normal.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(d: Distribution, n: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng, 0, 1000)).collect()
    }

    #[test]
    fn all_samples_in_range() {
        for d in [
            Distribution::Uniform,
            Distribution::Normal,
            Distribution::Zipf { theta: 2.0 },
            Distribution::Exponential { scale: 0.25 },
        ] {
            for s in samples(d, 5000) {
                assert!((0..=1000).contains(&s), "{d:?} produced {s}");
            }
        }
    }

    #[test]
    fn degenerate_range_returns_lo() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Distribution::Uniform.sample(&mut rng, 7, 7), 7);
        assert_eq!(Distribution::Normal.sample(&mut rng, 7, 7), 7);
    }

    #[test]
    fn uniform_covers_range_evenly() {
        let s = samples(Distribution::Uniform, 20_000);
        let mean = s.iter().sum::<i64>() as f64 / s.len() as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean = {mean}");
        let low = s.iter().filter(|&&x| x < 100).count();
        assert!(low > 1500 && low < 2500, "low decile count = {low}");
    }

    #[test]
    fn zipf_skews_low() {
        let s = samples(Distribution::Zipf { theta: 3.0 }, 20_000);
        let below_quarter = s.iter().filter(|&&x| x < 250).count() as f64 / s.len() as f64;
        assert!(below_quarter > 0.5, "zipf mass below 250: {below_quarter}");
    }

    #[test]
    fn exponential_skews_low() {
        let s = samples(Distribution::Exponential { scale: 0.2 }, 20_000);
        let mean = s.iter().sum::<i64>() as f64 / s.len() as f64;
        assert!(mean < 300.0, "mean = {mean}");
    }

    #[test]
    fn normal_centers() {
        let s = samples(Distribution::Normal, 20_000);
        let mean = s.iter().sum::<i64>() as f64 / s.len() as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean = {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            samples(Distribution::Uniform, 100),
            samples(Distribution::Uniform, 100)
        );
    }

    #[test]
    fn parse_names() {
        assert_eq!(Distribution::parse("uniform"), Some(Distribution::Uniform));
        assert_eq!(Distribution::parse("Normal"), Some(Distribution::Normal));
        assert!(matches!(
            Distribution::parse("zipf"),
            Some(Distribution::Zipf { .. })
        ));
        assert!(matches!(
            Distribution::parse("exp"),
            Some(Distribution::Exponential { .. })
        ));
        assert_eq!(Distribution::parse("pareto"), None);
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn rejects_inverted_range() {
        let mut rng = StdRng::seed_from_u64(1);
        Distribution::Uniform.sample(&mut rng, 5, 4);
    }
}
