//! Reading and writing relations as line-oriented text files.
//!
//! The paper stores each relation as an HDFS file where "each line usually
//! represents a tuple" (Section 2). This module implements that format so
//! generated workloads can be persisted, inspected and reloaded:
//!
//! ```text
//! # relation R1, 2 attributes
//! 0    17      42 42
//! 5    9       7 7
//! ```
//!
//! One line per tuple; attributes are tab-separated `start end` pairs
//! (space inside the pair). Comment lines start with `#`. A point value
//! may be written as a single number.

use ij_interval::{Interval, Relation};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Error reading a relation file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and message).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Serializes a relation to the line format.
pub fn write_relation<W: Write>(w: &mut W, rel: &Relation) -> io::Result<()> {
    writeln!(w, "# relation {}, {} attributes", rel.name, rel.n_attrs)?;
    let mut line = String::new();
    for t in rel.tuples() {
        line.clear();
        for (i, iv) in t.attrs.iter().enumerate() {
            if i > 0 {
                line.push('\t');
            }
            if iv.is_point() {
                let _ = write!(line, "{}", iv.start());
            } else {
                let _ = write!(line, "{} {}", iv.start(), iv.end());
            }
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Writes a relation to a file.
pub fn save_relation(path: impl AsRef<Path>, rel: &Relation) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_relation(&mut f, rel)?;
    f.flush()
}

/// Parses a relation from the line format. The relation's name is taken
/// from the header comment when present, else `default_name`.
pub fn read_relation<R: Read>(r: R, default_name: &str) -> Result<Relation, ReadError> {
    let reader = BufReader::new(r);
    let mut name = default_name.to_string();
    let mut rows: Vec<Vec<Interval>> = Vec::new();
    let mut arity: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            // "# relation NAME, ..." header is informative.
            if let Some(n) = rest.trim().strip_prefix("relation ") {
                if let Some((n, _)) = n.split_once(',') {
                    name = n.trim().to_string();
                }
            }
            continue;
        }
        let mut attrs = Vec::new();
        for field in trimmed.split('\t') {
            let mut nums = field.split_whitespace().map(str::parse::<i64>);
            let start = nums
                .next()
                .ok_or_else(|| ReadError::Parse {
                    line: lineno,
                    message: "empty attribute".into(),
                })?
                .map_err(|e| ReadError::Parse {
                    line: lineno,
                    message: format!("bad start point: {e}"),
                })?;
            let end = match nums.next() {
                None => start,
                Some(v) => v.map_err(|e| ReadError::Parse {
                    line: lineno,
                    message: format!("bad end point: {e}"),
                })?,
            };
            if nums.next().is_some() {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: "attribute has more than two numbers".into(),
                });
            }
            let iv = Interval::new(start, end).map_err(|e| ReadError::Parse {
                line: lineno,
                message: e.to_string(),
            })?;
            attrs.push(iv);
        }
        match arity {
            None => arity = Some(attrs.len()),
            Some(a) if a != attrs.len() => {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: format!("expected {a} attributes, found {}", attrs.len()),
                })
            }
            _ => {}
        }
        rows.push(attrs);
    }
    Ok(Relation::from_rows(name, rows))
}

/// Reads a relation from a file; the default name is the file stem.
pub fn load_relation(path: impl AsRef<Path>) -> Result<Relation, ReadError> {
    let path = path.as_ref();
    let default = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("R")
        .to_string();
    read_relation(std::fs::File::open(path)?, &default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthConfig;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    #[test]
    fn round_trip_single_attribute() {
        let rel = Relation::from_intervals("trains", vec![iv(0, 5), iv(3, 3), iv(-4, 10)]);
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let back = read_relation(&buf[..], "x").unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn round_trip_multi_attribute() {
        let rel = Relation::from_rows(
            "R3",
            vec![
                vec![iv(0, 9), Interval::point(7), iv(2, 2)],
                vec![iv(1, 4), Interval::point(9), iv(5, 6)],
            ],
        );
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let back = read_relation(&buf[..], "x").unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn points_written_compactly() {
        let rel = Relation::from_intervals("R", vec![Interval::point(42)]);
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().any(|l| l == "42"), "{text}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "# relation R, 1 attributes\n1 5\nbogus\n";
        let err = read_relation(text.as_bytes(), "R").unwrap_err();
        match err {
            ReadError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other}"),
        }
        let text = "1 5\n1 5\t3 4\n";
        assert!(matches!(
            read_relation(text.as_bytes(), "R").unwrap_err(),
            ReadError::Parse { line: 2, .. }
        ));
        let text = "5 4\n";
        assert!(matches!(
            read_relation(text.as_bytes(), "R").unwrap_err(),
            ReadError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn header_names_relation() {
        let text = "# relation packets, 1 attributes\n0 1\n";
        let rel = read_relation(text.as_bytes(), "fallback").unwrap();
        assert_eq!(rel.name, "packets");
        let rel = read_relation("0 1\n".as_bytes(), "fallback").unwrap();
        assert_eq!(rel.name, "fallback");
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        let rel = SynthConfig::table1(200, 5).generate("synthetic");
        let dir = std::env::temp_dir().join(format!("ij-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synthetic.tsv");
        save_relation(&path, &rel).unwrap();
        let back = load_relation(&path).unwrap();
        assert_eq!(back, rel);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
