//! Workload generators for the paper's evaluation.
//!
//! * [`synth`] — the synthetic interval generator of Section 6.2, with the
//!   paper's exact parameters: number of intervals `nI`, start-point
//!   distribution `dS`, length distribution `dI`, global time range
//!   `(t_min, t_max)` and length bounds `(i_min, i_max)`.
//! * [`packets`] / [`trains`] — a MAWI-like packet-stream simulator and the
//!   paper's packet-train construction (Section 6.2): trains are maximal
//!   per-flow packet runs whose inter-arrival gaps stay below a cutoff
//!   (500 ms in the paper).
//! * [`profiles`] — per-trace profiles P03–P08 shaped after Table 2.
//!
//! Everything is seeded and deterministic.

pub mod dist;
pub mod io;
pub mod packets;
pub mod profiles;
pub mod synth;
pub mod trains;

pub use dist::Distribution;
pub use io::{load_relation, save_relation};
pub use packets::{Packet, PacketStreamConfig, PacketStreamGen};
pub use profiles::TraceProfile;
pub use synth::SynthConfig;
pub use trains::{trains_from_packets, Train};
