//! A MAWI-like packet-stream simulator.
//!
//! The paper uses 15-minute packet traces from the WIDE trans-pacific
//! backbone (MAWI repository). Those traces are a resource we substitute
//! (DESIGN.md §4): we synthesize per-flow packet arrivals with the bursty
//! *train* structure network traffic exhibits (Jain & Routhier's packet-train
//! model, the paper's reference \[9\]) — short intra-train gaps, long
//! inter-train gaps — so that the paper's packet-train construction
//! (`crate::trains`) recovers trains with heavy-tailed durations and bursty
//! overlap, the structure the join experiments depend on.
//!
//! Timestamps are microseconds from trace start, like pcap headers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One captured packet: a flow (source/destination pair) and an arrival
/// timestamp at the observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Flow id (stands in for the source-IP/destination-IP pair).
    pub flow: u32,
    /// Arrival time in microseconds from trace start.
    pub ts_us: i64,
}

/// Parameters of the packet-stream simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketStreamConfig {
    /// Number of flows (source-destination pairs).
    pub n_flows: u32,
    /// Trace duration in microseconds (15 min = 900 s in the paper).
    pub duration_us: i64,
    /// Mean packets per train (geometric).
    pub mean_train_len: f64,
    /// Mean gap between packets inside a train, microseconds
    /// (must be well below the train cutoff, 500 ms in the paper).
    pub mean_intra_gap_us: f64,
    /// Mean gap between trains of the same flow, microseconds
    /// (must be well above the cutoff).
    pub mean_inter_gap_us: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PacketStreamConfig {
    fn default() -> Self {
        PacketStreamConfig {
            n_flows: 1000,
            duration_us: 900_000_000, // 15 minutes
            mean_train_len: 10.0,
            mean_intra_gap_us: 50_000.0,    // 50 ms << 500 ms cutoff
            mean_inter_gap_us: 5_000_000.0, // 5 s >> cutoff
            seed: 0,
        }
    }
}

/// Generates packet streams from a [`PacketStreamConfig`].
#[derive(Debug)]
pub struct PacketStreamGen {
    cfg: PacketStreamConfig,
}

impl PacketStreamGen {
    /// Creates a generator.
    pub fn new(cfg: PacketStreamConfig) -> Self {
        PacketStreamGen { cfg }
    }

    /// Generates the full trace: all flows' packets, sorted by timestamp
    /// (as they would appear at the observation point).
    pub fn generate(&self) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut packets = Vec::new();
        for flow in 0..self.cfg.n_flows {
            self.generate_flow(flow, &mut rng, &mut packets);
        }
        packets.sort_by_key(|p| (p.ts_us, p.flow));
        packets
    }

    /// One flow: alternating trains and inter-train silences until the
    /// trace ends.
    fn generate_flow(&self, flow: u32, rng: &mut StdRng, out: &mut Vec<Packet>) {
        // Random initial offset so flows are desynchronized.
        let mut t = (rng.gen::<f64>() * self.cfg.mean_inter_gap_us) as i64;
        while t < self.cfg.duration_us {
            // One train: geometric length, exponential intra gaps.
            let len = geometric(rng, self.cfg.mean_train_len);
            for i in 0..len {
                if t >= self.cfg.duration_us {
                    return;
                }
                out.push(Packet { flow, ts_us: t });
                if i + 1 < len {
                    t += exponential(rng, self.cfg.mean_intra_gap_us).max(1);
                }
            }
            t += exponential(rng, self.cfg.mean_inter_gap_us).max(1);
        }
    }
}

/// Geometric sample with the given mean (support `1..`).
fn geometric(rng: &mut StdRng, mean: f64) -> u32 {
    let p = (1.0 / mean.max(1.0)).clamp(1e-9, 1.0);
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u32
}

/// Exponential sample with the given mean, in integer microseconds.
fn exponential(rng: &mut StdRng, mean: f64) -> i64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (-u.ln() * mean) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> PacketStreamConfig {
        PacketStreamConfig {
            n_flows: 50,
            duration_us: 60_000_000, // 1 minute
            mean_train_len: 8.0,
            mean_intra_gap_us: 20_000.0,
            mean_inter_gap_us: 2_000_000.0,
            seed: 11,
        }
    }

    #[test]
    fn packets_sorted_and_in_range() {
        let pkts = PacketStreamGen::new(small_cfg()).generate();
        assert!(!pkts.is_empty());
        for w in pkts.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        assert!(pkts.iter().all(|p| (0..60_000_000).contains(&p.ts_us)));
        assert!(pkts.iter().all(|p| p.flow < 50));
    }

    #[test]
    fn deterministic() {
        let a = PacketStreamGen::new(small_cfg()).generate();
        let b = PacketStreamGen::new(small_cfg()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn gap_structure_is_bimodal() {
        // Within flows, gaps should cluster well below and well above the
        // 500 ms cutoff — that's what makes train construction meaningful.
        let pkts = PacketStreamGen::new(small_cfg()).generate();
        let mut by_flow: std::collections::BTreeMap<u32, Vec<i64>> = Default::default();
        for p in &pkts {
            by_flow.entry(p.flow).or_default().push(p.ts_us);
        }
        let (mut small, mut large, mut mid) = (0u32, 0u32, 0u32);
        for ts in by_flow.values() {
            for w in ts.windows(2) {
                let gap = w[1] - w[0];
                if gap < 500_000 {
                    small += 1;
                } else if gap > 1_000_000 {
                    large += 1;
                } else {
                    mid += 1;
                }
            }
        }
        assert!(small > 0 && large > 0);
        // The mid zone (ambiguous gaps) should be a small minority.
        assert!(
            (mid as f64) < 0.1 * (small + large + mid) as f64,
            "mid={mid} small={small} large={large}"
        );
    }

    #[test]
    fn geometric_mean_near_target() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut rng, 10.0) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean = {mean}");
    }
}
