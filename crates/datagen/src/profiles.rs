//! Trace profiles P03–P08, shaped after the paper's Table 2.
//!
//! The paper chose six 15-minute MAWI traces "so that they contain widely
//! different number of packets and hence different statistical
//! characteristics". Each profile here records the paper's packet and train
//! counts and derives simulator parameters that reproduce them in shape:
//! mean train length = packets / trains, flows sized so a 15-minute trace
//! yields the right train count. The `scale` knob shrinks everything
//! proportionally for laptop-sized runs.

use crate::packets::{PacketStreamConfig, PacketStreamGen};
use crate::trains::{trains_from_packets, Train, PAPER_CUTOFF_US};
use serde::{Deserialize, Serialize};

/// A Table 2 trace profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name, e.g. `"P03"`.
    pub name: &'static str,
    /// Paper's packet count for the Japan→US direction.
    pub packets: u64,
    /// Paper's packet-train count at the 500 ms cutoff.
    pub trains: u64,
    /// Copies needed to reach 3M trains (Table 2, "# Copies").
    pub copies: u32,
}

/// The six traces of Table 2.
pub const TABLE2_PROFILES: [TraceProfile; 6] = [
    TraceProfile {
        name: "P03",
        packets: 1_500_000,
        trains: 120_000,
        copies: 25,
    },
    TraceProfile {
        name: "P04",
        packets: 200_000,
        trains: 18_000,
        copies: 167,
    },
    TraceProfile {
        name: "P05",
        packets: 2_900_000,
        trains: 207_000,
        copies: 15,
    },
    TraceProfile {
        name: "P06",
        packets: 3_400_000,
        trains: 351_000,
        copies: 9,
    },
    TraceProfile {
        name: "P07",
        packets: 9_100_000,
        trains: 359_000,
        copies: 9,
    },
    TraceProfile {
        name: "P08",
        packets: 7_300_000,
        trains: 307_000,
        copies: 10,
    },
];

impl TraceProfile {
    /// Looks a profile up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<TraceProfile> {
        TABLE2_PROFILES
            .iter()
            .copied()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Mean packets per train in the paper's trace.
    pub fn mean_train_len(&self) -> f64 {
        self.packets as f64 / self.trains as f64
    }

    /// Simulator configuration reproducing this trace at the given scale
    /// (`scale = 1.0` targets the paper's counts; `0.01` is laptop-sized).
    pub fn stream_config(&self, scale: f64, seed: u64) -> PacketStreamConfig {
        let duration_us = 900_000_000i64; // 15 minutes, like every MAWI extract
        let target_trains = (self.trains as f64 * scale).max(1.0);
        // Expected trains per flow ≈ duration / (train span + inter gap).
        let mean_train_len = self.mean_train_len();
        let intra = 40_000.0; // 40 ms, safely under the 500 ms cutoff
        let inter = 3_000_000.0; // 3 s silences between trains
        let train_span = (mean_train_len - 1.0).max(0.0) * intra;
        let trains_per_flow = duration_us as f64 / (train_span + inter);
        let n_flows = (target_trains / trains_per_flow).ceil().max(1.0) as u32;
        PacketStreamConfig {
            n_flows,
            duration_us,
            mean_train_len,
            mean_intra_gap_us: intra,
            mean_inter_gap_us: inter,
            seed,
        }
    }

    /// Generates the trace and constructs its packet trains at the paper's
    /// 500 ms cutoff.
    pub fn generate_trains(&self, scale: f64, seed: u64) -> Vec<Train> {
        let pkts = PacketStreamGen::new(self.stream_config(scale, seed)).generate();
        trains_from_packets(&pkts, PAPER_CUTOFF_US)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table2() {
        assert_eq!(TABLE2_PROFILES.len(), 6);
        let p04 = TraceProfile::by_name("p04").unwrap();
        assert_eq!(p04.packets, 200_000);
        assert_eq!(p04.trains, 18_000);
        assert_eq!(p04.copies, 167);
        assert!(TraceProfile::by_name("P99").is_none());
    }

    #[test]
    fn copies_roughly_reach_3m_trains() {
        // Table 2's "# Copies" column is ceil(3M / trains).
        for p in TABLE2_PROFILES {
            let implied = (3_000_000f64 / p.trains as f64).ceil() as u32;
            assert!(
                (implied as i64 - p.copies as i64).abs() <= 1,
                "{}: implied {implied}, table {}",
                p.name,
                p.copies
            );
        }
    }

    #[test]
    fn generated_train_count_tracks_profile() {
        // At 2% scale, the simulated P04 should produce ~360 trains.
        let p = TraceProfile::by_name("P04").unwrap();
        let trains = p.generate_trains(0.02, 42);
        let target = (p.trains as f64 * 0.02) as i64;
        let got = trains.len() as i64;
        assert!(
            (got - target).abs() < target / 2 + 50,
            "target ~{target}, got {got}"
        );
    }

    #[test]
    fn mean_train_length_tracks_profile() {
        let p = TraceProfile::by_name("P07").unwrap(); // ~25 pkts/train
        let trains = p.generate_trains(0.005, 7);
        let total_pkts: u64 = trains.iter().map(|t| t.packets as u64).sum();
        let mean = total_pkts as f64 / trains.len() as f64;
        assert!(
            (mean - p.mean_train_len()).abs() < p.mean_train_len() * 0.4,
            "paper mean {:.1}, simulated {mean:.1}",
            p.mean_train_len()
        );
    }

    #[test]
    fn traces_differ_in_character() {
        let a = TraceProfile::by_name("P04")
            .unwrap()
            .generate_trains(0.02, 1);
        let b = TraceProfile::by_name("P06")
            .unwrap()
            .generate_trains(0.02, 1);
        assert!(
            b.len() > a.len() * 5,
            "P06 should dwarf P04: {} vs {}",
            b.len(),
            a.len()
        );
    }
}
