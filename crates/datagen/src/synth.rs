//! The paper's synthetic interval generator (Section 6.2).
//!
//! > "We write a script to generate a set of intervals. The parameters to
//! > this script are: (a) Number of intervals (nI), (b) Distribution of
//! > start points of intervals (dS), (c) Distribution of interval length
//! > (dI), (d) Range of time-points within which all intervals lie
//! > (t_min, t_max), (e) Min and max interval lengths (i_min, i_max)."

use crate::dist::Distribution;
use ij_interval::{Interval, Relation, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic generator, mirroring the paper's script.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of intervals `nI`.
    pub n: usize,
    /// Start-point distribution `dS`.
    pub ds: Distribution,
    /// Length distribution `dI`.
    pub di: Distribution,
    /// Global time range: all intervals lie within `[t_min, t_max]`.
    pub t_min: Time,
    /// See `t_min`.
    pub t_max: Time,
    /// Minimum interval length `i_min`.
    pub i_min: i64,
    /// Maximum interval length `i_max`.
    pub i_max: i64,
    /// RNG seed; equal configs generate identical relations.
    pub seed: u64,
}

impl SynthConfig {
    /// The paper's Table 1 setting: uniform dS/dI, range `(0, 100K)`,
    /// lengths `(1, 100)`.
    pub fn table1(n: usize, seed: u64) -> Self {
        SynthConfig {
            n,
            ds: Distribution::Uniform,
            di: Distribution::Uniform,
            t_min: 0,
            t_max: 100_000,
            i_min: 1,
            i_max: 100,
            seed,
        }
    }

    /// The Figure 5(a) setting: "temporal range as 0-1000 and the maximum
    /// interval length as 100", uniform distributions.
    pub fn fig5a(n: usize, seed: u64) -> Self {
        SynthConfig {
            n,
            ds: Distribution::Uniform,
            di: Distribution::Uniform,
            t_min: 0,
            t_max: 1000,
            i_min: 1,
            i_max: 100,
            seed,
        }
    }

    /// Generates the relation.
    ///
    /// Start points are drawn from `dS` over `[t_min, t_max - len]` after
    /// drawing `len` from `dI` over `[i_min, i_max]`, guaranteeing every
    /// interval lies within the range.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (`i_min > i_max`,
    /// `i_min < 0`, or the largest interval cannot fit in the range).
    pub fn generate(&self, name: impl Into<String>) -> Relation {
        assert!(
            self.i_min >= 0 && self.i_min <= self.i_max,
            "bad length bounds"
        );
        assert!(
            self.t_min + self.i_max <= self.t_max,
            "i_max {} does not fit in range ({}, {})",
            self.i_max,
            self.t_min,
            self.t_max
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let intervals = (0..self.n).map(|_| {
            let len = self.di.sample(&mut rng, self.i_min, self.i_max);
            let s = self.ds.sample(&mut rng, self.t_min, self.t_max - len);
            Interval::new_unchecked(s, s + len)
        });
        Relation::from_intervals(name, intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_all_bounds() {
        let cfg = SynthConfig {
            n: 5000,
            ds: Distribution::Uniform,
            di: Distribution::Uniform,
            t_min: 100,
            t_max: 10_000,
            i_min: 5,
            i_max: 50,
            seed: 7,
        };
        let r = cfg.generate("R");
        assert_eq!(r.len(), 5000);
        for t in r.tuples() {
            let iv = t.interval();
            assert!(iv.start() >= 100 && iv.end() <= 10_000, "{iv}");
            assert!((5..=50).contains(&iv.len()), "{iv}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthConfig::table1(100, 3).generate("R");
        let b = SynthConfig::table1(100, 3).generate("R");
        let c = SynthConfig::table1(100, 4).generate("R");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn table1_parameters_match_paper() {
        let cfg = SynthConfig::table1(10, 0);
        assert_eq!((cfg.t_min, cfg.t_max), (0, 100_000));
        assert_eq!((cfg.i_min, cfg.i_max), (1, 100));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_lengths() {
        let cfg = SynthConfig {
            i_max: 2000,
            t_max: 1000,
            ..SynthConfig::table1(10, 0)
        };
        cfg.generate("R");
    }

    #[test]
    fn zero_length_intervals_allowed() {
        // Real-valued columns: i_min = i_max = 0.
        let cfg = SynthConfig {
            i_min: 0,
            i_max: 0,
            ..SynthConfig::table1(50, 1)
        };
        let r = cfg.generate("R");
        assert!(r.tuples().iter().all(|t| t.interval().is_point()));
    }
}
