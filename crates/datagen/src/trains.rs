//! Packet-train construction (paper Section 6.2).
//!
//! > "A packet train consists of the sequence of packets flowing from a
//! > source IP to a destination IP such that the difference between two
//! > packet arrivals (at the observation point) is less than a threshold."
//!
//! The paper uses a 500 ms inter-arrival cutoff. Each train's `[start, end]`
//! arrival times form one interval of the join relations.

use crate::packets::Packet;
use ij_interval::{Interval, Relation, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The paper's inter-arrival cutoff: 500 ms in microseconds.
pub const PAPER_CUTOFF_US: i64 = 500_000;

/// One packet train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Train {
    /// The flow the train belongs to.
    pub flow: u32,
    /// Arrival time of the first packet.
    pub start_us: Time,
    /// Arrival time of the last packet.
    pub end_us: Time,
    /// Number of packets in the train.
    pub packets: u32,
}

impl Train {
    /// The train's duration interval — the join attribute.
    pub fn interval(&self) -> Interval {
        Interval::new_unchecked(self.start_us, self.end_us)
    }
}

/// Splits packets into trains: per flow, a new train begins whenever the
/// gap from the previous packet is `>= cutoff_us`.
///
/// Packets may arrive in any order; they are grouped by flow and sorted by
/// timestamp first (the observation point interleaves flows).
pub fn trains_from_packets(packets: &[Packet], cutoff_us: i64) -> Vec<Train> {
    assert!(cutoff_us > 0, "cutoff must be positive");
    let mut by_flow: BTreeMap<u32, Vec<i64>> = BTreeMap::new();
    for p in packets {
        by_flow.entry(p.flow).or_default().push(p.ts_us);
    }
    let mut trains = Vec::new();
    for (flow, mut ts) in by_flow {
        ts.sort_unstable();
        let mut start = ts[0];
        let mut prev = ts[0];
        let mut count = 1u32;
        for &t in &ts[1..] {
            if t - prev >= cutoff_us {
                trains.push(Train {
                    flow,
                    start_us: start,
                    end_us: prev,
                    packets: count,
                });
                start = t;
                count = 0;
            }
            prev = t;
            count += 1;
        }
        trains.push(Train {
            flow,
            start_us: start,
            end_us: prev,
            packets: count,
        });
    }
    trains.sort_by_key(|t| (t.start_us, t.flow));
    trains
}

/// Builds a single-attribute relation from train durations.
pub fn trains_relation(name: impl Into<String>, trains: &[Train]) -> Relation {
    Relation::from_intervals(name, trains.iter().map(Train::interval))
}

/// Replicates trains until `target` is reached (paper Section 6.2:
/// "we generate a larger data containing 3 million packet trains by
/// replicating the original data"). Copy `k` is shifted by `k · jitter_us`
/// so replication densifies the trace without collapsing copies onto
/// identical timestamps.
pub fn replicate_to(trains: &[Train], target: usize, jitter_us: i64) -> Vec<Train> {
    assert!(!trains.is_empty(), "cannot replicate an empty train set");
    let mut out = Vec::with_capacity(target);
    let mut copy = 0i64;
    while out.len() < target {
        let shift = copy * jitter_us;
        for t in trains {
            if out.len() >= target {
                break;
            }
            out.push(Train {
                flow: t.flow,
                start_us: t.start_us + shift,
                end_us: t.end_us + shift,
                packets: t.packets,
            });
        }
        copy += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u32, ts: i64) -> Packet {
        Packet { flow, ts_us: ts }
    }

    #[test]
    fn splits_on_cutoff() {
        // Flow 0: gaps 100, 600 (split), 50.
        let pkts = vec![pkt(0, 0), pkt(0, 100), pkt(0, 700), pkt(0, 750)];
        let trains = trains_from_packets(&pkts, 500);
        assert_eq!(trains.len(), 2);
        assert_eq!(
            (trains[0].start_us, trains[0].end_us, trains[0].packets),
            (0, 100, 2)
        );
        assert_eq!(
            (trains[1].start_us, trains[1].end_us, trains[1].packets),
            (700, 750, 2)
        );
    }

    #[test]
    fn gap_exactly_cutoff_splits() {
        // "difference … less than a threshold" keeps packets together, so a
        // gap equal to the cutoff starts a new train.
        let pkts = vec![pkt(0, 0), pkt(0, 500)];
        assert_eq!(trains_from_packets(&pkts, 500).len(), 2);
        let pkts = vec![pkt(0, 0), pkt(0, 499)];
        assert_eq!(trains_from_packets(&pkts, 500).len(), 1);
    }

    #[test]
    fn flows_are_independent() {
        // Interleaved flows must not merge.
        let pkts = vec![pkt(0, 0), pkt(1, 10), pkt(0, 20), pkt(1, 30)];
        let trains = trains_from_packets(&pkts, 500);
        assert_eq!(trains.len(), 2);
        assert_eq!(trains.iter().map(|t| t.packets).sum::<u32>(), 4);
    }

    #[test]
    fn single_packet_train() {
        let trains = trains_from_packets(&[pkt(3, 42)], 500);
        assert_eq!(trains.len(), 1);
        let t = trains[0];
        assert_eq!((t.start_us, t.end_us, t.packets), (42, 42, 1));
        assert!(t.interval().is_point());
    }

    #[test]
    fn unsorted_input_handled() {
        let pkts = vec![pkt(0, 700), pkt(0, 0), pkt(0, 100), pkt(0, 750)];
        let trains = trains_from_packets(&pkts, 500);
        assert_eq!(trains.len(), 2);
    }

    #[test]
    fn packet_counts_conserved() {
        let pkts: Vec<Packet> = (0..100).map(|i| pkt(i % 5, (i as i64) * 333)).collect();
        let trains = trains_from_packets(&pkts, 500);
        assert_eq!(
            trains.iter().map(|t| t.packets as usize).sum::<usize>(),
            100
        );
    }

    #[test]
    fn relation_carries_durations() {
        let pkts = vec![pkt(0, 0), pkt(0, 100)];
        let trains = trains_from_packets(&pkts, 500);
        let rel = trains_relation("P04", &trains);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuple(0).interval(), Interval::new(0, 100).unwrap());
    }

    #[test]
    fn replicate_reaches_target_with_shifts() {
        let base = trains_from_packets(&[pkt(0, 0), pkt(0, 100)], 500);
        let big = replicate_to(&base, 5, 7);
        assert_eq!(big.len(), 5);
        assert_eq!(big[0].start_us, 0);
        assert_eq!(big[1].start_us, 7);
        assert_eq!(big[4].start_us, 28);
    }

    #[test]
    #[should_panic(expected = "cutoff must be positive")]
    fn zero_cutoff_rejected() {
        trains_from_packets(&[pkt(0, 0)], 0);
    }
}
