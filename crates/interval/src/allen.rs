//! Allen's interval algebra (paper Figure 1).
//!
//! Allen's algebra defines thirteen mutually exclusive, jointly exhaustive
//! relations between two intervals. The paper classifies them into two
//! groups:
//!
//! * **colocation predicates** — the two intervals share at least one common
//!   point (*overlaps*, *contains*, *meets*, *starts*, *finishes*, *equals*
//!   and their inverses). These are "likened to equality predicates" on
//!   real-valued data.
//! * **sequence predicates** — the two intervals are disjoint (*before*,
//!   *after*). These are "likened to theta/inequality predicates".
//!
//! Each predicate also induces a *less-than order* between its operand
//! relations (paper Section 5.1 and the footer of Figure 1): for every
//! satisfying pair, one operand's start point is `<=` the other's. All the
//! partition-pruning machinery of the paper builds on this order.

use crate::interval::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Bound;
use std::str::FromStr;

/// The thirteen relations of Allen's interval algebra.
///
/// Naming follows the paper's Figure 1: `P(r1, r2)` reads "`r1` *P* `r2`",
/// e.g. `Overlaps.holds(u, v)` is true when `u` overlaps `v` (and *not* the
/// other way around — `OverlappedBy` is the converse relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllenPredicate {
    /// `r1` ends strictly before `r2` starts: `e1 < s2`. Sequence predicate.
    Before,
    /// Converse of [`Before`](Self::Before): `e2 < s1`. Sequence predicate.
    After,
    /// `s1 < s2 && s2 < e1 && e1 < e2`: `r1` starts first, the two share
    /// more than a point, and `r1` ends first — the strict classical
    /// definition. The boundary case `s2 == e1` is [`Meets`](Self::Meets),
    /// which keeps the thirteen relations disjoint and exhaustive.
    Overlaps,
    /// Converse of [`Overlaps`](Self::Overlaps).
    OverlappedBy,
    /// `s1 < s2 && e2 < e1`: `r1` strictly contains `r2`.
    Contains,
    /// Converse of [`Contains`](Self::Contains).
    ContainedBy,
    /// `e1 == s2`: `r1` ends exactly where `r2` starts.
    Meets,
    /// Converse of [`Meets`](Self::Meets): `e2 == s1`.
    MetBy,
    /// `s1 == s2 && e1 < e2`: same start, `r1` ends first.
    Starts,
    /// Converse of [`Starts`](Self::Starts): `s1 == s2 && e2 < e1`.
    StartedBy,
    /// `e1 == e2 && s2 < s1`: same end, `r1` starts later.
    Finishes,
    /// Converse of [`Finishes`](Self::Finishes): `e1 == e2 && s1 < s2`.
    FinishedBy,
    /// `s1 == s2 && e1 == e2`.
    Equals,
}

/// The paper's two-way classification of Allen predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredicateClass {
    /// The operands share at least one common point.
    Colocation,
    /// The operands are disjoint (*before* / *after*).
    Sequence,
}

/// Which operand relation is "less-than" the other under a predicate
/// (paper Figure 1 footer and Section 5.1).
///
/// `LeftFirst` means: for every satisfying pair `(r1, r2)`,
/// `r1.start <= r2.start` — relation `R1 < R2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandOrder {
    /// `R1 < R2` — the left operand starts no later than the right.
    LeftFirst,
    /// `R2 < R1` — the right operand starts no later than the left.
    RightFirst,
}

impl OperandOrder {
    /// The order with operands swapped.
    pub fn flip(self) -> OperandOrder {
        match self {
            OperandOrder::LeftFirst => OperandOrder::RightFirst,
            OperandOrder::RightFirst => OperandOrder::LeftFirst,
        }
    }
}

/// The map-side routing operation a 2-way join applies to one relation
/// (paper Section 3 / Figure 1, column 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapOp {
    /// Send the interval to the single partition containing its start point.
    Project,
    /// Send the interval to every partition it intersects.
    Split,
    /// Send the interval to its start partition and every later partition.
    Replicate,
}

impl AllenPredicate {
    /// All thirteen predicates, in Figure 1 order.
    pub const ALL: [AllenPredicate; 13] = [
        AllenPredicate::Before,
        AllenPredicate::After,
        AllenPredicate::Overlaps,
        AllenPredicate::OverlappedBy,
        AllenPredicate::Contains,
        AllenPredicate::ContainedBy,
        AllenPredicate::Meets,
        AllenPredicate::MetBy,
        AllenPredicate::Starts,
        AllenPredicate::StartedBy,
        AllenPredicate::Finishes,
        AllenPredicate::FinishedBy,
        AllenPredicate::Equals,
    ];

    /// Evaluates `r1 self r2`.
    #[inline]
    pub fn holds(self, r1: Interval, r2: Interval) -> bool {
        let (s1, e1, s2, e2) = (r1.start(), r1.end(), r2.start(), r2.end());
        match self {
            AllenPredicate::Before => e1 < s2,
            AllenPredicate::After => e2 < s1,
            AllenPredicate::Overlaps => s1 < s2 && s2 < e1 && e1 < e2,
            AllenPredicate::OverlappedBy => s2 < s1 && s1 < e2 && e2 < e1,
            AllenPredicate::Contains => s1 < s2 && e2 < e1,
            AllenPredicate::ContainedBy => s2 < s1 && e1 < e2,
            AllenPredicate::Meets => e1 == s2 && s1 < s2 && e1 < e2,
            AllenPredicate::MetBy => e2 == s1 && s2 < s1 && e2 < e1,
            AllenPredicate::Starts => s1 == s2 && e1 < e2,
            AllenPredicate::StartedBy => s1 == s2 && e2 < e1,
            AllenPredicate::Finishes => e1 == e2 && s2 < s1,
            AllenPredicate::FinishedBy => e1 == e2 && s1 < s2,
            AllenPredicate::Equals => s1 == s2 && e1 == e2,
        }
    }

    /// Classifies the (unique) Allen relation holding between `r1` and `r2`.
    ///
    /// The thirteen relations are mutually exclusive and jointly exhaustive,
    /// so exactly one holds; this is property-tested.
    pub fn relate(r1: Interval, r2: Interval) -> AllenPredicate {
        use std::cmp::Ordering::*;
        let (s1, e1, s2, e2) = (r1.start(), r1.end(), r2.start(), r2.end());
        match (s1.cmp(&s2), e1.cmp(&e2)) {
            (Equal, Equal) => AllenPredicate::Equals,
            (Equal, Less) => AllenPredicate::Starts,
            (Equal, Greater) => AllenPredicate::StartedBy,
            (Less, Equal) => AllenPredicate::FinishedBy,
            (Greater, Equal) => AllenPredicate::Finishes,
            (Less, Greater) => AllenPredicate::Contains,
            (Greater, Less) => AllenPredicate::ContainedBy,
            (Less, Less) => {
                if e1 < s2 {
                    AllenPredicate::Before
                } else if e1 == s2 {
                    AllenPredicate::Meets
                } else {
                    AllenPredicate::Overlaps
                }
            }
            (Greater, Greater) => {
                if e2 < s1 {
                    AllenPredicate::After
                } else if e2 == s1 {
                    AllenPredicate::MetBy
                } else {
                    AllenPredicate::OverlappedBy
                }
            }
        }
    }

    /// The converse relation: `inverse(P).holds(r2, r1) == P.holds(r1, r2)`.
    pub fn inverse(self) -> AllenPredicate {
        match self {
            AllenPredicate::Before => AllenPredicate::After,
            AllenPredicate::After => AllenPredicate::Before,
            AllenPredicate::Overlaps => AllenPredicate::OverlappedBy,
            AllenPredicate::OverlappedBy => AllenPredicate::Overlaps,
            AllenPredicate::Contains => AllenPredicate::ContainedBy,
            AllenPredicate::ContainedBy => AllenPredicate::Contains,
            AllenPredicate::Meets => AllenPredicate::MetBy,
            AllenPredicate::MetBy => AllenPredicate::Meets,
            AllenPredicate::Starts => AllenPredicate::StartedBy,
            AllenPredicate::StartedBy => AllenPredicate::Starts,
            AllenPredicate::Finishes => AllenPredicate::FinishedBy,
            AllenPredicate::FinishedBy => AllenPredicate::Finishes,
            AllenPredicate::Equals => AllenPredicate::Equals,
        }
    }

    /// The paper's colocation/sequence classification.
    pub fn class(self) -> PredicateClass {
        match self {
            AllenPredicate::Before | AllenPredicate::After => PredicateClass::Sequence,
            _ => PredicateClass::Colocation,
        }
    }

    /// Convenience: `class() == Colocation`.
    pub fn is_colocation(self) -> bool {
        self.class() == PredicateClass::Colocation
    }

    /// Convenience: `class() == Sequence`.
    pub fn is_sequence(self) -> bool {
        self.class() == PredicateClass::Sequence
    }

    /// The less-than order the predicate enforces between its operand
    /// relations (Figure 1 footer: *finishes*/*met-by*-style converses put
    /// `R2` first; everything else puts `R1` first; *starts*/*equals*
    /// families have equal starts, for which either order is valid — we
    /// follow the paper and report `R1 < R2`).
    pub fn operand_order(self) -> OperandOrder {
        match self {
            AllenPredicate::Before
            | AllenPredicate::Overlaps
            | AllenPredicate::Contains
            | AllenPredicate::Meets
            | AllenPredicate::FinishedBy
            | AllenPredicate::Starts
            | AllenPredicate::StartedBy
            | AllenPredicate::Equals => OperandOrder::LeftFirst,
            AllenPredicate::After
            | AllenPredicate::OverlappedBy
            | AllenPredicate::ContainedBy
            | AllenPredicate::MetBy
            | AllenPredicate::Finishes => OperandOrder::RightFirst,
        }
    }

    /// Whether the predicate forces the operands' start points to be
    /// *strictly* ordered (as opposed to `<=`). Used by the sound
    /// component-order inference in `ij-query`.
    pub fn start_order_strict(self) -> bool {
        !matches!(
            self,
            AllenPredicate::Starts | AllenPredicate::StartedBy | AllenPredicate::Equals
        )
    }

    /// The pair of map-side operations a 2-way MR join uses for
    /// `R1 self R2` — `(op on R1, op on R2)` (paper Figure 1, column 3).
    ///
    /// Derivation (Section 4 logic): the relation that is *greater* in the
    /// less-than order is **projected** — the output tuple is computed at the
    /// reducer its start point lands on. The lesser relation must be routed
    /// so it reaches that reducer:
    ///
    /// * for sequence predicates the partner can start arbitrarily far to
    ///   the right, so the lesser relation is **replicated**;
    /// * for colocation predicates where the greater relation's start point
    ///   lies *inside* the lesser interval (*overlaps*, *contains*, *meets*,
    ///   *finishes* families), **splitting** the lesser relation already
    ///   covers that reducer;
    /// * when start points coincide (*starts*, *equals* families) both sides
    ///   can simply be **projected**.
    ///
    /// Note: the paper's Figure 1 as printed lists `Proj & Proj` for the
    /// *meets* and *finishes* rows; that loses outputs whenever the lesser
    /// interval crosses a partition boundary (its start partition differs
    /// from the greater interval's). We use the corrected `Split` ops, which
    /// are property-tested against a nested-loop oracle.
    pub fn map_ops(self) -> (MapOp, MapOp) {
        use AllenPredicate::*;
        use MapOp::*;
        match self {
            Before => (Replicate, Project),
            After => (Project, Replicate),
            Overlaps | Contains | Meets | FinishedBy => (Split, Project),
            OverlappedBy | ContainedBy | MetBy | Finishes => (Project, Split),
            Starts | StartedBy | Equals => (Project, Project),
        }
    }

    /// Bounds on the start point of the **right** operand `r2`, given the
    /// left operand `r1`, for `r1 self r2` to possibly hold.
    ///
    /// Used by the reducer-side backtracking join executor to binary-search
    /// candidate windows in start-sorted relations. The bounds are sound
    /// (never exclude a satisfying `r2`) and for most predicates tight.
    pub fn right_start_bounds(self, r1: Interval) -> (Bound<Time>, Bound<Time>) {
        use AllenPredicate::*;
        use Bound::*;
        let (s1, e1) = (r1.start(), r1.end());
        match self {
            Before => (Excluded(e1), Unbounded),
            After => (Unbounded, Excluded(s1)),
            Overlaps => (Excluded(s1), Excluded(e1)),
            OverlappedBy => (Unbounded, Excluded(s1)),
            Contains => (Excluded(s1), Excluded(e1)),
            ContainedBy => (Unbounded, Excluded(s1)),
            Meets => (Included(e1), Included(e1)),
            MetBy => (Unbounded, Excluded(s1)),
            Starts | StartedBy | Equals => (Included(s1), Included(s1)),
            Finishes => (Unbounded, Excluded(s1)),
            FinishedBy => (Excluded(s1), Included(e1)),
        }
    }

    /// Human-readable lower-case name (also accepted by [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            AllenPredicate::Before => "before",
            AllenPredicate::After => "after",
            AllenPredicate::Overlaps => "overlaps",
            AllenPredicate::OverlappedBy => "overlapped-by",
            AllenPredicate::Contains => "contains",
            AllenPredicate::ContainedBy => "contained-by",
            AllenPredicate::Meets => "meets",
            AllenPredicate::MetBy => "met-by",
            AllenPredicate::Starts => "starts",
            AllenPredicate::StartedBy => "started-by",
            AllenPredicate::Finishes => "finishes",
            AllenPredicate::FinishedBy => "finished-by",
            AllenPredicate::Equals => "equals",
        }
    }
}

impl fmt::Display for AllenPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an [`AllenPredicate`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePredicateError(pub String);

impl fmt::Display for ParsePredicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown Allen predicate: {:?}", self.0)
    }
}

impl std::error::Error for ParsePredicateError {}

impl FromStr for AllenPredicate {
    type Err = ParsePredicateError;

    /// Accepts the Figure 1 names (case-insensitive, `-`/`_` interchangeable)
    /// plus the real-valued comparison aliases of Section 9: `<` / `>` / `=`
    /// map to *before* / *after* / *equals*, and `during` to *contained-by*.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        Ok(match norm.as_str() {
            "before" | "<" => AllenPredicate::Before,
            "after" | ">" => AllenPredicate::After,
            "overlaps" | "overlap" => AllenPredicate::Overlaps,
            "overlapped-by" | "overlappedby" => AllenPredicate::OverlappedBy,
            "contains" => AllenPredicate::Contains,
            "contained-by" | "containedby" | "during" => AllenPredicate::ContainedBy,
            "meets" => AllenPredicate::Meets,
            "met-by" | "metby" => AllenPredicate::MetBy,
            "starts" => AllenPredicate::Starts,
            "started-by" | "startedby" => AllenPredicate::StartedBy,
            "finishes" => AllenPredicate::Finishes,
            "finished-by" | "finishedby" => AllenPredicate::FinishedBy,
            "equals" | "equal" | "=" | "==" => AllenPredicate::Equals,
            _ => return Err(ParsePredicateError(s.to_string())),
        })
    }
}

/// Checks whether a point `t` satisfies bounds produced by
/// [`AllenPredicate::right_start_bounds`].
pub fn bounds_contain(bounds: (Bound<Time>, Bound<Time>), t: Time) -> bool {
    let lower_ok = match bounds.0 {
        Bound::Unbounded => true,
        Bound::Included(lo) => t >= lo,
        Bound::Excluded(lo) => t > lo,
    };
    let upper_ok = match bounds.1 {
        Bound::Unbounded => true,
        Bound::Included(hi) => t <= hi,
        Bound::Excluded(hi) => t < hi,
    };
    lower_ok && upper_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: Time, e: Time) -> Interval {
        Interval::new(s, e).unwrap()
    }

    /// The canonical examples from Figure 1, one per relation family.
    #[test]
    fn figure1_examples() {
        use AllenPredicate::*;
        // before / after
        assert!(Before.holds(iv(0, 2), iv(5, 7)));
        assert!(After.holds(iv(5, 7), iv(0, 2)));
        // overlaps / overlapped-by
        assert!(Overlaps.holds(iv(0, 5), iv(3, 8)));
        assert!(OverlappedBy.holds(iv(3, 8), iv(0, 5)));
        // contains / contained-by
        assert!(Contains.holds(iv(0, 10), iv(2, 6)));
        assert!(ContainedBy.holds(iv(2, 6), iv(0, 10)));
        // meets / met-by
        assert!(Meets.holds(iv(0, 4), iv(4, 9)));
        assert!(MetBy.holds(iv(4, 9), iv(0, 4)));
        // starts / started-by
        assert!(Starts.holds(iv(0, 4), iv(0, 9)));
        assert!(StartedBy.holds(iv(0, 9), iv(0, 4)));
        // finishes / finished-by
        assert!(Finishes.holds(iv(5, 9), iv(0, 9)));
        assert!(FinishedBy.holds(iv(0, 9), iv(5, 9)));
        // equals
        assert!(Equals.holds(iv(2, 7), iv(2, 7)));
    }

    #[test]
    fn relate_matches_holds_on_examples() {
        let cases = [
            (iv(0, 2), iv(5, 7), AllenPredicate::Before),
            (iv(5, 7), iv(0, 2), AllenPredicate::After),
            (iv(0, 5), iv(3, 8), AllenPredicate::Overlaps),
            (iv(3, 8), iv(0, 5), AllenPredicate::OverlappedBy),
            (iv(0, 10), iv(2, 6), AllenPredicate::Contains),
            (iv(2, 6), iv(0, 10), AllenPredicate::ContainedBy),
            (iv(0, 4), iv(4, 9), AllenPredicate::Meets),
            (iv(4, 9), iv(0, 4), AllenPredicate::MetBy),
            (iv(0, 4), iv(0, 9), AllenPredicate::Starts),
            (iv(0, 9), iv(0, 4), AllenPredicate::StartedBy),
            (iv(5, 9), iv(0, 9), AllenPredicate::Finishes),
            (iv(0, 9), iv(5, 9), AllenPredicate::FinishedBy),
            (iv(2, 7), iv(2, 7), AllenPredicate::Equals),
        ];
        for (a, b, expect) in cases {
            assert_eq!(AllenPredicate::relate(a, b), expect, "{a} vs {b}");
            assert!(expect.holds(a, b));
        }
    }

    #[test]
    fn exactly_one_predicate_holds() {
        // Small exhaustive sweep: all intervals with endpoints in 0..=4.
        let mut ivs = Vec::new();
        for s in 0..=4 {
            for e in s..=4 {
                ivs.push(iv(s, e));
            }
        }
        for &a in &ivs {
            for &b in &ivs {
                let holding: Vec<_> = AllenPredicate::ALL
                    .iter()
                    .filter(|p| p.holds(a, b))
                    .collect();
                assert_eq!(holding.len(), 1, "{a} vs {b}: {holding:?}");
                assert_eq!(*holding[0], AllenPredicate::relate(a, b));
            }
        }
    }

    #[test]
    fn inverse_is_converse() {
        let mut ivs = Vec::new();
        for s in 0..=4 {
            for e in s..=4 {
                ivs.push(iv(s, e));
            }
        }
        for &a in &ivs {
            for &b in &ivs {
                for p in AllenPredicate::ALL {
                    assert_eq!(p.holds(a, b), p.inverse().holds(b, a), "{p} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn inverse_is_involution() {
        for p in AllenPredicate::ALL {
            assert_eq!(p.inverse().inverse(), p);
        }
    }

    #[test]
    fn classification_matches_paper() {
        use AllenPredicate::*;
        assert!(Before.is_sequence());
        assert!(After.is_sequence());
        for p in [
            Overlaps,
            OverlappedBy,
            Contains,
            ContainedBy,
            Meets,
            MetBy,
            Starts,
            StartedBy,
            Finishes,
            FinishedBy,
            Equals,
        ] {
            assert!(p.is_colocation(), "{p}");
        }
    }

    #[test]
    fn colocation_implies_shared_point_sequence_implies_disjoint() {
        let mut ivs = Vec::new();
        for s in 0..=5 {
            for e in s..=5 {
                ivs.push(iv(s, e));
            }
        }
        for &a in &ivs {
            for &b in &ivs {
                let p = AllenPredicate::relate(a, b);
                match p.class() {
                    PredicateClass::Colocation => {
                        assert!(a.intersects(b), "{p}: {a} {b} must share a point")
                    }
                    PredicateClass::Sequence => {
                        assert!(!a.intersects(b), "{p}: {a} {b} must be disjoint")
                    }
                }
            }
        }
    }

    #[test]
    fn operand_order_respects_start_points() {
        let mut ivs = Vec::new();
        for s in 0..=5 {
            for e in s..=5 {
                ivs.push(iv(s, e));
            }
        }
        for &a in &ivs {
            for &b in &ivs {
                for p in AllenPredicate::ALL {
                    if p.holds(a, b) {
                        match p.operand_order() {
                            OperandOrder::LeftFirst => {
                                assert!(a.less_than(b), "{p}: {a} should be <= {b}")
                            }
                            OperandOrder::RightFirst => {
                                assert!(b.less_than(a), "{p}: {b} should be <= {a}")
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn figure1_footer_orders() {
        use AllenPredicate::*;
        // "Finishes(r1,r2) & FinishedBy(r2,r1): R2 < R1, Others: R1 < R2"
        assert_eq!(Finishes.operand_order(), OperandOrder::RightFirst);
        assert_eq!(FinishedBy.operand_order(), OperandOrder::LeftFirst);
        assert_eq!(Before.operand_order(), OperandOrder::LeftFirst);
        assert_eq!(Overlaps.operand_order(), OperandOrder::LeftFirst);
        assert_eq!(Contains.operand_order(), OperandOrder::LeftFirst);
    }

    #[test]
    fn right_start_bounds_are_sound() {
        let mut ivs = Vec::new();
        for s in 0..=5 {
            for e in s..=5 {
                ivs.push(iv(s, e));
            }
        }
        for &a in &ivs {
            for &b in &ivs {
                for p in AllenPredicate::ALL {
                    if p.holds(a, b) {
                        let bounds = p.right_start_bounds(a);
                        assert!(
                            bounds_contain(bounds, b.start()),
                            "{p}: bounds for {a} exclude satisfying {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for p in AllenPredicate::ALL {
            assert_eq!(p.name().parse::<AllenPredicate>().unwrap(), p);
        }
        assert_eq!(
            "OVERLAPS".parse::<AllenPredicate>().unwrap(),
            AllenPredicate::Overlaps
        );
        assert_eq!(
            "met_by".parse::<AllenPredicate>().unwrap(),
            AllenPredicate::MetBy
        );
        assert_eq!(
            "<".parse::<AllenPredicate>().unwrap(),
            AllenPredicate::Before
        );
        assert_eq!(
            "=".parse::<AllenPredicate>().unwrap(),
            AllenPredicate::Equals
        );
        assert_eq!(
            "during".parse::<AllenPredicate>().unwrap(),
            AllenPredicate::ContainedBy
        );
        assert!("sideways".parse::<AllenPredicate>().is_err());
    }

    #[test]
    fn point_intervals_reduce_to_real_valued_semantics() {
        // Paper Section 1: "as the intervals are reduced to length 0, all
        // colocation predicates reduce to equality ... while all sequence
        // predicates reduce to inequality".
        for x in 0..5 {
            for y in 0..5 {
                let a = Interval::point(x);
                let b = Interval::point(y);
                let p = AllenPredicate::relate(a, b);
                if x == y {
                    assert_eq!(p, AllenPredicate::Equals);
                } else if x < y {
                    assert_eq!(p, AllenPredicate::Before);
                } else {
                    assert_eq!(p, AllenPredicate::After);
                }
            }
        }
    }
}
