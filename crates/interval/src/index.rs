//! A static interval index for intersection ("stabbing") queries.
//!
//! The classic single-node data structure for interval joins: intervals are
//! sorted by start point and overlaid with an implicit binary tree storing
//! each subtree's maximum end point. A query for all intervals intersecting
//! `[qs, qe]` descends the tree, pruning
//!
//! * subtrees whose maximum end is `< qs` (nothing reaches the query), and
//! * the right siblings of any node whose start is `> qe` (starts are
//!   sorted, so nothing further can start early enough).
//!
//! Construction is `O(n log n)`, a query is `O(log n + k)` for `k` results.
//! `ij-core` uses it as an independent third implementation of the 2-way
//! join oracle; it is also the structure a reducer would use for the
//! half-open candidate windows (the *overlapped-by* direction) where a
//! start-sorted binary search alone cannot prune.

use crate::interval::{Interval, Time};

/// A static index over a set of intervals supporting intersection queries.
#[derive(Debug, Clone)]
pub struct IntervalIndex<T> {
    /// Entries sorted by interval start.
    entries: Vec<(Interval, T)>,
    /// `max_end[i]` — the maximum end point within the segment-tree node
    /// covering `i`'s range (1-based heap layout over `entries`).
    max_end: Vec<Time>,
}

impl<T: Clone> IntervalIndex<T> {
    /// Builds the index.
    pub fn build(items: impl IntoIterator<Item = (Interval, T)>) -> Self {
        let mut entries: Vec<(Interval, T)> = items.into_iter().collect();
        entries.sort_by_key(|(iv, _)| iv.start());
        let n = entries.len();
        // Heap-layout segment tree of max end points (size 2 * next pow2).
        let size = n.next_power_of_two().max(1);
        let mut max_end = vec![Time::MIN; 2 * size];
        for (i, (iv, _)) in entries.iter().enumerate() {
            max_end[size + i] = iv.end();
        }
        for i in (1..size).rev() {
            max_end[i] = max_end[2 * i].max(max_end[2 * i + 1]);
        }
        IntervalIndex { entries, max_end }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Visits every `(interval, payload)` whose interval shares at least
    /// one point with `query`.
    pub fn for_each_intersecting(&self, query: Interval, mut f: impl FnMut(Interval, &T)) {
        if self.entries.is_empty() {
            return;
        }
        let size = self.max_end.len() / 2;
        // Iterative descent with an explicit stack of tree nodes.
        let mut stack = vec![(1usize, 0usize, size)]; // (node, lo, hi) over entry slots
        while let Some((node, lo, hi)) = stack.pop() {
            if lo >= self.entries.len() {
                continue;
            }
            // Prune: nothing in this subtree ends at or after query.start.
            if self.max_end[node] < query.start() {
                continue;
            }
            // Prune: nothing in this subtree starts at or before query.end
            // (starts are sorted, so the leftmost start is the minimum).
            if self.entries[lo].0.start() > query.end() {
                continue;
            }
            if hi - lo == 1 {
                let (iv, payload) = &self.entries[lo];
                if iv.intersects(query) {
                    f(*iv, payload);
                }
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            // Push right first so the left child is processed first (keeps
            // visitation in ascending start order).
            stack.push((2 * node + 1, mid, hi));
            stack.push((2 * node, lo, mid));
        }
    }

    /// Collects every payload whose interval intersects `query`.
    pub fn intersecting(&self, query: Interval) -> Vec<(Interval, T)> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, |iv, t| out.push((iv, t.clone())));
        out
    }

    /// Collects every payload whose interval contains the point `t`.
    pub fn stabbing(&self, t: Time) -> Vec<(Interval, T)> {
        self.intersecting(Interval::point(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: Time, e: Time) -> Interval {
        Interval::new(s, e).unwrap()
    }

    fn brute(items: &[(Interval, u32)], q: Interval) -> Vec<(Interval, u32)> {
        let mut out: Vec<_> = items
            .iter()
            .filter(|(i, _)| i.intersects(q))
            .copied()
            .collect();
        out.sort_by_key(|(i, t)| (i.start(), *t));
        out
    }

    #[test]
    fn finds_intersections_in_start_order() {
        let items = vec![
            (iv(0, 10), 0u32),
            (iv(5, 7), 1),
            (iv(12, 20), 2),
            (iv(15, 16), 3),
            (iv(30, 40), 4),
        ];
        let idx = IntervalIndex::build(items.clone());
        assert_eq!(idx.intersecting(iv(6, 13)), brute(&items, iv(6, 13)));
        assert_eq!(idx.intersecting(iv(21, 29)), vec![]);
        assert_eq!(idx.stabbing(15).len(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        let idx: IntervalIndex<u32> = IntervalIndex::build(vec![]);
        assert!(idx.is_empty());
        assert_eq!(idx.intersecting(iv(0, 100)), vec![]);
        let idx = IntervalIndex::build(vec![(iv(5, 9), 7u32)]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.stabbing(5), vec![(iv(5, 9), 7)]);
        assert_eq!(idx.stabbing(4), vec![]);
    }

    #[test]
    fn matches_brute_force_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..30 {
            let n = rng.gen_range(1..200);
            let items: Vec<(Interval, u32)> = (0..n)
                .map(|t| {
                    let s = rng.gen_range(0..500);
                    (iv(s, s + rng.gen_range(0..80)), t)
                })
                .collect();
            let idx = IntervalIndex::build(items.clone());
            for _ in 0..20 {
                let s = rng.gen_range(0..500);
                let q = iv(s, s + rng.gen_range(0..100));
                assert_eq!(idx.intersecting(q), brute(&items, q), "round {round}");
            }
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 2, 3, 5, 7, 15, 17, 100] {
            let items: Vec<(Interval, u32)> = (0..n)
                .map(|i| (iv(i as Time * 3, i as Time * 3 + 4), i as u32))
                .collect();
            let idx = IntervalIndex::build(items.clone());
            let q = iv(0, 1000);
            assert_eq!(idx.intersecting(q).len(), n);
        }
    }

    #[test]
    fn duplicate_intervals_all_reported() {
        let items = vec![(iv(1, 5), 0u32), (iv(1, 5), 1), (iv(1, 5), 2)];
        let idx = IntervalIndex::build(items);
        assert_eq!(idx.stabbing(3).len(), 3);
    }
}
