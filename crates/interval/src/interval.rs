//! The [`Interval`] type: a closed range `[start, end]` of time points.
//!
//! The paper (Section 1) represents an interval as the range `[t_s, t_e]`
//! which "consists of a start point `t_s` and an end point `t_e` and includes
//! all points in-between including `t_s` and `t_e`" — i.e. intervals are
//! *closed* on both sides. A real-valued data point is an interval of length
//! zero (`start == end`), which is how the multi-attribute algorithm of
//! Section 9 folds real-valued attributes into the interval machinery.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A discrete time point.
///
/// The paper treats time as a totally ordered domain; packet-train timestamps
/// are microseconds, synthetic data uses integer ticks. A signed 64-bit
/// integer covers both with room for arithmetic on boundaries.
pub type Time = i64;

/// Error constructing an [`Interval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalError {
    /// `end` was smaller than `start`.
    EndBeforeStart { start: Time, end: Time },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::EndBeforeStart { start, end } => {
                write!(f, "interval end {end} precedes start {start}")
            }
        }
    }
}

impl std::error::Error for IntervalError {}

/// A closed interval `[start, end]` over [`Time`] points.
///
/// Invariant: `start <= end`. A point (length-0 interval) has
/// `start == end`; this is how real-valued attributes are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    start: Time,
    end: Time,
}

impl Interval {
    /// Creates `[start, end]`, rejecting `end < start`.
    pub fn new(start: Time, end: Time) -> Result<Self, IntervalError> {
        if end < start {
            Err(IntervalError::EndBeforeStart { start, end })
        } else {
            Ok(Interval { start, end })
        }
    }

    /// Creates `[start, end]` without checking the invariant.
    ///
    /// # Panics
    /// Panics in debug builds if `end < start`.
    #[inline]
    pub fn new_unchecked(start: Time, end: Time) -> Self {
        debug_assert!(start <= end, "interval end {end} precedes start {start}");
        Interval { start, end }
    }

    /// A length-0 interval `[t, t]` — the representation of a real value.
    #[inline]
    pub fn point(t: Time) -> Self {
        Interval { start: t, end: t }
    }

    /// The start point `t_s`.
    #[inline]
    pub fn start(self) -> Time {
        self.start
    }

    /// The end point `t_e`.
    #[inline]
    pub fn end(self) -> Time {
        self.end
    }

    /// `end - start`. A point interval has length 0.
    ///
    /// (`is_empty` is deliberately absent: a closed interval always
    /// contains at least one point.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> i64 {
        self.end - self.start
    }

    /// Whether this is a length-0 (point / real-valued) interval.
    #[inline]
    pub fn is_point(self) -> bool {
        self.start == self.end
    }

    /// Whether time point `t` lies inside the closed interval.
    #[inline]
    pub fn contains_point(self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether the two closed intervals share at least one common point.
    ///
    /// This is the paper's notion of *colocation*: every colocation
    /// predicate of Allen's algebra implies `intersects`.
    #[inline]
    pub fn intersects(self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection of two intervals, if non-empty.
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Interval { start, end })
    }

    /// The smallest interval covering both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Translates the interval by `delta`.
    #[inline]
    pub fn shift(self, delta: i64) -> Interval {
        Interval {
            start: self.start + delta,
            end: self.end + delta,
        }
    }

    /// The *less-than order* between intervals (paper Section 5.1):
    /// `u` is less-than `v` iff `u.start <= v.start`.
    #[inline]
    pub fn less_than(self, other: Interval) -> bool {
        self.start <= other.start
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// Returns the index of a *left-most* interval — one whose start point is the
/// minimum (paper Section 5.1). Ties resolve to the first occurrence.
/// Returns `None` for an empty slice.
pub fn leftmost(intervals: &[Interval]) -> Option<usize> {
    intervals
        .iter()
        .enumerate()
        .min_by_key(|(_, iv)| iv.start())
        .map(|(i, _)| i)
}

/// Returns the index of a *right-most* interval — one whose start point is the
/// maximum (paper Section 5.1). Ties resolve to the first occurrence.
/// Returns `None` for an empty slice.
pub fn rightmost(intervals: &[Interval]) -> Option<usize> {
    intervals
        .iter()
        .enumerate()
        .max_by_key(|(_, iv)| iv.start())
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_order() {
        assert!(Interval::new(3, 3).is_ok());
        assert!(Interval::new(3, 4).is_ok());
        assert_eq!(
            Interval::new(4, 3),
            Err(IntervalError::EndBeforeStart { start: 4, end: 3 })
        );
    }

    #[test]
    fn point_is_zero_length() {
        let p = Interval::point(7);
        assert!(p.is_point());
        assert_eq!(p.len(), 0);
        assert!(p.contains_point(7));
        assert!(!p.contains_point(8));
    }

    #[test]
    fn contains_point_is_closed_on_both_sides() {
        let iv = Interval::new(2, 5).unwrap();
        assert!(iv.contains_point(2));
        assert!(iv.contains_point(5));
        assert!(!iv.contains_point(1));
        assert!(!iv.contains_point(6));
    }

    #[test]
    fn intersects_shares_endpoint() {
        // Closed intervals that merely touch at an endpoint DO share a point.
        let a = Interval::new(0, 5).unwrap();
        let b = Interval::new(5, 9).unwrap();
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        assert_eq!(a.intersection(b), Some(Interval::point(5)));
    }

    #[test]
    fn intersects_disjoint() {
        let a = Interval::new(0, 4).unwrap();
        let b = Interval::new(5, 9).unwrap();
        assert!(!a.intersects(b));
        assert_eq!(a.intersection(b), None);
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(0, 4).unwrap();
        let b = Interval::new(7, 9).unwrap();
        assert_eq!(a.hull(b), Interval::new(0, 9).unwrap());
    }

    #[test]
    fn shift_translates() {
        let a = Interval::new(1, 4).unwrap();
        assert_eq!(a.shift(10), Interval::new(11, 14).unwrap());
        assert_eq!(a.shift(-1), Interval::new(0, 3).unwrap());
    }

    #[test]
    fn less_than_uses_start_points_only() {
        let a = Interval::new(0, 100).unwrap();
        let b = Interval::new(1, 2).unwrap();
        assert!(a.less_than(b));
        assert!(!b.less_than(a));
        // Equal starts: less-than in both directions (it is a preorder).
        let c = Interval::new(0, 1).unwrap();
        assert!(a.less_than(c));
        assert!(c.less_than(a));
    }

    #[test]
    fn leftmost_rightmost() {
        let ivs = vec![
            Interval::new(5, 9).unwrap(),
            Interval::new(1, 20).unwrap(),
            Interval::new(8, 8).unwrap(),
        ];
        assert_eq!(leftmost(&ivs), Some(1));
        assert_eq!(rightmost(&ivs), Some(2));
        assert_eq!(leftmost(&[]), None);
        assert_eq!(rightmost(&[]), None);
    }
}
