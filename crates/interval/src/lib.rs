//! Interval data model and Allen's interval algebra.
//!
//! This crate is the foundation of the interval-join reproduction: it defines
//! the [`Interval`] type, the thirteen relations of Allen's interval algebra
//! ([`AllenPredicate`], paper Figure 1), the 1-D [`Partitioning`] of the time
//! range, and the three building-block map-side operations of the paper's
//! Section 3 — [`ops::project`], [`ops::split`] and [`ops::replicate`] — that
//! every join algorithm is assembled from.
//!
//! # Quick tour
//!
//! ```
//! use ij_interval::{Interval, AllenPredicate, Partitioning, ops};
//!
//! let u = Interval::new(3, 18).unwrap();
//! let v = Interval::new(10, 25).unwrap();
//! assert_eq!(AllenPredicate::relate(u, v), AllenPredicate::Overlaps);
//! assert!(AllenPredicate::Overlaps.holds(u, v));
//!
//! // Four partitions of [0, 40): [0,10) [10,20) [20,30) [30,40)
//! let p = Partitioning::equi_width(0, 40, 4).unwrap();
//! assert_eq!(ops::project(u, &p), 0);           // u starts in p0
//! assert_eq!(ops::split(u, &p), 0..2);          // u touches p0 and p1
//! assert_eq!(ops::replicate(u, &p), 0..4);      // p0 and everything after
//! ```

pub mod allen;
pub mod index;
pub mod interval;
pub mod ops;
pub mod partition;
pub mod relation;
pub mod set;
pub mod tuple;

pub use allen::{bounds_contain, AllenPredicate, MapOp, OperandOrder, PredicateClass};
pub use index::IntervalIndex;
pub use interval::{Interval, IntervalError, Time};
pub use partition::{PartitionIndex, Partitioning, PartitioningError};
pub use relation::{RelId, Relation};
pub use tuple::{AttrId, Tuple, TupleId};
