//! Project, Split, Replicate — the building-block map operations
//! (paper Section 3, Figure 2).
//!
//! A map function processes an interval by projecting, splitting or
//! replicating it; each produced `(p_i, u)` key-value pair communicates the
//! interval to reducer `p_i`. The three operations return partition index
//! *ranges* here — contiguous by construction — which the join algorithms
//! turn into key-value pairs.
//!
//! ```
//! use ij_interval::{Interval, Partitioning, ops};
//!
//! // Figure 2: partitioning with four partition-intervals.
//! let p = Partitioning::equi_width(0, 40, 4).unwrap();
//! let u = Interval::new(2, 14).unwrap();  // starts in p1? no: p0, ends in p1
//! let v = Interval::new(12, 17).unwrap(); // entirely inside p1
//!
//! assert_eq!(ops::project(u, &p), 0);
//! assert_eq!(ops::project(v, &p), 1);
//! assert_eq!(ops::split(u, &p), 0..2);     // u intersects p0, p1
//! assert_eq!(ops::split(v, &p), 1..2);     // v intersects only p1
//! assert_eq!(ops::replicate(u, &p), 0..4); // every partition from p0 on
//! assert_eq!(ops::replicate(v, &p), 1..4); // every partition from p1 on
//! ```

use crate::interval::Interval;
use crate::partition::{PartitionIndex, Partitioning};
use crate::MapOp;
use std::ops::Range;

/// **Project**: the single partition containing the interval's start point.
///
/// `Project(u, P) -> {(p_i, u) | u.t_s ∈ p_i}`
#[inline]
pub fn project(u: Interval, p: &Partitioning) -> PartitionIndex {
    p.index_of(u.start())
}

/// **Split**: every partition sharing at least one point with the interval.
///
/// `Split(u, P) -> {(p_i, u) | u ∩ p_i ≠ ∅}`
#[inline]
pub fn split(u: Interval, p: &Partitioning) -> Range<PartitionIndex> {
    let first = p.index_of(u.start());
    let last = p.index_of(u.end());
    first..last + 1
}

/// **Replicate**: every partition having at least one point `>=` the
/// interval's start point — i.e. the start partition and all that follow.
///
/// `Replicate(u, P) -> {(p_i, u) | u ∩ p_i ≠ ∅ ∨ u.t_s < p_i.t_s}`
#[inline]
pub fn replicate(u: Interval, p: &Partitioning) -> Range<PartitionIndex> {
    let first = p.index_of(u.start());
    first..p.len()
}

/// Applies a [`MapOp`] and returns the produced partition range.
#[inline]
pub fn apply(op: MapOp, u: Interval, p: &Partitioning) -> Range<PartitionIndex> {
    match op {
        MapOp::Project => {
            let i = project(u, p);
            i..i + 1
        }
        MapOp::Split => split(u, p),
        MapOp::Replicate => replicate(u, p),
    }
}

/// Number of key-value pairs a [`MapOp`] would produce for `u` — used by the
/// cost accounting without materialising the pairs.
#[inline]
pub fn pair_count(op: MapOp, u: Interval, p: &Partitioning) -> usize {
    apply(op, u, p).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    /// The worked example of Figure 2: relation R = {u, v} over a
    /// four-partition partitioning. u starts in p1 (1-indexed in the paper,
    /// p0 here) and overlaps p0..p1; v lies within p1 (paper p2).
    #[test]
    fn figure2_example() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        let u = iv(3, 16); // starts p0, overlaps p0 and p1
        let v = iv(12, 18); // starts and ends in p1

        // Project: {(p0,u)}, {(p1,v)}
        assert_eq!(project(u, &p), 0);
        assert_eq!(project(v, &p), 1);
        // Split u: {(p0,u),(p1,u)}; split v: {(p1,v)}
        assert_eq!(split(u, &p), 0..2);
        assert_eq!(split(v, &p), 1..2);
        // Replicate u: all four partitions; replicate v: p1,p2,p3.
        assert_eq!(replicate(u, &p), 0..4);
        assert_eq!(replicate(v, &p), 1..4);
    }

    #[test]
    fn project_is_first_split_partition() {
        let p = Partitioning::equi_width(0, 100, 7).unwrap();
        for s in 0..100 {
            for len in [0, 1, 13, 60] {
                let u = iv(s, (s + len).min(99));
                assert_eq!(project(u, &p), split(u, &p).start);
            }
        }
    }

    #[test]
    fn split_subset_of_replicate() {
        let p = Partitioning::equi_width(0, 100, 7).unwrap();
        for s in 0..100 {
            let u = iv(s, (s + 17).min(99));
            let sp = split(u, &p);
            let rp = replicate(u, &p);
            assert_eq!(sp.start, rp.start);
            assert!(sp.end <= rp.end);
            assert_eq!(rp.end, p.len());
        }
    }

    #[test]
    fn split_covers_exactly_intersecting_partitions() {
        let p = Partitioning::equi_width(0, 60, 5).unwrap();
        let u = iv(11, 25);
        let r = split(u, &p);
        for i in p.indices() {
            assert_eq!(
                r.contains(&i),
                p.intersects_partition(u, i),
                "partition {i} vs split range {r:?}"
            );
        }
    }

    #[test]
    fn point_interval_ops() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        let u = Interval::point(10);
        assert_eq!(project(u, &p), 1);
        assert_eq!(split(u, &p), 1..2);
        assert_eq!(replicate(u, &p), 1..4);
    }

    #[test]
    fn interval_ending_on_boundary_splits_into_next() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        // 10 is the first point of p1, so [0,10] intersects p1.
        assert_eq!(split(iv(0, 10), &p), 0..2);
        assert_eq!(split(iv(0, 9), &p), 0..1);
    }

    #[test]
    fn apply_matches_primitives() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        let u = iv(5, 22);
        assert_eq!(apply(MapOp::Project, u, &p), 0..1);
        assert_eq!(apply(MapOp::Split, u, &p), split(u, &p));
        assert_eq!(apply(MapOp::Replicate, u, &p), replicate(u, &p));
        assert_eq!(pair_count(MapOp::Split, u, &p), 3);
        assert_eq!(pair_count(MapOp::Replicate, u, &p), 4);
        assert_eq!(pair_count(MapOp::Project, u, &p), 1);
    }
}
