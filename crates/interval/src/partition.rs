//! Partitioning of the global time range (paper Section 3).
//!
//! A partitioning of the time range `[t_0, t_n)` is a sequence of contiguous
//! half-open *partition-intervals* `[t_0, t_1), [t_1, t_2), …, [t_{l-1}, t_n)`.
//! Partition-intervals double as reducer ids: a map function emitting the
//! pair `(p_i, u)` communicates interval `u` to reducer `p_i`.

use crate::interval::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a partition-interval within a [`Partitioning`].
pub type PartitionIndex = usize;

/// Error constructing a [`Partitioning`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitioningError {
    /// Fewer than two boundaries (at least one partition is required).
    TooFewBoundaries,
    /// Boundaries not strictly increasing.
    NotIncreasing { at: usize },
    /// `equi_width` called with an empty range or zero partitions.
    EmptyRange,
}

impl fmt::Display for PartitioningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitioningError::TooFewBoundaries => {
                write!(f, "a partitioning needs at least two boundaries")
            }
            PartitioningError::NotIncreasing { at } => {
                write!(
                    f,
                    "partition boundaries must strictly increase (index {at})"
                )
            }
            PartitioningError::EmptyRange => {
                write!(
                    f,
                    "equi-width partitioning needs a non-empty range and k >= 1"
                )
            }
        }
    }
}

impl std::error::Error for PartitioningError {}

/// A partitioning `P = (p_1, …, p_l)` of a time range into contiguous
/// half-open partition-intervals.
///
/// Stored as `l + 1` strictly increasing boundaries; partition `i` is
/// `[boundaries[i], boundaries[i+1])`.
///
/// Lookups clamp: a point before the range maps to partition `0`, a point at
/// or past the final boundary maps to the last partition. This makes the
/// join algorithms total over any input (the paper assumes all intervals lie
/// within `[t_0, t_n)`; clamping preserves correctness when they do and
/// degrades gracefully when they do not).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    boundaries: Vec<Time>,
}

impl Partitioning {
    /// Builds a partitioning from explicit boundaries
    /// (`boundaries[0] = t_0`, `boundaries[l] = t_n`).
    pub fn from_boundaries(boundaries: Vec<Time>) -> Result<Self, PartitioningError> {
        if boundaries.len() < 2 {
            return Err(PartitioningError::TooFewBoundaries);
        }
        for (i, w) in boundaries.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(PartitioningError::NotIncreasing { at: i + 1 });
            }
        }
        Ok(Partitioning { boundaries })
    }

    /// Divides `[t0, tn)` into `k` near-equal partitions (the first
    /// `(tn - t0) % k` partitions are one tick wider).
    pub fn equi_width(t0: Time, tn: Time, k: usize) -> Result<Self, PartitioningError> {
        if tn <= t0 || k == 0 || (tn - t0) < k as i64 {
            return Err(PartitioningError::EmptyRange);
        }
        let span = tn - t0;
        let base = span / k as i64;
        let extra = span % k as i64;
        let mut boundaries = Vec::with_capacity(k + 1);
        let mut at = t0;
        boundaries.push(at);
        for i in 0..k {
            at += base + if (i as i64) < extra { 1 } else { 0 };
            boundaries.push(at);
        }
        debug_assert_eq!(*boundaries.last().unwrap(), tn);
        Partitioning::from_boundaries(boundaries)
    }

    /// Builds an *equi-depth* partitioning of `[t0, tn)`: boundaries are
    /// placed at the quantiles of the given start points, so every
    /// partition receives a similar number of interval starts even under
    /// skew. The paper notes (Section 2) that "uniformly distributed data
    /// vs skewed data will need to be processed differently" — this is the
    /// standard remedy: reducer keys stay balanced when `dS` is zipfian.
    ///
    /// Degenerate quantiles (repeated values) collapse; the result may have
    /// fewer than `k` partitions but always covers `[t0, tn)`.
    pub fn equi_depth(
        t0: Time,
        tn: Time,
        k: usize,
        starts: &[Time],
    ) -> Result<Self, PartitioningError> {
        if tn <= t0 || k == 0 {
            return Err(PartitioningError::EmptyRange);
        }
        if starts.is_empty() || k == 1 {
            return Partitioning::equi_width(t0, tn, k.min((tn - t0) as usize).max(1));
        }
        let mut sorted = starts.to_vec();
        sorted.sort_unstable();
        let mut boundaries = vec![t0];
        for i in 1..k {
            let q = sorted[(i * sorted.len()) / k].clamp(t0 + 1, tn - 1);
            if q > *boundaries.last().expect("non-empty") {
                boundaries.push(q);
            }
        }
        if *boundaries.last().expect("non-empty") < tn {
            boundaries.push(tn);
        }
        Partitioning::from_boundaries(boundaries)
    }

    /// Number of partition-intervals `l`.
    #[inline]
    pub fn len(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Always false (a valid partitioning has at least one partition).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The covered time range `[t_0, t_n)` as an inclusive interval on the
    /// last representable point `[t_0, t_n - 1]`.
    pub fn range(&self) -> Interval {
        Interval::new_unchecked(self.boundaries[0], *self.boundaries.last().unwrap() - 1)
    }

    /// The partition-interval `p_i`, as a closed interval over the points it
    /// contains: `[b_i, b_{i+1} - 1]`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn partition(&self, i: PartitionIndex) -> Interval {
        assert!(i < self.len(), "partition index {i} out of range");
        Interval::new_unchecked(self.boundaries[i], self.boundaries[i + 1] - 1)
    }

    /// The index of the partition containing time point `t` (clamped to the
    /// first/last partition for out-of-range points).
    #[inline]
    pub fn index_of(&self, t: Time) -> PartitionIndex {
        // partition_point returns the number of boundaries <= t; partition i
        // covers [b_i, b_{i+1}) so the index is that count minus one.
        let pos = self.boundaries.partition_point(|&b| b <= t);
        pos.saturating_sub(1).min(self.len() - 1)
    }

    /// Whether interval `u` has at least one point in common with
    /// partition-interval `i`.
    pub fn intersects_partition(&self, u: Interval, i: PartitionIndex) -> bool {
        u.intersects(self.partition(i))
    }

    /// Whether interval `u` *crosses the right boundary* of partition `i`
    /// (paper Section 5.3, condition B1): the end point of `u` lies in a
    /// partition following `i`.
    pub fn crosses_right(&self, u: Interval, i: PartitionIndex) -> bool {
        u.end() >= self.boundaries[i + 1]
    }

    /// Whether interval `u` *crosses the left boundary* of partition `i`
    /// (paper Section 5.3, condition B2): the start point of `u` lies in a
    /// partition preceding `i`.
    pub fn crosses_left(&self, u: Interval, i: PartitionIndex) -> bool {
        u.start() < self.boundaries[i]
    }

    /// Iterates over all partition indices.
    pub fn indices(&self) -> std::ops::Range<PartitionIndex> {
        0..self.len()
    }

    /// The raw boundaries (length `len() + 1`).
    pub fn boundaries(&self) -> &[Time] {
        &self.boundaries
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P(")?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{}, {})", self.boundaries[i], self.boundaries[i + 1])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_boundaries_validates() {
        assert!(Partitioning::from_boundaries(vec![0]).is_err());
        assert!(Partitioning::from_boundaries(vec![0, 0]).is_err());
        assert!(Partitioning::from_boundaries(vec![0, 5, 3]).is_err());
        let p = Partitioning::from_boundaries(vec![0, 5, 9]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn equi_width_divides_exactly() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        assert_eq!(p.boundaries(), &[0, 10, 20, 30, 40]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn equi_width_spreads_remainder() {
        let p = Partitioning::equi_width(0, 10, 3).unwrap();
        // 10 = 4 + 3 + 3
        assert_eq!(p.boundaries(), &[0, 4, 7, 10]);
    }

    #[test]
    fn equi_width_rejects_degenerate() {
        assert!(Partitioning::equi_width(5, 5, 3).is_err());
        assert!(Partitioning::equi_width(0, 10, 0).is_err());
        assert!(Partitioning::equi_width(0, 2, 3).is_err());
    }

    #[test]
    fn index_of_half_open_semantics() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        assert_eq!(p.index_of(0), 0);
        assert_eq!(p.index_of(9), 0);
        assert_eq!(p.index_of(10), 1); // boundary belongs to the right partition
        assert_eq!(p.index_of(39), 3);
    }

    #[test]
    fn index_of_clamps() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        assert_eq!(p.index_of(-5), 0);
        assert_eq!(p.index_of(40), 3);
        assert_eq!(p.index_of(1000), 3);
    }

    #[test]
    fn partition_as_closed_interval() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        assert_eq!(p.partition(0), Interval::new(0, 9).unwrap());
        assert_eq!(p.partition(3), Interval::new(30, 39).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_out_of_range_panics() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        let _ = p.partition(4);
    }

    #[test]
    fn crossing_boundaries() {
        let p = Partitioning::equi_width(0, 40, 4).unwrap();
        let u = Interval::new(5, 15).unwrap(); // spans p0 and p1
        assert!(p.crosses_right(u, 0));
        assert!(!p.crosses_right(u, 1));
        assert!(p.crosses_left(u, 1));
        assert!(!p.crosses_left(u, 0));
        // Interval ending exactly on a boundary point (10 is in p1).
        let v = Interval::new(0, 10).unwrap();
        assert!(p.crosses_right(v, 0));
        let w = Interval::new(0, 9).unwrap();
        assert!(!p.crosses_right(w, 0));
    }

    #[test]
    fn equi_depth_balances_skewed_starts() {
        // Heavily skewed starts: 90% in [0, 10), 10% in [10, 100).
        let mut starts: Vec<Time> = (0..900).map(|i| i % 10).collect();
        starts.extend((0..100).map(|i| 10 + (i * 90) / 100));
        let p = Partitioning::equi_depth(0, 100, 8, &starts).unwrap();
        // Each partition should hold a similar share of the starts.
        let mut per = vec![0usize; p.len()];
        for &s in &starts {
            per[p.index_of(s)] += 1;
        }
        let max = *per.iter().max().unwrap() as f64;
        let mean = starts.len() as f64 / p.len() as f64;
        assert!(max / mean < 2.5, "per-partition counts {per:?}");
        // Equi-width, for contrast, piles most starts into partition 0.
        let w = Partitioning::equi_width(0, 100, 8).unwrap();
        let first = starts.iter().filter(|&&s| w.index_of(s) == 0).count();
        assert!(first > starts.len() * 8 / 10);
    }

    #[test]
    fn equi_depth_collapses_duplicate_quantiles() {
        // All starts identical: only one usable boundary; still covers the
        // range and stays valid.
        let starts = vec![5; 50];
        let p = Partitioning::equi_depth(0, 100, 8, &starts).unwrap();
        assert!(p.len() <= 2);
        assert_eq!(p.index_of(0), 0);
        assert_eq!(p.index_of(99), p.len() - 1);
    }

    #[test]
    fn equi_depth_without_samples_falls_back_to_equi_width() {
        let p = Partitioning::equi_depth(0, 40, 4, &[]).unwrap();
        assert_eq!(
            p.boundaries(),
            Partitioning::equi_width(0, 40, 4).unwrap().boundaries()
        );
    }

    #[test]
    fn index_of_agrees_with_partition_membership() {
        let p = Partitioning::equi_width(3, 97, 7).unwrap();
        for t in 3..97 {
            let i = p.index_of(t);
            assert!(
                p.partition(i).contains_point(t),
                "point {t} not in partition {i} = {}",
                p.partition(i)
            );
        }
    }
}
