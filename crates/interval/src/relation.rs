//! Relations: named collections of [`Tuple`]s.
//!
//! In the paper each relation is an HDFS file of interval tuples; a join
//! query names `m` (logical) relations. A *self-join* such as Table 2's
//! star query `R overlaps R and R overlaps R` is expressed by registering
//! the same `Relation` under several logical relation ids — the query layer
//! treats logical occurrences as distinct relations, exactly as the paper's
//! algorithms do.

use crate::interval::Interval;
use crate::tuple::{AttrId, Tuple, TupleId};
use serde::{Deserialize, Serialize};

/// Identifier of a (logical) relation within a query: `R_1, R_2, …` are
/// `RelId(0), RelId(1), …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u16);

impl RelId {
    /// Zero-based index (for indexing per-relation arrays).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0 + 1)
    }
}

/// A named collection of tuples sharing an attribute count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// Human-readable name (e.g. `"R1"`, `"cities"`).
    pub name: String,
    /// Number of attributes every tuple carries.
    pub n_attrs: u16,
    /// The tuples; `tuples[i].id == i` is maintained by the constructors.
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with `n_attrs` attributes per tuple.
    pub fn new(name: impl Into<String>, n_attrs: u16) -> Self {
        Relation {
            name: name.into(),
            n_attrs,
            tuples: Vec::new(),
        }
    }

    /// Builds a single-attribute relation from raw intervals; tuple ids are
    /// assigned densely in input order.
    pub fn from_intervals(
        name: impl Into<String>,
        intervals: impl IntoIterator<Item = Interval>,
    ) -> Self {
        let tuples = intervals
            .into_iter()
            .enumerate()
            .map(|(i, iv)| Tuple::single(i as TupleId, iv))
            .collect();
        Relation {
            name: name.into(),
            n_attrs: 1,
            tuples,
        }
    }

    /// Builds a multi-attribute relation from attribute rows; every row must
    /// have the same length.
    ///
    /// # Panics
    /// Panics if a row's length differs from the first row's.
    pub fn from_rows(
        name: impl Into<String>,
        rows: impl IntoIterator<Item = Vec<Interval>>,
    ) -> Self {
        let mut n_attrs = None;
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .enumerate()
            .map(|(i, attrs)| {
                match n_attrs {
                    None => n_attrs = Some(attrs.len()),
                    Some(n) => assert_eq!(attrs.len(), n, "row {i} has inconsistent arity"),
                }
                Tuple::multi(i as TupleId, attrs)
            })
            .collect();
        Relation {
            name: name.into(),
            n_attrs: n_attrs.unwrap_or(1) as u16,
            tuples,
        }
    }

    /// Appends a tuple, assigning it the next dense id. Returns the id.
    ///
    /// # Panics
    /// Panics if the tuple's arity does not match the relation's.
    pub fn push(&mut self, attrs: Vec<Interval>) -> TupleId {
        assert_eq!(attrs.len(), self.n_attrs as usize, "arity mismatch");
        let id = self.tuples.len() as TupleId;
        self.tuples.push(Tuple::multi(id, attrs));
        id
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, in id order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple with id `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    #[inline]
    pub fn tuple(&self, t: TupleId) -> &Tuple {
        &self.tuples[t as usize]
    }

    /// The minimum start and maximum end point over attribute `a` of all
    /// tuples — the tight time range to build a [`crate::Partitioning`] over.
    /// Returns `None` for an empty relation.
    pub fn attr_span(&self, a: AttrId) -> Option<Interval> {
        let mut it = self.tuples.iter().map(|t| t.attr(a));
        let first = it.next()?;
        Some(it.fold(first, |acc, iv| acc.hull(iv)))
    }
}

/// The tight time span covering attribute `a` of all listed relations —
/// used by the join algorithms to size the shared partitioning. Returns
/// `None` when every relation is empty.
pub fn joint_span<'a>(
    relations: impl IntoIterator<Item = &'a Relation>,
    a: AttrId,
) -> Option<Interval> {
    relations
        .into_iter()
        .filter_map(|r| r.attr_span(a))
        .reduce(|acc, iv| acc.hull(iv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    #[test]
    fn from_intervals_assigns_dense_ids() {
        let r = Relation::from_intervals("R1", vec![iv(0, 5), iv(3, 4)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuple(0).id, 0);
        assert_eq!(r.tuple(1).id, 1);
        assert_eq!(r.tuple(1).interval(), iv(3, 4));
        assert_eq!(r.n_attrs, 1);
    }

    #[test]
    fn push_maintains_ids() {
        let mut r = Relation::new("R", 2);
        let a = r.push(vec![iv(0, 1), Interval::point(9)]);
        let b = r.push(vec![iv(2, 3), Interval::point(8)]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.tuple(b).attr(1), Interval::point(8));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_rejects_wrong_arity() {
        let mut r = Relation::new("R", 2);
        r.push(vec![iv(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "inconsistent arity")]
    fn from_rows_rejects_ragged() {
        let _ = Relation::from_rows("R", vec![vec![iv(0, 1)], vec![iv(0, 1), iv(2, 3)]]);
    }

    #[test]
    fn attr_span_covers_all() {
        let r = Relation::from_intervals("R", vec![iv(5, 9), iv(1, 3), iv(8, 20)]);
        assert_eq!(r.attr_span(0), Some(iv(1, 20)));
        let empty = Relation::new("E", 1);
        assert_eq!(empty.attr_span(0), None);
    }

    #[test]
    fn joint_span_over_relations() {
        let a = Relation::from_intervals("A", vec![iv(5, 9)]);
        let b = Relation::from_intervals("B", vec![iv(0, 2), iv(30, 31)]);
        let empty = Relation::new("E", 1);
        assert_eq!(joint_span([&a, &b, &empty], 0), Some(iv(0, 31)));
        assert_eq!(joint_span([&empty], 0), None);
    }

    #[test]
    fn rel_id_display() {
        assert_eq!(RelId(0).to_string(), "R1");
        assert_eq!(RelId(3).to_string(), "R4");
    }
}
