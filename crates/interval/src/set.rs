//! Utilities over collections of intervals.
//!
//! The paper's scenarios construct interval relations from raw event data:
//! threshold exceedances of a sensor series (Section 1's weather query),
//! packet trains from packet arrivals (Section 6.2). This module provides
//! the standard building blocks — coalescing overlapping intervals,
//! measuring coverage, gap extraction — used by the examples and the
//! workload generators.

use crate::interval::{Interval, Time};

/// Coalesces intervals: sorts and merges every group that intersects or
/// touches (shares an endpoint), returning disjoint intervals in order.
///
/// ```
/// use ij_interval::{Interval, set::coalesce};
/// let iv = |s, e| Interval::new(s, e).unwrap();
/// assert_eq!(
///     coalesce(vec![iv(5, 9), iv(0, 3), iv(3, 4), iv(20, 25)]),
///     vec![iv(0, 4), iv(5, 9), iv(20, 25)]
/// );
/// ```
pub fn coalesce(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.sort_unstable_by_key(|iv| (iv.start(), iv.end()));
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.start() <= last.end() => {
                *last = Interval::new_unchecked(last.start(), last.end().max(iv.end()));
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Total number of time points covered by the intervals (counting each
/// point once).
pub fn coverage(intervals: &[Interval]) -> i64 {
    coalesce(intervals.to_vec())
        .iter()
        .map(|iv| iv.len() + 1)
        .sum()
}

/// The maximal gaps between the coalesced intervals, within `[span.start,
/// span.end]`. Gaps at the edges of the span are included.
pub fn gaps(intervals: &[Interval], span: Interval) -> Vec<Interval> {
    let merged = coalesce(intervals.to_vec());
    let mut out = Vec::new();
    let mut cursor = span.start();
    for iv in merged {
        if iv.start() > cursor {
            let gap_end = (iv.start() - 1).min(span.end());
            if gap_end >= cursor {
                out.push(Interval::new_unchecked(cursor, gap_end));
            }
        }
        cursor = cursor.max(iv.end() + 1);
        if cursor > span.end() {
            return out;
        }
    }
    if cursor <= span.end() {
        out.push(Interval::new_unchecked(cursor, span.end()));
    }
    out
}

/// Extracts maximal intervals of consecutive time points satisfying the
/// predicate — e.g. the threshold-exceedance episodes of a sensor series,
/// with `t` being the sample index.
pub fn runs_where(len: usize, pred: impl Fn(usize) -> bool) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut start: Option<Time> = None;
    for t in 0..len {
        match (pred(t), start) {
            (true, None) => start = Some(t as Time),
            (false, Some(s)) => {
                out.push(Interval::new_unchecked(s, t as Time - 1));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(Interval::new_unchecked(s, len as Time - 1));
    }
    out
}

/// The maximum number of intervals alive at any single point — the
/// "densest instant". Useful for sizing join output expectations: a point
/// with `k` overlapping intervals contributes `O(k²)` colocation pairs.
pub fn max_overlap(intervals: &[Interval]) -> usize {
    let mut events: Vec<(Time, i32)> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        events.push((iv.start(), 1));
        // Closed intervals: alive through end(), so the decrement happens
        // just past it.
        events.push((iv.end() + 1, -1));
    }
    events.sort_unstable();
    let mut alive = 0i32;
    let mut max = 0i32;
    for (_, delta) in events {
        alive += delta;
        max = max.max(alive);
    }
    max as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: Time, e: Time) -> Interval {
        Interval::new(s, e).unwrap()
    }

    #[test]
    fn coalesce_merges_overlaps_and_touches() {
        assert_eq!(
            coalesce(vec![iv(0, 5), iv(3, 8), iv(9, 12)]),
            vec![iv(0, 8), iv(9, 12)]
        );
        // Touching at an endpoint merges (closed intervals share the point).
        assert_eq!(coalesce(vec![iv(0, 5), iv(5, 8)]), vec![iv(0, 8)]);
        // Adjacent-but-not-touching stays split.
        assert_eq!(coalesce(vec![iv(0, 4), iv(5, 8)]), vec![iv(0, 4), iv(5, 8)]);
        assert_eq!(coalesce(vec![]), vec![]);
    }

    #[test]
    fn coalesce_handles_containment() {
        assert_eq!(
            coalesce(vec![iv(0, 20), iv(5, 8), iv(19, 30)]),
            vec![iv(0, 30)]
        );
    }

    #[test]
    fn coverage_counts_points_once() {
        assert_eq!(coverage(&[iv(0, 4), iv(2, 6)]), 7); // points 0..=6
        assert_eq!(coverage(&[iv(3, 3)]), 1);
        assert_eq!(coverage(&[]), 0);
    }

    #[test]
    fn gaps_cover_span_complement() {
        let g = gaps(&[iv(2, 4), iv(8, 9)], iv(0, 12));
        assert_eq!(g, vec![iv(0, 1), iv(5, 7), iv(10, 12)]);
        // Gaps plus coverage partition the span.
        let covered = coverage(&[iv(2, 4), iv(8, 9)]);
        let gap_points: i64 = g.iter().map(|x| x.len() + 1).sum();
        assert_eq!(covered + gap_points, 13);
    }

    #[test]
    fn gaps_empty_input_is_whole_span() {
        assert_eq!(gaps(&[], iv(3, 9)), vec![iv(3, 9)]);
        // Fully covered span has no gaps.
        assert_eq!(gaps(&[iv(0, 9)], iv(0, 9)), vec![]);
    }

    #[test]
    fn runs_where_extracts_episodes() {
        let data = [0, 5, 7, 2, 9, 9, 9, 0];
        let runs = runs_where(data.len(), |t| data[t] > 4);
        assert_eq!(runs, vec![iv(1, 2), iv(4, 6)]);
        // Run extending to the end.
        let runs = runs_where(3, |t| t >= 1);
        assert_eq!(runs, vec![iv(1, 2)]);
        assert_eq!(runs_where(0, |_| true), vec![]);
    }

    #[test]
    fn max_overlap_counts_densest_instant() {
        assert_eq!(max_overlap(&[iv(0, 10), iv(5, 15), iv(9, 12)]), 3);
        assert_eq!(max_overlap(&[iv(0, 1), iv(5, 6)]), 1);
        assert_eq!(max_overlap(&[]), 0);
        // Endpoint sharing counts as overlap (closed intervals).
        assert_eq!(max_overlap(&[iv(0, 5), iv(5, 9)]), 2);
    }
}
