//! Tuples: rows of a relation, carrying one or more interval attributes.
//!
//! Following the paper's Section 9 observation that "a real-valued attribute
//! can be visualized as an interval of length 0", *every* attribute is
//! stored as an [`Interval`]; real values are length-0 intervals. A
//! single-interval-attribute relation (the common case in Sections 4–8)
//! simply has one attribute.

use crate::interval::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tuple within its relation (dense, 0-based).
pub type TupleId = u32;

/// Index of an attribute within a relation's schema (0-based).
pub type AttrId = u16;

/// A tuple: an id plus one interval per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Dense id within the owning relation.
    pub id: TupleId,
    /// One interval per attribute, indexed by [`AttrId`].
    pub attrs: Vec<Interval>,
}

impl Tuple {
    /// A single-attribute tuple.
    pub fn single(id: TupleId, iv: Interval) -> Self {
        Tuple {
            id,
            attrs: vec![iv],
        }
    }

    /// A multi-attribute tuple.
    pub fn multi(id: TupleId, attrs: Vec<Interval>) -> Self {
        Tuple { id, attrs }
    }

    /// The value of attribute `a`.
    ///
    /// # Panics
    /// Panics if `a` is out of range for this tuple.
    #[inline]
    pub fn attr(&self, a: AttrId) -> Interval {
        self.attrs[a as usize]
    }

    /// The single interval of a single-attribute tuple.
    ///
    /// # Panics
    /// Panics if the tuple does not have exactly one attribute.
    #[inline]
    pub fn interval(&self) -> Interval {
        assert_eq!(
            self.attrs.len(),
            1,
            "tuple has {} attributes",
            self.attrs.len()
        );
        self.attrs[0]
    }

    /// Appends a real-valued attribute (stored as a point interval).
    pub fn with_real(mut self, v: Time) -> Self {
        self.attrs.push(Interval::point(v));
        self
    }

    /// Appends an interval attribute.
    pub fn with_interval(mut self, iv: Interval) -> Self {
        self.attrs.push(iv);
        self
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}(", self.id)?;
        for (i, iv) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_attribute_access() {
        let t = Tuple::single(3, Interval::new(1, 5).unwrap());
        assert_eq!(t.id, 3);
        assert_eq!(t.interval(), Interval::new(1, 5).unwrap());
        assert_eq!(t.attr(0), Interval::new(1, 5).unwrap());
    }

    #[test]
    #[should_panic(expected = "attributes")]
    fn interval_panics_on_multi_attribute() {
        let t = Tuple::multi(0, vec![Interval::point(1), Interval::point(2)]);
        let _ = t.interval();
    }

    #[test]
    fn builder_appends_attributes() {
        let t = Tuple::single(0, Interval::new(0, 9).unwrap())
            .with_real(42)
            .with_interval(Interval::new(5, 6).unwrap());
        assert_eq!(t.attrs.len(), 3);
        assert_eq!(t.attr(1), Interval::point(42));
        assert!(t.attr(1).is_point());
        assert_eq!(t.attr(2), Interval::new(5, 6).unwrap());
    }

    #[test]
    fn display_is_compact() {
        let t = Tuple::single(7, Interval::new(2, 4).unwrap());
        assert_eq!(t.to_string(), "t7([2, 4])");
    }
}
