//! Aggregation of metrics across the cycles of a multi-cycle algorithm.
//!
//! RCCIS runs two MR cycles, PASM three, and the 2-way cascade one per join
//! condition. The paper compares algorithms on *total* elapsed time and
//! *total* communication, so every algorithm in `ij-core` returns a
//! [`JobChain`] next to its output.

use crate::metrics::{Counters, JobMetrics};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The metrics of an algorithm run: one [`JobMetrics`] per MR cycle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobChain {
    /// Per-cycle metrics, in execution order.
    pub cycles: Vec<JobMetrics>,
}

impl JobChain {
    /// An empty chain.
    pub fn new() -> Self {
        JobChain::default()
    }

    /// Appends one cycle's metrics.
    pub fn push(&mut self, m: JobMetrics) {
        self.cycles.push(m);
    }

    /// Merges another chain's cycles after this one's.
    pub fn extend(&mut self, other: JobChain) {
        self.cycles.extend(other.cycles);
    }

    /// Number of MR cycles (RCCIS: 2, All-Matrix: 1, PASM: 3, …).
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Total intermediate key-value pairs across cycles — the paper's
    /// bracketed "# Pairs" figures in Table 1.
    pub fn total_pairs(&self) -> u64 {
        self.cycles.iter().map(|c| c.intermediate_pairs).sum()
    }

    /// Total bytes shuffled across cycles.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.cycles.iter().map(|c| c.shuffle_bytes).sum()
    }

    /// Total records read by map phases (the cascade's "huge reading cost").
    pub fn total_records_read(&self) -> u64 {
        self.cycles.iter().map(|c| c.map_input_records).sum()
    }

    /// Total simulated cluster time (cycles are sequential, so they sum).
    pub fn total_simulated(&self) -> f64 {
        self.cycles.iter().map(|c| c.simulated).sum()
    }

    /// Total wall-clock time of the in-process runs.
    pub fn total_wall(&self) -> Duration {
        self.cycles.iter().map(|c| c.wall).sum()
    }

    /// Total map-phase wall-clock time across cycles.
    pub fn total_map_wall(&self) -> Duration {
        self.cycles.iter().map(|c| c.map_wall).sum()
    }

    /// Total shuffle (run-merge) wall-clock time across cycles.
    pub fn total_shuffle_wall(&self) -> Duration {
        self.cycles.iter().map(|c| c.shuffle_wall).sum()
    }

    /// Total reduce-phase wall-clock time across cycles.
    pub fn total_reduce_wall(&self) -> Duration {
        self.cycles.iter().map(|c| c.reduce_wall).sum()
    }

    /// Total spill I/O wall-clock time across cycles (zero unless a
    /// memory budget made buckets spill; see [`JobMetrics::spill_wall`]).
    pub fn total_spill_wall(&self) -> Duration {
        self.cycles.iter().map(|c| c.spill_wall).sum()
    }

    /// Output records of the final cycle (the join result size).
    pub fn final_output_records(&self) -> u64 {
        self.cycles.last().map(|c| c.output_records).unwrap_or(0)
    }

    /// Worst load skew across cycles.
    pub fn worst_skew(&self) -> f64 {
        self.cycles.iter().map(JobMetrics::skew).fold(1.0, f64::max)
    }

    /// User counters summed across all cycles (Hadoop's job-group counter
    /// rollup): per-name u64 sums, so the merge is order-independent.
    pub fn total_counters(&self) -> Counters {
        let mut total = Counters::new();
        for c in &self.cycles {
            total.merge(&c.counters);
        }
        total
    }

    /// One counter's total across cycles (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.cycles.iter().map(|c| c.counters.get(name)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ReducerLoad;

    fn cycle(pairs: u64, sim: f64) -> JobMetrics {
        JobMetrics {
            name: "c".into(),
            map_input_records: pairs,
            map_input_bytes: pairs * 8,
            intermediate_pairs: pairs,
            shuffle_bytes: pairs * 10,
            distinct_reducers: 1,
            reducer_loads: vec![ReducerLoad {
                key: 0,
                pairs_received: pairs,
                work: 0,
                output: 1,
                attempts: 1,
            }],
            output_records: 1,
            output_bytes: 8,
            wall: Duration::from_millis(5),
            map_wall: Duration::from_millis(3),
            shuffle_wall: Duration::from_millis(1),
            reduce_wall: Duration::from_millis(1),
            spill_wall: Duration::from_micros(100),
            simulated: sim,
            counters: Counters::default(),
        }
    }

    #[test]
    fn totals_sum_over_cycles() {
        let mut chain = JobChain::new();
        chain.push(cycle(100, 1.5));
        chain.push(cycle(50, 2.5));
        assert_eq!(chain.num_cycles(), 2);
        assert_eq!(chain.total_pairs(), 150);
        assert_eq!(chain.total_shuffle_bytes(), 1500);
        assert_eq!(chain.total_records_read(), 150);
        assert!((chain.total_simulated() - 4.0).abs() < 1e-9);
        assert_eq!(chain.total_wall(), Duration::from_millis(10));
        assert_eq!(chain.total_map_wall(), Duration::from_millis(6));
        assert_eq!(chain.total_shuffle_wall(), Duration::from_millis(2));
        assert_eq!(chain.total_reduce_wall(), Duration::from_millis(2));
        assert_eq!(chain.total_spill_wall(), Duration::from_micros(200));
        assert_eq!(chain.final_output_records(), 1);
    }

    #[test]
    fn empty_chain_is_zero() {
        let chain = JobChain::new();
        assert_eq!(chain.total_pairs(), 0);
        assert_eq!(chain.final_output_records(), 0);
        assert_eq!(chain.worst_skew(), 1.0);
    }

    #[test]
    fn counters_roll_up_across_cycles() {
        let mut chain = JobChain::new();
        let mut a = cycle(10, 1.0);
        a.counters.inc("replicas", 4);
        a.counters.inc("crossing", 2);
        let mut b = cycle(20, 1.0);
        b.counters.inc("replicas", 6);
        b.counters.inc("emitted", 9);
        chain.push(a);
        chain.push(b);
        let total = chain.total_counters();
        assert_eq!(total.get("replicas"), 10);
        assert_eq!(total.get("crossing"), 2);
        assert_eq!(total.get("emitted"), 9);
        assert_eq!(chain.counter("replicas"), 10);
        assert_eq!(chain.counter("absent"), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = JobChain::new();
        a.push(cycle(1, 1.0));
        let mut b = JobChain::new();
        b.push(cycle(2, 2.0));
        a.extend(b);
        assert_eq!(a.num_cycles(), 2);
        assert_eq!(a.total_pairs(), 3);
    }
}
