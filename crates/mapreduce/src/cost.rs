//! The simulated-cluster cost model.
//!
//! The paper reports elapsed "hh:mm" on a 16-core Hadoop cluster. Our
//! substitute (documented in DESIGN.md §4) is a deterministic cost model
//! driven by exactly the quantities the paper argues dominate the elapsed
//! time of a join MR job:
//!
//! * reading input records in the map phase,
//! * communicating intermediate key-value pairs to reducers,
//! * per-reducer compute, where reducers are **list-scheduled onto a
//!   fixed number of slots** — so one straggler reducer dominates a cycle,
//!   which is the whole point of the paper's load-balancing analysis
//!   (Fig. 4/5).
//!
//! Costs are in abstract units (unit = processing one record); relative
//! comparisons between algorithms are what matters.

use serde::{Deserialize, Serialize};

/// Weights for the simulated cluster time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of reading one input record in the map phase.
    pub read_cost: f64,
    /// Cost of shuffling one intermediate pair (serialize, spill, network,
    /// merge-sort). The dominant term in the paper's analysis: on
    /// Hadoop-era clusters one shuffled record costs orders of magnitude
    /// more than one in-memory candidate comparison, which is why the
    /// default is 40x `work_cost`.
    pub pair_cost: f64,
    /// Cost of one reducer work unit (one candidate examined).
    pub work_cost: f64,
    /// Cost of emitting one output record.
    pub output_cost: f64,
    /// Fixed startup overhead per MR cycle (job scheduling, task launch) —
    /// why a cascade of 2-way joins pays per-cycle, as Section 6 notes.
    pub cycle_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_cost: 1.0,
            pair_cost: 40.0,
            work_cost: 1.0,
            output_cost: 1.0,
            cycle_overhead: 10_000.0,
        }
    }
}

/// Simulated time of one cycle, broken down per phase (all in cost units).
///
/// [`PhaseCost::total`] reproduces exactly what [`CostModel::simulate`]
/// returns; the breakdown feeds the per-phase columns in the bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Map-phase time: input records read, spread over the slots.
    pub map: f64,
    /// Shuffle time: intermediate pairs communicated, spread over the slots.
    pub shuffle: f64,
    /// Reduce-phase makespan under FIFO slot scheduling.
    pub reduce: f64,
    /// Fixed per-cycle startup overhead.
    pub overhead: f64,
}

impl PhaseCost {
    /// Total simulated cycle time — the sum of all phases plus overhead.
    pub fn total(&self) -> f64 {
        self.overhead + self.map + self.shuffle + self.reduce
    }
}

impl CostModel {
    /// Simulated elapsed time of one cycle.
    ///
    /// * map phase: `records * read_cost` spread over `slots`;
    /// * shuffle: `pairs * pair_cost` spread over `slots`;
    /// * reduce phase: each reducer costs
    ///   `pairs_received * pair_cost + work * work_cost + output * output_cost`;
    ///   reducers are greedily list-scheduled (longest processing time
    ///   first) onto `slots` parallel slots and the phase lasts until the
    ///   last slot finishes.
    pub fn simulate(
        &self,
        map_input_records: u64,
        intermediate_pairs: u64,
        reducer_costs: impl IntoIterator<Item = ReducerCost>,
        slots: usize,
    ) -> f64 {
        self.simulate_phases(map_input_records, intermediate_pairs, reducer_costs, slots)
            .total()
    }

    /// Like [`CostModel::simulate`], but returns the per-phase breakdown.
    pub fn simulate_phases(
        &self,
        map_input_records: u64,
        intermediate_pairs: u64,
        reducer_costs: impl IntoIterator<Item = ReducerCost>,
        slots: usize,
    ) -> PhaseCost {
        let slots = slots.max(1);
        PhaseCost {
            map: map_input_records as f64 * self.read_cost / slots as f64,
            shuffle: intermediate_pairs as f64 * self.pair_cost / slots as f64,
            reduce: self.schedule(reducer_costs, slots),
            overhead: self.cycle_overhead,
        }
    }

    /// Cost charged to a single reducer.
    pub fn reducer_cost(&self, c: ReducerCost) -> f64 {
        c.pairs_received as f64 * self.pair_cost
            + c.work as f64 * self.work_cost
            + c.output as f64 * self.output_cost
    }

    /// Predicted compute cost of one reduce bucket *before* it runs — the
    /// scoring primitive of the skew-driven intra-reduce scheduler
    /// (`mapreduce::schedule`). Unlike [`CostModel::reducer_cost`], which
    /// prices a finished reducer from its reported counters, this
    /// estimates from what the shuffle knows up front: the pairs routed to
    /// the bucket, scaled by the planned kernel's per-candidate cost
    /// relative to backtracking (`work_multiplier`) and a penalty factor
    /// for buckets that must stream back from spilled Dfs runs
    /// (`spill_penalty`; `1.0` for resident buckets).
    pub fn predicted_bucket_cost(
        &self,
        pairs_received: u64,
        work_multiplier: f64,
        spill_penalty: f64,
    ) -> f64 {
        pairs_received as f64 * self.work_cost * work_multiplier * spill_penalty
    }

    /// FIFO list-scheduling of reducer costs onto `slots` slots; returns
    /// the makespan.
    ///
    /// Tasks are assigned in *key order* to the next free slot — how Hadoop
    /// launches reduce tasks. This matters for reproducing the paper's
    /// load-balancing results: All-Rep's heaviest reducers are the
    /// right-most (highest-keyed) ones, so they start last and stretch the
    /// job tail ("the large time taken by All-Rep is due to lagging
    /// reducers", Section 7.1); an LPT scheduler would mask the effect.
    fn schedule(&self, reducer_costs: impl IntoIterator<Item = ReducerCost>, slots: usize) -> f64 {
        let costs: Vec<f64> = reducer_costs
            .into_iter()
            .map(|c| self.reducer_cost(c))
            .collect();
        if costs.is_empty() {
            return 0.0;
        }
        let mut slot_loads = vec![0.0f64; slots.min(costs.len())];
        for c in costs {
            // Assign to the least-loaded slot (first among ties). Written as
            // a plain scan so no comparator can fail: loads are sums of
            // non-negative finite costs.
            let mut best = 0;
            for (i, load) in slot_loads.iter().enumerate() {
                // repolint: allow(panic-propagation): best is a previously visited index
                if *load < slot_loads[best] {
                    best = i;
                }
            }
            // repolint: allow(panic-propagation): best < slot_loads.len() by the scan above
            slot_loads[best] += c;
        }
        slot_loads.into_iter().fold(0.0, f64::max)
    }
}

/// The cost-relevant counters of one reducer invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducerCost {
    /// Intermediate pairs this reducer received.
    pub pairs_received: u64,
    /// Work units it reported.
    pub work: u64,
    /// Output records it emitted.
    pub output: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc(pairs: u64) -> ReducerCost {
        ReducerCost {
            pairs_received: pairs,
            work: 0,
            output: 0,
        }
    }

    #[test]
    fn straggler_dominates() {
        let m = CostModel {
            cycle_overhead: 0.0,
            ..CostModel::default()
        };
        // 4 slots, one giant reducer: makespan ~ giant reducer.
        let balanced = m.simulate(0, 0, (0..8).map(|_| rc(100)), 4);
        let skewed = m.simulate(
            0,
            0,
            [rc(730), rc(10)].into_iter().chain((0..6).map(|_| rc(10))),
            4,
        );
        // Same total pairs in reduce (800), wildly different makespans.
        assert!(
            skewed > balanced * 3.0,
            "skewed={skewed} balanced={balanced}"
        );
    }

    #[test]
    fn perfect_balance_divides_by_slots() {
        let m = CostModel {
            cycle_overhead: 0.0,
            pair_cost: 1.0,
            ..CostModel::default()
        };
        let t = m.simulate(0, 0, (0..4).map(|_| rc(25)), 4);
        // 4 reducers of 25 pairs on 4 slots -> makespan 25.
        assert!((t - 25.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn more_slots_never_slower() {
        let m = CostModel::default();
        let costs: Vec<ReducerCost> = (0..20).map(|i| rc(10 + i * 7)).collect();
        let mut prev = f64::INFINITY;
        for slots in [1, 2, 4, 8, 16] {
            let t = m.simulate(100, 500, costs.iter().copied(), slots);
            assert!(t <= prev + 1e-9, "slots={slots}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn cycle_overhead_charged_once_per_cycle() {
        let m = CostModel::default();
        let t = m.simulate(0, 0, std::iter::empty(), 16);
        assert!((t - m.cycle_overhead).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_is_zero() {
        let m = CostModel::default();
        assert_eq!(m.schedule(std::iter::empty(), 4), 0.0);
    }

    #[test]
    fn predicted_bucket_cost_scales_linearly_in_each_factor() {
        let m = CostModel::default();
        let base = m.predicted_bucket_cost(1000, 1.0, 1.0);
        assert!((base - 1000.0 * m.work_cost).abs() < 1e-9);
        // Cheaper kernel, same pairs: proportionally smaller score.
        assert!((m.predicted_bucket_cost(1000, 0.12, 1.0) - base * 0.12).abs() < 1e-9);
        // Spill penalty inflates, never deflates, a resident score.
        assert!((m.predicted_bucket_cost(1000, 1.0, 1.5) - base * 1.5).abs() < 1e-9);
        assert_eq!(m.predicted_bucket_cost(0, 1.0, 1.5), 0.0);
    }

    #[test]
    fn phase_breakdown_sums_to_simulate() {
        let m = CostModel::default();
        let costs: Vec<ReducerCost> = (0..10).map(|i| rc(5 + i * 3)).collect();
        let phases = m.simulate_phases(200, 900, costs.iter().copied(), 4);
        let total = m.simulate(200, 900, costs.iter().copied(), 4);
        assert!((phases.total() - total).abs() < 1e-9);
        assert!(phases.map > 0.0 && phases.shuffle > 0.0 && phases.reduce > 0.0);
        assert_eq!(phases.overhead, m.cycle_overhead);
    }
}
