//! An in-memory stand-in for HDFS.
//!
//! The paper's multi-cycle algorithms (RCCIS, All-Seq-Matrix, PASM) chain
//! map-reduce jobs through the distributed file system: "Reducer p_i then
//! writes out all the intervals on the disk along-with a flag … The second
//! round of map operations read the output of first round of reducers"
//! (Section 6.1). [`Dfs`] provides exactly that contract — named, immutable
//! files of typed records — plus read/write volume accounting so the
//! harness can report per-cycle I/O the way the paper reasons about the
//! "huge reading cost" of the 2-way cascade.

use crate::record::Record;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Error returned by [`Dfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// No file at the given path.
    NotFound(String),
    /// A file exists but holds records of a different type.
    WrongType(String),
    /// Attempt to overwrite an existing file (HDFS files are immutable).
    AlreadyExists(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs: no such file: {p}"),
            DfsError::WrongType(p) => write!(f, "dfs: wrong record type for file: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "dfs: file already exists: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

struct DfsFile {
    records: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    count: u64,
}

/// An in-memory, append-only namespace of typed record files.
///
/// Files are write-once (like HDFS); reads return a shared handle without
/// copying. All accesses update the volume counters.
#[derive(Default)]
pub struct Dfs {
    files: RwLock<BTreeMap<String, DfsFile>>,
    stats: RwLock<DfsStats>,
}

/// Cumulative I/O volume through a [`Dfs`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DfsStats {
    /// Records written across all files.
    pub records_written: u64,
    /// Approximate bytes written.
    pub bytes_written: u64,
    /// Records read (each `read` counts the full file; `read_range` counts
    /// only the records returned).
    pub records_read: u64,
    /// Approximate bytes read.
    pub bytes_read: u64,
    /// Number of [`Dfs::read_range`] calls (chunked spill-run reads).
    pub range_reads: u64,
}

impl Dfs {
    /// An empty file system.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Writes `records` as the immutable file `path`.
    pub fn write<V: Record>(&self, path: &str, records: Vec<V>) -> Result<(), DfsError> {
        let bytes: u64 = records.iter().map(Record::approx_bytes).sum();
        let count = records.len() as u64;
        // The namespace guard is released before touching the stats lock:
        // the two locks are never held together, so no ordering can deadlock.
        {
            let mut files = self.files.write();
            if files.contains_key(path) {
                return Err(DfsError::AlreadyExists(path.to_string()));
            }
            files.insert(
                path.to_string(),
                DfsFile {
                    records: Arc::new(records),
                    bytes,
                    count,
                },
            );
        }
        let mut stats = self.stats.write();
        stats.records_written += count;
        stats.bytes_written += bytes;
        Ok(())
    }

    /// Reads the file at `path`, returning a shared handle to its records.
    pub fn read<V: Record>(&self, path: &str) -> Result<Arc<Vec<V>>, DfsError> {
        let (records, count, bytes) = {
            let files = self.files.read();
            let file = files
                .get(path)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            let records = file
                .records
                .clone()
                .downcast::<Vec<V>>()
                .map_err(|_| DfsError::WrongType(path.to_string()))?;
            (records, file.count, file.bytes)
        };
        let mut stats = self.stats.write();
        stats.records_read += count;
        stats.bytes_read += bytes;
        Ok(records)
    }

    /// Reads up to `len` records of `path` starting at record `start`
    /// (clamped to the file's end), copying only that range. This is the
    /// chunked reader the spill path streams oversized buckets through, so
    /// a consumer never holds a whole run's `Arc<Vec<V>>` resident. Counts
    /// the records and bytes actually returned — plus one `range_reads` —
    /// in [`DfsStats`].
    pub fn read_range<V: Record>(
        &self,
        path: &str,
        start: usize,
        len: usize,
    ) -> Result<Vec<V>, DfsError> {
        let out: Vec<V> = {
            let files = self.files.read();
            let file = files
                .get(path)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            let records = file
                .records
                .downcast_ref::<Vec<V>>()
                .ok_or_else(|| DfsError::WrongType(path.to_string()))?;
            let start = start.min(records.len());
            let end = start.saturating_add(len).min(records.len());
            // repolint: allow(panic-propagation): start <= end <= records.len() by the clamps above.
            records[start..end].to_vec()
        };
        let bytes: u64 = out.iter().map(Record::approx_bytes).sum();
        let mut stats = self.stats.write();
        stats.records_read += out.len() as u64;
        stats.bytes_read += bytes;
        stats.range_reads += 1;
        Ok(out)
    }

    /// Removes a file (used by algorithms to clean intermediate results).
    pub fn remove(&self, path: &str) -> Result<(), DfsError> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Lists file paths, sorted.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> DfsStats {
        *self.stats.read()
    }
}

impl fmt::Debug for Dfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dfs")
            .field("files", &self.list())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let dfs = Dfs::new();
        dfs.write("a/b", vec![1u64, 2, 3]).unwrap();
        let back = dfs.read::<u64>("a/b").unwrap();
        assert_eq!(*back, vec![1, 2, 3]);
    }

    #[test]
    fn files_are_immutable() {
        let dfs = Dfs::new();
        dfs.write("f", vec![1u32]).unwrap();
        assert_eq!(
            dfs.write("f", vec![2u32]),
            Err(DfsError::AlreadyExists("f".into()))
        );
    }

    #[test]
    fn missing_file_errors() {
        let dfs = Dfs::new();
        assert_eq!(
            dfs.read::<u64>("nope").unwrap_err(),
            DfsError::NotFound("nope".into())
        );
    }

    #[test]
    fn wrong_type_errors() {
        let dfs = Dfs::new();
        dfs.write("f", vec![1u64]).unwrap();
        assert_eq!(
            dfs.read::<u32>("f").unwrap_err(),
            DfsError::WrongType("f".into())
        );
    }

    #[test]
    fn stats_account_volume() {
        let dfs = Dfs::new();
        dfs.write("f", vec![1u64, 2, 3]).unwrap();
        let _ = dfs.read::<u64>("f").unwrap();
        let _ = dfs.read::<u64>("f").unwrap();
        let s = dfs.stats();
        assert_eq!(s.records_written, 3);
        assert_eq!(s.bytes_written, 24);
        assert_eq!(s.records_read, 6);
        assert_eq!(s.bytes_read, 48);
        assert_eq!(s.range_reads, 0);
    }

    #[test]
    fn read_range_returns_clamped_window() {
        let dfs = Dfs::new();
        dfs.write("f", vec![10u64, 20, 30, 40, 50]).unwrap();
        assert_eq!(dfs.read_range::<u64>("f", 1, 2).unwrap(), vec![20, 30]);
        // Past-the-end windows clamp instead of erroring.
        assert_eq!(dfs.read_range::<u64>("f", 4, 10).unwrap(), vec![50]);
        assert!(dfs.read_range::<u64>("f", 9, 3).unwrap().is_empty());
        assert_eq!(
            dfs.read_range::<u64>("nope", 0, 1).unwrap_err(),
            DfsError::NotFound("nope".into())
        );
        assert_eq!(
            dfs.read_range::<u32>("f", 0, 1).unwrap_err(),
            DfsError::WrongType("f".into())
        );
        let s = dfs.stats();
        assert_eq!(s.range_reads, 3);
        assert_eq!(s.records_read, 3);
        assert_eq!(s.bytes_read, 24);
    }

    #[test]
    fn remove_and_list() {
        let dfs = Dfs::new();
        dfs.write("b", vec![1u8]).unwrap();
        dfs.write("a", vec![1u8]).unwrap();
        assert_eq!(dfs.list(), vec!["a".to_string(), "b".to_string()]);
        dfs.remove("a").unwrap();
        assert!(!dfs.exists("a"));
        assert!(dfs.exists("b"));
        assert!(dfs.remove("a").is_err());
    }
}
