//! The execution engine: runs one map-reduce cycle.
//!
//! The data plane is partitioned end-to-end, mirroring Hadoop's actual
//! shuffle rather than a single global sort:
//!
//! 1. **Map** — each worker maps its input chunk and finishes its output as
//!    a locally key-sorted run (the map-side sort before the spill).
//! 2. **Shuffle** — [`merge_sorted_runs`] k-way merges the runs by
//!    `(key, run index)`, building reducer buckets and accumulating the
//!    shuffle-volume counters in the same pass. No code path ever sorts the
//!    full intermediate-pair vector. With
//!    [`ClusterConfig::reduce_memory_budget`] set, a bucket that overflows
//!    the budget is cut into sorted runs on an engine-internal [`crate::Dfs`]
//!    instead of staying resident (see [`crate::spill`]).
//! 3. **Reduce** — workers steal buckets and reducers take *ownership* of
//!    their bucket, consuming it as a pull-based
//!    [`crate::job::ValueStream`]: resident buckets stream out of memory,
//!    spilled buckets stream back chunk-by-chunk from the DFS. The
//!    fault-free path moves the bucket out without a copy; only with a
//!    [`FaultPlan`] attached is the bucket cloned per attempt (for spilled
//!    buckets the clone is just run paths — the retry re-reads them),
//!    mirroring Hadoop re-reading the shuffled segment on retry.
//!
//! Determinism is preserved by construction: ties between runs break on the
//! run (chunk) index and per-run order is emission order, so the merged
//! stream equals a stable sort of the concatenated map outputs — identical
//! for every `worker_threads` count. Each phase is timed separately and
//! reported through [`JobMetrics`].

use crate::cost::{CostModel, ReducerCost};
use crate::dfs::DfsError;
use crate::error::EngineError;
use crate::fault::FaultPlan;
use crate::job::{BucketSource, Emitter, Mapper, ReduceCtx, Reducer, ReducerId, SortedRun};
use crate::metrics::{names, Counters, JobMetrics, ReducerLoad};
use crate::record::Record;
use crate::schedule::{BucketLoad, SchedConfig, SchedulePlan};
use crate::spill::{SpillRun, SpillStats, SpillStore, SpilledBucket};
use crate::telemetry::{detect_stragglers, HistogramRegistry, Telemetry};
use crate::trace::{SpanKind, TraceEvent, Tracer};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
// repolint: allow(wall-clock, file): Instant feeds only the wall/map/shuffle/
// reduce duration metrics in JobMetrics; durations are never keyed, emitted,
// or otherwise able to reach job output.
use std::time::{Duration, Instant};

/// Default candidate count at which a reduce bucket counts as "heavy" and
/// becomes eligible for intra-reducer parallel join kernels.
pub const DEFAULT_HEAVY_BUCKET_THRESHOLD: usize = 4096;

/// Cluster shape and cost parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Parallel reduce slots — the paper runs "16 reduce processes".
    /// Note this is *slots*, not logical reducers: a job may have many more
    /// distinct reducer keys than slots; they queue, and the simulated time
    /// reflects the resulting waves.
    pub reducer_slots: usize,
    /// Worker threads used for the map phase (and for physically running
    /// reducers). Defaults to the machine's available parallelism.
    pub worker_threads: usize,
    /// Upper bound on worker threads one reducer invocation may use for
    /// heavy-bucket compute (the kernel layer's intra-reducer parallelism).
    /// How the grant is actually computed per bucket is governed by
    /// [`ClusterConfig::sched`]: the default skew-driven policy hands up to
    /// this many threads to predicted-heavy buckets (heavy-first, from a
    /// shared token pool) while light buckets run serial. Defaults to
    /// `worker_threads`; set to 1 for strictly serial reducers.
    pub intra_reduce_threads: usize,
    /// Candidate count at which a bucket counts as heavy and may use the
    /// intra-reducer thread grant. Defaults to
    /// [`DEFAULT_HEAVY_BUCKET_THRESHOLD`].
    pub heavy_bucket_threshold: usize,
    /// Per-reducer memory budget in approx-bytes (see
    /// [`Record::approx_bytes`]) — the paper's reducer-size bound. `None`
    /// (the default) keeps every bucket resident; with `Some(b)`, a bucket
    /// whose buffered values exceed `b` bytes during the shuffle merge is
    /// spilled to an engine-internal [`crate::Dfs`] as sorted runs and
    /// streamed back to its reducer on demand. Outputs and data-plane
    /// counters are byte-identical either way (only the `spill.*`
    /// execution-shape counters differ; see
    /// [`crate::metrics::is_execution_shape`]).
    pub reduce_memory_budget: Option<u64>,
    /// Intra-reduce scheduling policy and scoring knobs (see
    /// [`crate::schedule`]). Outputs and data-plane counters are
    /// byte-identical for every policy; only the `sched.*` execution-shape
    /// counters differ.
    pub sched: SchedConfig,
    /// Cost-model weights for the simulated cluster time.
    pub cost: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ClusterConfig {
            reducer_slots: 16,
            worker_threads: threads,
            intra_reduce_threads: threads,
            heavy_bucket_threshold: DEFAULT_HEAVY_BUCKET_THRESHOLD,
            reduce_memory_budget: None,
            sched: SchedConfig::default(),
            cost: CostModel::default(),
        }
    }
}

impl ClusterConfig {
    /// A config with `slots` reduce slots and default cost weights.
    pub fn with_slots(slots: usize) -> Self {
        ClusterConfig {
            reducer_slots: slots,
            ..ClusterConfig::default()
        }
    }
}

/// Result of one map-reduce cycle: the reducer outputs (concatenated in
/// reducer-key order, hence deterministic) plus the job metrics.
#[derive(Debug, Clone)]
pub struct JobOutput<O> {
    /// Output records, ordered by reducer key then emission order.
    pub outputs: Vec<O>,
    /// The cycle's metrics.
    pub metrics: JobMetrics,
}

/// What the reduce phase hands back to `run_job`: per-key outputs (key
/// order), per-reducer loads, the merged user counters, and the cumulative
/// nanoseconds workers spent streaming spilled buckets back from DFS.
type ReducePhaseResult<O> = (Vec<(ReducerId, Vec<O>)>, Vec<ReducerLoad>, Counters, u64);

/// The MapReduce engine. Cheap to construct; holds only configuration, an
/// optional fault plan, an optional tracer and an optional telemetry plane.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: ClusterConfig,
    faults: Option<Arc<FaultPlan>>,
    tracer: Option<Arc<Tracer>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl Engine {
    /// Creates an engine over the given cluster configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        Engine {
            cfg,
            faults: None,
            tracer: None,
            telemetry: None,
        }
    }

    /// Attaches a fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Attaches a [`Tracer`]: every subsequent job records job / phase /
    /// per-worker task / per-reducer spans into it (see [`crate::trace`]).
    /// Without a tracer the engine records nothing and pays only a
    /// per-phase `Option` check.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Attaches a live [`Telemetry`] plane: every subsequent job feeds
    /// progress gauges, heartbeats, histograms, the straggler detector and
    /// the flight recorder (see [`crate::telemetry`]). Without one the
    /// engine pays only per-phase `Option` checks.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry plane, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Runs one map-reduce cycle.
    ///
    /// * `input` — the records to map over (a multi-relation job simply
    ///   concatenates its relations, with the relation id carried inside
    ///   each record, as Hadoop jobs do with multiple input files).
    /// * `mapper` / `reducer` — the job logic; usually closures.
    ///
    /// Output records are ordered by reducer key, then by value emission
    /// order, so results are deterministic regardless of thread count.
    ///
    /// # Errors
    /// Returns [`EngineError::MaxAttemptsExceeded`] when an injected fault
    /// exhausts the fault plan's `max_attempts` (mirroring Hadoop failing
    /// the job), and [`EngineError::Internal`] if an engine invariant is
    /// breached (a bug in the engine itself).
    ///
    /// # Panics
    /// Re-raises a mapper/reducer panic with its original payload — a
    /// panicking map or reduce function is job-logic failure, exactly like
    /// an uncaught exception in a Hadoop task.
    pub fn run_job<I, M, O>(
        &self,
        name: &str,
        input: &[I],
        mapper: impl Mapper<I, M>,
        reducer: impl Reducer<M, O>,
    ) -> Result<JobOutput<O>, EngineError>
    where
        I: Record,
        M: Record,
        O: Record,
    {
        let result = self.run_job_inner(name, input, mapper, reducer);
        // The flight-recorder dump on the typed-error path: freeze the
        // recent-events ring as JSONL for forensics (readable via
        // [`Telemetry::last_flight_dump`]).
        if let (Err(e), Some(tel)) = (&result, &self.telemetry) {
            tel.note_error(name, e);
        }
        result
    }

    fn run_job_inner<I, M, O>(
        &self,
        name: &str,
        input: &[I],
        mapper: impl Mapper<I, M>,
        reducer: impl Reducer<M, O>,
    ) -> Result<JobOutput<O>, EngineError>
    where
        I: Record,
        M: Record,
        O: Record,
    {
        let start = Instant::now();
        let tracer = self.tracer.as_deref();
        let telemetry = self.telemetry.as_deref();
        let job_t0 = tracer.map(Tracer::now_us).unwrap_or(0);
        if let Some(tel) = telemetry {
            tel.job_start(name, input.len() as u64);
        }

        // ---- Map phase: per-worker locally sorted runs ---------------------
        let map_start = Instant::now();
        let map_t0 = tracer.map(Tracer::now_us).unwrap_or(0);
        let (runs, map_input_bytes, mut counters) = self.run_map_phase(name, input, &mapper);
        if let Some(t) = tracer {
            t.record(
                TraceEvent::span(SpanKind::Phase, "map", 0, map_t0, t.now_us())
                    .arg("records", input.len() as u64),
            );
        }
        if let Some(tel) = telemetry {
            tel.phase_end(name, "map", input.len() as u64);
        }
        let map_wall = map_start.elapsed();

        // ---- Shuffle: k-way merge of the runs into reducer buckets ---------
        let shuffle_start = Instant::now();
        let shuffle_t0 = tracer.map(Tracer::now_us).unwrap_or(0);
        let (buckets, shuffle, spill_stats, spill_write_nanos) = match self.cfg.reduce_memory_budget
        {
            // Unlimited budget: the in-memory fast path. No spill store
            // (hence no Dfs) is ever constructed.
            None => {
                let (buckets, stats) = merge_sorted_runs(runs);
                let sources: Vec<(ReducerId, BucketSource<M>)> = buckets
                    .into_iter()
                    .map(|(k, v)| (k, BucketSource::InMemory(v)))
                    .collect();
                (sources, stats, SpillStats::default(), 0u64)
            }
            Some(budget) => {
                let mut store = SpillStore::new(budget, tracer, telemetry);
                let (sources, stats) =
                    merge_sorted_runs_budgeted(runs, &mut store).map_err(|e| {
                        EngineError::Spill {
                            job: name.to_string(),
                            reducer: ReducerId::MAX,
                            detail: e.to_string(),
                        }
                    })?;
                let (spill_stats, write_nanos) = store.finish();
                (sources, stats, spill_stats, write_nanos)
            }
        };
        if let Some(t) = tracer {
            t.record(
                TraceEvent::span(SpanKind::Phase, "shuffle", 0, shuffle_t0, t.now_us())
                    .arg("pairs", shuffle.pairs)
                    .arg("bytes", shuffle.bytes)
                    .arg("reducers", buckets.len() as u64),
            );
        }
        if let Some(tel) = telemetry {
            // Bucket sizes in key order and one shuffle-volume sample —
            // both data-plane (independent of threads and budget), merged
            // under one lock.
            let mut hists = HistogramRegistry::new();
            for (_, source) in &buckets {
                hists.record(names::REDUCE_BUCKET_PAIRS, source.len() as u64);
            }
            hists.record(names::SHUFFLE_JOB_BYTES, shuffle.bytes);
            tel.merge_hists(&hists);
            tel.gauges().add_reducers(buckets.len() as u64);
            tel.phase_end(name, "shuffle", shuffle.pairs);
        }
        let shuffle_wall = shuffle_start.elapsed();

        // ---- Reduce phase ---------------------------------------------------
        let reduce_start = Instant::now();
        let reduce_t0 = tracer.map(Tracer::now_us).unwrap_or(0);
        let (mut results, loads, reduce_counters, spill_read_nanos) =
            self.run_reduce_phase(name, buckets, &reducer)?;
        counters.merge(&reduce_counters);
        if spill_stats.buckets > 0 {
            counters.inc(names::SPILL_BUCKETS, spill_stats.buckets);
            counters.inc(names::SPILL_RUNS, spill_stats.runs);
            counters.inc(names::SPILL_BYTES, spill_stats.bytes);
        }

        // Concatenate outputs in key order, accounting output volume in the
        // same pass (the reduce-side write).
        let output_records: u64 = results.iter().map(|(_, o)| o.len() as u64).sum();
        let mut outputs = Vec::with_capacity(output_records as usize);
        let mut output_bytes = 0u64;
        for (_, o) in &mut results {
            output_bytes += o.iter().map(Record::approx_bytes).sum::<u64>();
            outputs.append(o);
        }
        if let Some(t) = tracer {
            t.record(
                TraceEvent::span(SpanKind::Phase, "reduce", 0, reduce_t0, t.now_us())
                    .arg("reducers", loads.len() as u64)
                    .arg("outputs", output_records),
            );
            t.record(
                TraceEvent::span(SpanKind::Job, name, 0, job_t0, t.now_us())
                    .arg("records", input.len() as u64)
                    .arg("pairs", shuffle.pairs)
                    .arg("outputs", output_records),
            );
        }
        if let Some(tel) = telemetry {
            tel.phase_end(name, "reduce", output_records);
            tel.job_end(name, output_records);
        }
        let reduce_wall = reduce_start.elapsed();

        let simulated = self
            .cfg
            .cost
            .simulate_phases(
                input.len() as u64,
                shuffle.pairs,
                loads.iter().map(|l| ReducerCost {
                    pairs_received: l.pairs_received,
                    work: l.work,
                    output: l.output,
                }),
                self.cfg.reducer_slots,
            )
            .total();

        let metrics = JobMetrics {
            name: name.to_string(),
            map_input_records: input.len() as u64,
            map_input_bytes,
            intermediate_pairs: shuffle.pairs,
            shuffle_bytes: shuffle.bytes,
            distinct_reducers: loads.len() as u64,
            reducer_loads: loads,
            output_records,
            output_bytes,
            wall: start.elapsed(),
            map_wall,
            shuffle_wall,
            reduce_wall,
            spill_wall: Duration::from_nanos(spill_write_nanos + spill_read_nanos),
            simulated,
            counters,
        };

        Ok(JobOutput { outputs, metrics })
    }

    /// Maps `input` in parallel chunks; each worker returns its run locally
    /// sorted by key (stable, so per-key emission order survives), the
    /// bytes it read and its accumulated user counters. Runs, counters and
    /// per-task trace events all come back in chunk order, so the
    /// downstream merge — and the trace — see the same sequence as
    /// sequential execution.
    fn run_map_phase<I, M>(
        &self,
        name: &str,
        input: &[I],
        mapper: &impl Mapper<I, M>,
    ) -> (Vec<SortedRun<M>>, u64, Counters)
    where
        I: Record,
        M: Record,
    {
        let threads = self.cfg.worker_threads.max(1);
        if input.is_empty() {
            return (Vec::new(), 0, Counters::new());
        }
        let chunk = input.len().div_ceil(threads);
        let chunks: Vec<&[I]> = input.chunks(chunk).collect();
        let tracer = self.tracer.as_deref();
        let telemetry = self.telemetry.as_deref();
        let hb_every = telemetry
            .map(|t| t.config().heartbeat_every.max(1))
            .unwrap_or(u64::MAX);
        let mut runs: Vec<SortedRun<M>> = Vec::with_capacity(chunks.len());
        let mut input_bytes = 0u64;
        let mut counters = Counters::new();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        crossbeam::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(ci, c)| {
                    scope.spawn(move |_| {
                        let t0 = tracer.map(Tracer::now_us).unwrap_or(0);
                        let mut em = Emitter::new();
                        let mut bytes = 0u64;
                        let mut processed = 0u64;
                        let mut since_heartbeat = 0u64;
                        for rec in *c {
                            bytes += rec.approx_bytes();
                            mapper.map(rec, &mut em);
                            if let Some(tel) = telemetry {
                                processed += 1;
                                since_heartbeat += 1;
                                if since_heartbeat == hb_every {
                                    since_heartbeat = 0;
                                    tel.gauges().add_map_records(hb_every);
                                    tel.heartbeat(name, "map", ci as u64, processed);
                                }
                            }
                        }
                        if let Some(tel) = telemetry {
                            // Sub-quantum remainder, so progress.map_records
                            // sums to exactly the input record count.
                            tel.gauges().add_map_records(since_heartbeat);
                        }
                        let emitted = em.emitted() as u64;
                        let (run, worker_counters) = em.finish();
                        let event = tracer.map(|t| {
                            TraceEvent::span(SpanKind::Task, "map-task", ci as u64, t0, t.now_us())
                                .arg("records", c.len() as u64)
                                .arg("pairs", emitted)
                        });
                        (run, bytes, worker_counters, event)
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((run, bytes, worker_counters, event)) => {
                        runs.push(run);
                        input_bytes += bytes;
                        counters.merge(&worker_counters);
                        events.extend(event);
                    }
                    // Keep draining the remaining handles so the scope can
                    // close; re-raise the first payload afterwards.
                    Err(payload) => {
                        panic_payload.get_or_insert(payload);
                    }
                }
            }
        })
        .unwrap_or_else(|payload| resume_unwind(payload));
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        if let Some(t) = tracer {
            t.record_batch(events);
        }
        if let Some(tel) = telemetry {
            let mut hists = HistogramRegistry::new();
            for c in &chunks {
                hists.record(names::MAP_TASK_RECORDS, c.len() as u64);
            }
            tel.merge_hists(&hists);
            tel.gauges().add_map_tasks(chunks.len() as u64);
        }
        (runs, input_bytes, counters)
    }

    /// Runs reducers over the key buckets, work-stealing across worker
    /// threads, with fault-injection retries. Each bucket arrives as a
    /// [`BucketSource`] (resident or spilled) and is consumed by the
    /// reducer as a pull-based [`crate::job::ValueStream`].
    ///
    /// Ownership: without a fault plan each bucket is *moved* into its
    /// reducer (zero clones); with a plan attached the bucket stays resident
    /// and every attempt clones it — the in-process analogue of a re-executed
    /// Hadoop reduce task re-reading its shuffled segment from disk. A
    /// spilled bucket's "clone" is just its run paths: every attempt
    /// re-reads the runs from the spill store.
    fn run_reduce_phase<M, O>(
        &self,
        job_name: &str,
        buckets: Vec<(ReducerId, BucketSource<M>)>,
        reducer: &impl Reducer<M, O>,
    ) -> Result<ReducePhaseResult<O>, EngineError>
    where
        M: Record,
        O: Record,
    {
        struct BucketSlot<M> {
            key: ReducerId,
            pairs_received: u64,
            values: parking_lot::Mutex<Option<BucketSource<M>>>,
        }

        /// What one reducer invocation leaves behind: outputs, its load
        /// line, its user counters and (when tracing) its span. Stored per
        /// bucket so the merge below is in bucket order — deterministic no
        /// matter which worker stole which bucket.
        struct ReduceResult<O> {
            key: ReducerId,
            out: Vec<O>,
            load: ReducerLoad,
            counters: Counters,
            event: Option<TraceEvent>,
            service_ns: u64,
            grant: u64,
        }

        let threads = self.cfg.worker_threads.max(1);
        let next = AtomicUsize::new(0);
        let n = buckets.len();
        // Intra-reduce scheduling: score every bucket by predicted work
        // (full logical length — spilled buckets report their pre-spill
        // pair count — times the kernel work multiplier and spill penalty)
        // and build the execution plan: pull order plus the live grant
        // table workers draw thread budgets from. Under the default
        // skew-driven policy heavy buckets run first with up to
        // `intra_reduce_threads`, light buckets run serial, and grants are
        // recomputed from remaining pool capacity as buckets finish. The
        // plan never affects output bytes — results land in per-bucket
        // slots and merge in bucket order below.
        let bucket_loads: Vec<BucketLoad> = buckets.iter().map(|(_, s)| s.load()).collect();
        let plan = SchedulePlan::new(&self.cfg, &bucket_loads);
        let heavy_threshold = self.cfg.heavy_bucket_threshold;
        let faults = self.faults.clone();
        let tracer = self.tracer.as_deref();
        let telemetry = self.telemetry.clone();
        let hb_every = telemetry
            .as_ref()
            .map_or(u64::MAX, |t| t.config().heartbeat_every.max(1));
        let job_label: Arc<str> = Arc::from(job_name);
        let slots: Vec<BucketSlot<M>> = buckets
            .into_iter()
            .map(|(key, source)| BucketSlot {
                key,
                pairs_received: source.len() as u64,
                values: parking_lot::Mutex::new(Some(source)),
            })
            .collect();
        type ResultSlot<O> = parking_lot::Mutex<Option<ReduceResult<O>>>;
        let result_slots: Vec<ResultSlot<O>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        let mut worker_error: Option<EngineError> = None;
        let mut worker_events: Vec<TraceEvent> = Vec::new();
        let mut spill_read_nanos = 0u64;

        // Shared state is captured by reference; the `move` below only
        // copies these references (plus each worker's index) into the
        // closure.
        let slots = &slots;
        let next = &next;
        let faults = &faults;
        let result_refs = &result_slots;
        let telemetry_ref = &telemetry;
        let job_label = &job_label;
        let plan = &plan;

        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(n.max(1)))
                .map(|w| {
                    scope.spawn(move |_| {
                        let t0 = tracer.map(Tracer::now_us).unwrap_or(0);
                        let mut buckets_run = 0u64;
                        let mut spill_read_nanos = 0u64;
                        loop {
                            let pos = next.fetch_add(1, Ordering::Relaxed);
                            if pos >= n {
                                break;
                            }
                            // Workers steal *pull positions*; the plan maps
                            // each position to a bucket index so heavy
                            // buckets are picked up first under the
                            // skew-driven order (identity for the static
                            // policies).
                            let Some(&i) = plan.order().get(pos) else {
                                break;
                            };
                            // repolint: allow(panic-propagation): i < n == slots.len() — plan.order() is a permutation of 0..n
                            let slot = &slots[i];
                            // The bucket's thread grant, drawn from the
                            // plan's token pool now (not at spawn time) so
                            // it reflects capacity freed by finished
                            // buckets. Held across fault retries; returned
                            // when the bucket completes.
                            let grant = plan.acquire(i);
                            let mut attempts = 0u32;
                            loop {
                                attempts += 1;
                                if let Some(plan) = &faults {
                                    if plan.should_fail(job_name, slot.key) {
                                        if attempts >= plan.max_attempts() {
                                            // The job fails, as Hadoop's
                                            // would; surfaced as a typed
                                            // error at the join point.
                                            return Err(EngineError::MaxAttemptsExceeded {
                                                job: job_name.to_string(),
                                                reducer: slot.key,
                                                attempts,
                                            });
                                        }
                                        continue; // retry (re-read below)
                                    }
                                }
                                let taken = if faults.is_some() {
                                    // Retryable run: keep the bucket resident and
                                    // hand the reducer a fresh copy per attempt.
                                    slot.values.lock().clone()
                                } else {
                                    // Fault-free run: move the bucket out.
                                    slot.values.lock().take()
                                };
                                // `next.fetch_add` hands each bucket index to
                                // exactly one worker, so an empty slot means
                                // an engine bug, not a user error.
                                let Some(source) = taken else {
                                    return Err(EngineError::Internal(
                                        "reduce bucket consumed twice",
                                    ));
                                };
                                let spilled = source.is_spilled();
                                let r0 = tracer.map(Tracer::now_us).unwrap_or(0);
                                let svc0 = telemetry_ref.as_ref().map_or(0, |t| t.now_nanos());
                                let mut out = Vec::new();
                                let mut ctx =
                                    ReduceCtx::with_parallelism(slot.key, grant, heavy_threshold);
                                let mut values = source.into_stream();
                                if let Some(tel) = telemetry_ref {
                                    values.enable_heartbeats(
                                        Arc::clone(tel),
                                        Arc::clone(job_label),
                                        slot.key,
                                        hb_every,
                                    );
                                }
                                reducer.reduce(&mut ctx, &mut values, &mut out);
                                // Streaming can't surface a Result per value,
                                // so a spilled-read failure ends the stream
                                // early and is latched for this check.
                                if let Some(e) = values.io_error() {
                                    return Err(EngineError::Spill {
                                        job: job_name.to_string(),
                                        reducer: slot.key,
                                        detail: e.to_string(),
                                    });
                                }
                                spill_read_nanos += values.io_nanos();
                                // Drop the stream before reading the clock so
                                // its heartbeat remainder is flushed within
                                // the bucket's service window.
                                drop(values);
                                let service_ns = telemetry_ref
                                    .as_ref()
                                    .map_or(0, |t| t.now_nanos().saturating_sub(svc0));
                                let event = tracer.map(|t| {
                                    TraceEvent::span(
                                        SpanKind::Reduce,
                                        "reduce",
                                        w as u64,
                                        r0,
                                        t.now_us(),
                                    )
                                    .arg("key", slot.key)
                                    .arg("pairs", slot.pairs_received)
                                    .arg("work", ctx.work())
                                    .arg("out", out.len() as u64)
                                    .arg("spilled", spilled as u64)
                                    .arg("grant", grant as u64)
                                });
                                let load = ReducerLoad {
                                    key: slot.key,
                                    pairs_received: slot.pairs_received,
                                    work: ctx.work(),
                                    output: out.len() as u64,
                                    attempts,
                                };
                                let ReduceCtx { counters, .. } = ctx;
                                // repolint: allow(panic-propagation): i < n == result_refs.len(), same guard
                                *result_refs[i].lock() = Some(ReduceResult {
                                    key: slot.key,
                                    out,
                                    load,
                                    counters,
                                    event,
                                    service_ns,
                                    grant: grant as u64,
                                });
                                if let Some(tel) = telemetry_ref {
                                    tel.gauges().note_reducer_done();
                                }
                                buckets_run += 1;
                                break;
                            }
                            // Return the grant so queued buckets see the
                            // freed capacity (error paths abort the whole
                            // job, so they need not bother).
                            plan.release(grant);
                        }
                        let stint = tracer.map(|t| {
                            TraceEvent::span(
                                SpanKind::Task,
                                "reduce-worker",
                                w as u64,
                                t0,
                                t.now_us(),
                            )
                            .arg("buckets", buckets_run)
                            .arg("heavy_buckets", plan.heavy_count() as u64)
                        });
                        Ok((stint, spill_read_nanos))
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok((event, nanos))) => {
                        worker_events.extend(event);
                        spill_read_nanos += nanos;
                    }
                    Ok(Err(e)) => {
                        worker_error.get_or_insert(e);
                    }
                    Err(payload) => {
                        panic_payload.get_or_insert(payload);
                    }
                }
            }
        })
        .unwrap_or_else(|payload| resume_unwind(payload));
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        if let Some(e) = worker_error {
            return Err(e);
        }

        let mut outs = Vec::with_capacity(n);
        let mut loads = Vec::with_capacity(n);
        let mut counters = Counters::new();
        let mut reduce_events: Vec<TraceEvent> = Vec::new();
        let mut service: Vec<(ReducerId, u64, u64)> = Vec::new();
        let mut active_peaks: Vec<u64> = Vec::new();
        let mut grants: Vec<u64> = Vec::with_capacity(n);
        for slot in result_slots {
            let r = slot
                .into_inner()
                .ok_or(EngineError::Internal("reducer left no result"))?;
            if telemetry.is_some() {
                service.push((r.key, r.load.pairs_received, r.service_ns));
                let peak = r.counters.get(names::KERNEL_ACTIVE_PEAK);
                if peak > 0 {
                    active_peaks.push(peak);
                }
            }
            grants.push(r.grant);
            outs.push((r.key, r.out));
            loads.push(r.load);
            counters.merge(&r.counters);
            reduce_events.extend(r.event);
        }
        // Scheduler shape counters (the `sched.` prefix is execution-shape:
        // grants vary with policy, thread count and pool state, never the
        // data plane). `sched.grants` sums the per-bucket grants, so any
        // value above the bucket count proves some bucket ran
        // multi-threaded — what the repolint-audit sched leg asserts.
        // Recorded only when the plan deviated from the all-serial floor,
        // mirroring the `spill.*` gate: trivial jobs keep a clean counter
        // set.
        let granted_total: u64 = grants.iter().sum();
        if granted_total > n as u64 || plan.heavy_count() > 0 {
            counters.inc(names::SCHED_GRANTS, granted_total);
            if plan.heavy_count() > 0 {
                counters.inc(names::SCHED_HEAVY_BUCKETS, plan.heavy_count() as u64);
            }
        }
        if let Some(tel) = &telemetry {
            // Service-time and active-peak samples in bucket (key) order —
            // the same deterministic merge discipline as the trace batches
            // below. `kernel.active_peak` sketches the event sweep's
            // execution shape: the log2 histogram of per-bucket maximum
            // active-array occupancy.
            let mut hists = HistogramRegistry::new();
            for &(_, _, ns) in &service {
                hists.record(names::REDUCE_SERVICE_NS, ns);
            }
            for &peak in &active_peaks {
                hists.record(names::KERNEL_ACTIVE_PEAK, peak);
            }
            // Per-bucket grants in bucket (key) order: the grant histogram
            // the audit sched leg inspects (`max() > 1` on the heavy mix).
            for &g in &grants {
                hists.record(names::SCHED_GRANT_THREADS, g);
            }
            tel.merge_hists(&hists);
            let cfg = tel.config();
            let stragglers =
                detect_stragglers(&service, cfg.straggler_fraction, cfg.min_straggler_reducers);
            if !stragglers.is_empty() {
                // Execution-shape by classification: rates depend on wall
                // time, so the counter only exists when telemetry is on.
                counters.inc(names::TELEMETRY_STRAGGLERS, stragglers.len() as u64);
            }
            tel.note_stragglers(job_name, &stragglers);
        }
        if let Some(t) = tracer {
            // Per-reducer spans in bucket (key) order, then worker stints in
            // worker order — the deterministic merge of the trace buffers.
            t.record_batch(reduce_events);
            t.record_batch(worker_events);
        }
        Ok((outs, loads, counters, spill_read_nanos))
    }
}

/// Shuffle-volume counters accumulated by [`merge_sorted_runs`] — one touch
/// per pair, in the merge itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShuffleStats {
    /// Intermediate pairs merged (the paper's communication cost).
    pub pairs: u64,
    /// Approximate bytes moved mapper → reducer (value bytes + 8-byte key).
    pub bytes: u64,
}

/// The k-way merge core shared by the in-memory and budgeted shuffle
/// paths: invokes `each` for every `(key, value)` pair in merged order
/// (keys ascend; ties between runs break on run index) while accumulating
/// the shuffle-volume counters. An `Err` from `each` aborts the merge.
fn merge_runs_each<M: Record, E>(
    runs: Vec<SortedRun<M>>,
    mut each: impl FnMut(ReducerId, M) -> Result<(), E>,
) -> Result<ShuffleStats, E> {
    let mut iters: Vec<std::vec::IntoIter<(ReducerId, M)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<(ReducerId, M)>> = iters.iter_mut().map(Iterator::next).collect();
    let mut heap: BinaryHeap<Reverse<(ReducerId, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(run, head)| head.as_ref().map(|(k, _)| Reverse((*k, run))))
        .collect();

    let mut stats = ShuffleStats::default();
    while let Some(Reverse((key, run))) = heap.pop() {
        // A heap entry is pushed only when `heads[run]` was just refilled,
        // so a missing head is unreachable; skip defensively over panicking
        // in the shuffle hot path.
        // repolint: allow(panic-propagation): run < runs.len() — heap entries carry valid run ids
        let Some((_, value)) = heads[run].take() else {
            debug_assert!(false, "heap entry without a head");
            continue;
        };
        stats.pairs += 1;
        stats.bytes += value.approx_bytes() + 8;
        each(key, value)?;
        // repolint: allow(panic-propagation): same valid run id as above
        heads[run] = iters[run].next();
        // repolint: allow(panic-propagation): same valid run id as above
        if let Some((k, _)) = &heads[run] {
            heap.push(Reverse((*k, run)));
        }
    }
    Ok(stats)
}

/// K-way merges per-worker key-sorted runs into reducer buckets.
///
/// Ties between runs holding the same key break on the run index, so the
/// merged stream is exactly a *stable* sort of the concatenated runs: keys
/// ascend, and values within a key keep mapper-emission order. The full
/// pair vector is never materialized or globally sorted.
pub fn merge_sorted_runs<M: Record>(
    runs: Vec<SortedRun<M>>,
) -> (Vec<(ReducerId, Vec<M>)>, ShuffleStats) {
    let mut buckets: Vec<(ReducerId, Vec<M>)> = Vec::new();
    let result: Result<ShuffleStats, std::convert::Infallible> =
        merge_runs_each(runs, |key, value| {
            match buckets.last_mut() {
                Some((last, vals)) if *last == key => vals.push(value),
                _ => buckets.push((key, vec![value])),
            }
            Ok(())
        });
    let stats = match result {
        Ok(stats) => stats,
        Err(never) => match never {},
    };
    (buckets, stats)
}

/// The budgeted merge's result: per-reducer bucket sources (in-memory or
/// spilled) plus the shuffle volume stats.
type BudgetedShuffle<M> = (Vec<(ReducerId, BucketSource<M>)>, ShuffleStats);

/// The budgeted shuffle: the same merge as [`merge_sorted_runs`], but a
/// bucket buffers at most `store.budget()` approx-bytes before the buffered
/// prefix is flushed to the spill store as a run. A bucket that never
/// overflows comes out as [`BucketSource::InMemory`] — byte-for-byte the
/// fast path — while an overflowing bucket becomes
/// [`BucketSource::Spilled`] over its runs (plus the in-memory tail, also
/// flushed). The merged stream is thread-count-independent, so the flush
/// points — and therefore the whole spill layout — depend only on the
/// budget.
fn merge_sorted_runs_budgeted<M: Record>(
    runs: Vec<SortedRun<M>>,
    store: &mut SpillStore<'_>,
) -> Result<BudgetedShuffle<M>, DfsError> {
    struct OpenBucket<M> {
        key: ReducerId,
        vals: Vec<M>,
        buf_bytes: u64,
        runs: Vec<SpillRun>,
        total: usize,
    }

    fn close<M: Record>(
        store: &mut SpillStore<'_>,
        open: OpenBucket<M>,
    ) -> Result<(ReducerId, BucketSource<M>), DfsError> {
        if open.runs.is_empty() {
            return Ok((open.key, BucketSource::InMemory(open.vals)));
        }
        let mut runs = open.runs;
        if !open.vals.is_empty() {
            runs.push(store.spill_run(open.key, open.vals)?);
        }
        store.note_bucket();
        let bucket = SpilledBucket::new(Arc::clone(store.dfs()), runs, open.total);
        Ok((open.key, BucketSource::Spilled(bucket)))
    }

    let budget = store.budget();
    let mut buckets: Vec<(ReducerId, BucketSource<M>)> = Vec::new();
    let mut cur: Option<OpenBucket<M>> = None;
    let stats = merge_runs_each(runs, |key, value| -> Result<(), DfsError> {
        if cur.as_ref().map(|o| o.key) != Some(key) {
            if let Some(done) = cur.take() {
                buckets.push(close(store, done)?);
            }
            cur = Some(OpenBucket {
                key,
                vals: Vec::new(),
                buf_bytes: 0,
                runs: Vec::new(),
                total: 0,
            });
        }
        let Some(open) = cur.as_mut() else {
            debug_assert!(false, "open bucket was just ensured");
            return Ok(());
        };
        open.buf_bytes += value.approx_bytes();
        open.total += 1;
        open.vals.push(value);
        if open.buf_bytes > budget {
            let run = store.spill_run(open.key, std::mem::take(&mut open.vals))?;
            open.runs.push(run);
            open.buf_bytes = 0;
        }
        Ok(())
    })?;
    if let Some(done) = cur.take() {
        buckets.push(close(store, done)?);
    }
    Ok((buckets, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ValueStream;

    fn engine() -> Engine {
        Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: 3,
            cost: CostModel::default(),
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn groups_all_values_for_a_key() {
        let out = engine()
            .run_job(
                "group",
                &[1u64, 2, 3, 4, 5, 6, 7, 8],
                |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 2, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    out.push((ctx.key, vs.sum()));
                },
            )
            .unwrap();
        assert_eq!(out.outputs, vec![(0, 20), (1, 16)]);
        assert_eq!(out.metrics.distinct_reducers, 2);
        assert_eq!(out.metrics.map_input_records, 8);
    }

    #[test]
    fn value_order_is_emission_order() {
        // All values to one key: reducer must see input order even though
        // the map phase ran on 3 threads.
        let input: Vec<u64> = (0..1000).collect();
        let out = engine()
            .run_job(
                "order",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    out.extend(vs);
                },
            )
            .unwrap();
        assert_eq!(out.outputs, input);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let input: Vec<u64> = (0..500).map(|i| i * 7 % 101).collect();
        let run = |threads: usize| {
            Engine::new(ClusterConfig {
                reducer_slots: 4,
                worker_threads: threads,
                cost: CostModel::default(),
                ..ClusterConfig::default()
            })
            .run_job(
                "det",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| {
                    e.emit(n % 7, n);
                    if n % 3 == 0 {
                        e.emit(n % 5, n * 2);
                    }
                },
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    for v in vs.by_ref() {
                        out.push((ctx.key, v));
                    }
                },
            )
            .unwrap()
            .outputs
        };
        let base = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), base, "threads = {t}");
        }
    }

    #[test]
    fn empty_input_produces_empty_job() {
        let out = engine()
            .run_job(
                "empty",
                &Vec::<u64>::new(),
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| out.extend(vs),
            )
            .unwrap();
        assert!(out.outputs.is_empty());
        assert_eq!(out.metrics.intermediate_pairs, 0);
        assert_eq!(out.metrics.distinct_reducers, 0);
    }

    #[test]
    fn metrics_count_pairs_and_outputs() {
        let out = engine()
            .run_job(
                "metrics",
                &[10u64, 20, 30],
                |&n: &u64, e: &mut Emitter<u64>| {
                    // Each record to 2 reducers: 6 pairs.
                    e.emit(0, n);
                    e.emit(1, n);
                },
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    out.push(vs.len() as u64);
                },
            )
            .unwrap();
        assert_eq!(out.metrics.intermediate_pairs, 6);
        assert_eq!(out.metrics.output_records, 2);
        assert_eq!(out.metrics.shuffle_bytes, 6 * 16);
        assert_eq!(out.metrics.map_input_bytes, 3 * 8);
        assert_eq!(out.metrics.output_bytes, 2 * 8);
        assert!(out.metrics.simulated > 0.0);
    }

    #[test]
    fn phase_walls_are_recorded_and_bounded_by_total() {
        let input: Vec<u64> = (0..2000).collect();
        let out = engine()
            .run_job(
                "phases",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 16, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    out.push((ctx.key, vs.sum()));
                },
            )
            .unwrap();
        let m = &out.metrics;
        let phases = m.map_wall + m.shuffle_wall + m.reduce_wall;
        assert!(phases <= m.wall, "phases {phases:?} > wall {:?}", m.wall);
        // The phases cover the whole data plane; only metric assembly is
        // outside them, so they cannot all be zero for a 2000-record job.
        assert!(m.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn reducer_work_units_recorded() {
        let out = engine()
            .run_job(
                "work",
                &[1u64, 2, 3],
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    ctx.add_work(100);
                    out.extend(vs);
                },
            )
            .unwrap();
        assert_eq!(out.metrics.total_work(), 100);
    }

    #[test]
    fn fault_injection_retries_deterministically() {
        let input: Vec<u64> = (0..100).collect();
        let clean = engine()
            .run_job(
                "faulty",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 5, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    out.push((ctx.key, vs.sum()));
                },
            )
            .unwrap();
        let faulty = Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: 3,
            cost: CostModel::default(),
            ..ClusterConfig::default()
        })
        .with_faults(FaultPlan::new().fail("faulty", 2, 2))
        .run_job(
            "faulty",
            &input,
            |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 5, n),
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                out.push((ctx.key, vs.sum()));
            },
        )
        .unwrap();
        assert_eq!(
            faulty.outputs, clean.outputs,
            "retry must not change output"
        );
        assert_eq!(faulty.metrics.retries(), 2);
        let load2 = faulty
            .metrics
            .reducer_loads
            .iter()
            .find(|l| l.key == 2)
            .unwrap();
        assert_eq!(load2.attempts, 3);
    }

    #[test]
    fn fault_exceeding_attempts_fails_job() {
        let result = Engine::new(ClusterConfig::with_slots(2))
            .with_faults(FaultPlan::new().fail("j", 0, 10).with_max_attempts(3))
            .run_job(
                "j",
                &[1u64],
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| out.extend(vs),
            );
        match result {
            Err(EngineError::MaxAttemptsExceeded {
                job,
                reducer,
                attempts,
            }) => {
                assert_eq!(job, "j");
                assert_eq!(reducer, 0);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected MaxAttemptsExceeded, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "mapper exploded on 7")]
    fn map_panic_payload_is_reraised() {
        let _ = engine()
            .run_job(
                "boom",
                &(0..32u64).collect::<Vec<_>>(),
                |&n: &u64, e: &mut Emitter<u64>| {
                    assert!(n != 7, "mapper exploded on {n}");
                    e.emit(0, n);
                },
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| out.extend(vs),
            )
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "reducer exploded on key 3")]
    fn reduce_panic_payload_is_reraised() {
        let _ = engine()
            .run_job(
                "boom",
                &(0..32u64).collect::<Vec<_>>(),
                |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 5, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    assert!(ctx.key != 3, "reducer exploded on key {}", ctx.key);
                    out.extend(vs);
                },
            )
            .unwrap();
    }

    #[test]
    fn merge_orders_keys_and_preserves_value_order() {
        // Two runs as two map workers would produce them (each key-sorted).
        let (buckets, stats) = merge_sorted_runs(vec![
            vec![(1u64, 'b'), (5, 'a'), (5, 'c')],
            vec![(1, 'd'), (3, 'e')],
        ]);
        assert_eq!(
            buckets,
            vec![(1, vec!['b', 'd']), (3, vec!['e']), (5, vec!['a', 'c'])]
        );
        assert_eq!(stats.pairs, 5);
        assert_eq!(stats.bytes, 5 * (4 + 8)); // char is 4 bytes + 8-byte key
    }

    #[test]
    fn merge_breaks_key_ties_by_run_index() {
        // Every run holds key 0; values must come out in run order.
        let (buckets, _) = merge_sorted_runs(vec![
            vec![(0u64, 1u64), (0, 2)],
            vec![(0, 3)],
            vec![(0, 4), (0, 5)],
        ]);
        assert_eq!(buckets, vec![(0, vec![1, 2, 3, 4, 5])]);
    }

    #[test]
    fn merge_handles_empty_runs() {
        let (buckets, stats) = merge_sorted_runs(vec![Vec::new(), vec![(2u64, 9u64)], Vec::new()]);
        assert_eq!(buckets, vec![(2, vec![9])]);
        assert_eq!(stats.pairs, 1);
        let (empty, stats) = merge_sorted_runs(Vec::<SortedRun<u64>>::new());
        assert!(empty.is_empty());
        assert_eq!(stats, ShuffleStats::default());
    }

    #[test]
    fn counters_merge_from_map_and_reduce() {
        let out = engine()
            .run_job(
                "counted",
                &(0..100u64).collect::<Vec<_>>(),
                |&n: &u64, e: &mut Emitter<u64>| {
                    e.inc("map.seen", 1);
                    if n % 2 == 0 {
                        e.inc("map.even", 1);
                    }
                    e.emit(n % 4, n);
                },
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    ctx.inc("reduce.values", vs.len() as u64);
                    out.push((ctx.key, vs.sum()));
                },
            )
            .unwrap();
        let c = &out.metrics.counters;
        assert_eq!(c.get("map.seen"), 100);
        assert_eq!(c.get("map.even"), 50);
        assert_eq!(c.get("reduce.values"), 100);
        assert_eq!(c.get("absent"), 0);
    }

    #[test]
    fn counters_deterministic_across_thread_counts() {
        let input: Vec<u64> = (0..333).collect();
        let run = |threads: usize| {
            Engine::new(ClusterConfig {
                reducer_slots: 4,
                worker_threads: threads,
                cost: CostModel::default(),
                ..ClusterConfig::default()
            })
            .run_job(
                "cdet",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| {
                    e.inc("pairs", 1 + (n % 3));
                    e.emit(n % 7, n);
                },
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    ctx.inc("groups", 1);
                    out.push(vs.len() as u64);
                },
            )
            .unwrap()
            .metrics
            .counters
            .clone()
        };
        let base = run(1);
        for t in [2, 8] {
            assert_eq!(run(t), base, "threads = {t}");
        }
    }

    #[test]
    fn tracer_records_job_phase_task_and_reduce_spans() {
        let tracer = Arc::new(Tracer::new());
        let eng = Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: 3,
            cost: CostModel::default(),
            ..ClusterConfig::default()
        })
        .with_tracer(tracer.clone());
        let _ = eng
            .run_job(
                "traced",
                &(0..64u64).collect::<Vec<_>>(),
                |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 4, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    ctx.add_work(vs.len() as u64);
                    out.push((ctx.key, vs.sum()));
                },
            )
            .unwrap();
        let events = tracer.snapshot();
        let names_of = |kind: SpanKind| -> Vec<String> {
            events
                .iter()
                .filter(|e| e.kind == kind)
                .map(|e| e.name.clone())
                .collect()
        };
        assert_eq!(names_of(SpanKind::Job), vec!["traced"]);
        assert_eq!(names_of(SpanKind::Phase), vec!["map", "shuffle", "reduce"]);
        // 3 worker threads → 3 map chunks; plus up to 3 reduce-worker stints.
        let tasks = names_of(SpanKind::Task);
        assert_eq!(tasks.iter().filter(|n| *n == "map-task").count(), 3);
        assert!(tasks.iter().filter(|n| *n == "reduce-worker").count() >= 1);
        // One reduce span per bucket, in key order.
        let reduce_keys: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == SpanKind::Reduce)
            .map(|e| {
                e.args
                    .iter()
                    .find(|(k, _)| *k == "key")
                    .expect("reduce span has key arg")
                    .1
            })
            .collect();
        assert_eq!(reduce_keys, vec![0, 1, 2, 3]);
        let reduce0 = events.iter().find(|e| e.kind == SpanKind::Reduce).unwrap();
        assert!(reduce0.args.contains(&("pairs", 16)));
        assert!(reduce0.args.contains(&("work", 16)));
        assert!(reduce0.args.contains(&("out", 1)));
        // The export shapes hold on a real trace.
        let json = tracer.chrome_trace();
        assert!(json.contains("\"cat\":\"job\""), "{json}");
        assert!(json.contains("\"cat\":\"phase\""), "{json}");
        assert!(json.contains("\"cat\":\"task\""), "{json}");
    }

    #[test]
    fn no_tracer_records_nothing() {
        let eng = engine();
        assert!(eng.tracer().is_none());
        let out = eng
            .run_job(
                "untraced",
                &[1u64, 2, 3],
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| out.extend(vs),
            )
            .unwrap();
        assert_eq!(out.outputs, vec![1, 2, 3]);
        assert!(out.metrics.counters.is_empty());
    }

    /// Clone-counting value for asserting the zero-clone reduce contract.
    #[derive(Debug, PartialEq)]
    struct Tracked(u64);

    static TRACKED_CLONES: AtomicUsize = AtomicUsize::new(0);

    impl Clone for Tracked {
        fn clone(&self) -> Self {
            TRACKED_CLONES.fetch_add(1, Ordering::SeqCst);
            Tracked(self.0)
        }
    }

    impl Record for Tracked {}

    #[test]
    fn reduce_clones_only_under_fault_plan() {
        // Single test covers both paths so the shared counter sees no
        // interference from parallel test threads (no other test uses
        // `Tracked`).
        let input: Vec<u64> = (0..64).collect();
        let mapper = |&n: &u64, e: &mut Emitter<Tracked>| e.emit(n % 4, Tracked(n));
        let reducer =
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<Tracked>, out: &mut Vec<(u64, u64)>| {
                out.push((ctx.key, vs.map(|t| t.0).sum()));
            };

        let before = TRACKED_CLONES.load(Ordering::SeqCst);
        let clean = engine()
            .run_job("noclone", &input, mapper, reducer)
            .unwrap();
        let clean_clones = TRACKED_CLONES.load(Ordering::SeqCst) - before;
        assert_eq!(clean_clones, 0, "fault-free path must not clone buckets");

        let before = TRACKED_CLONES.load(Ordering::SeqCst);
        let faulty = Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: 3,
            cost: CostModel::default(),
            ..ClusterConfig::default()
        })
        .with_faults(FaultPlan::new().fail("noclone", 1, 1))
        .run_job("noclone", &input, mapper, reducer)
        .unwrap();
        let fault_clones = TRACKED_CLONES.load(Ordering::SeqCst) - before;
        // One clone per successful attempt: 4 buckets, each reduced once
        // (failed attempts bail before reading values): 64 values across 4
        // buckets of 16.
        assert_eq!(fault_clones, 64, "fault path clones each bucket once");
        assert_eq!(faulty.outputs, clean.outputs);
    }

    fn budgeted_engine(budget: Option<u64>, threads: usize) -> Engine {
        Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: threads,
            intra_reduce_threads: threads,
            reduce_memory_budget: budget,
            cost: CostModel::default(),
            ..ClusterConfig::default()
        })
    }

    /// A job whose 3 buckets hold ~133 u64 values (~1 KiB) each.
    fn spill_job(eng: &Engine) -> JobOutput<(u64, u64)> {
        let input: Vec<u64> = (0..400).collect();
        eng.run_job(
            "spilly",
            &input,
            |&n: &u64, e: &mut Emitter<u64>| {
                e.inc("map.seen", 1);
                e.emit(n % 3, n);
            },
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                ctx.inc("groups", 1);
                out.push((ctx.key, vs.sum()));
            },
        )
        .unwrap()
    }

    #[test]
    fn tiny_budget_spills_and_matches_unlimited() {
        let base = spill_job(&budgeted_engine(None, 3));
        assert_eq!(base.metrics.counters.get("spill.buckets"), 0);
        assert_eq!(base.metrics.spill_wall, Duration::ZERO);
        for budget in [64, 1024] {
            for threads in [1, 2, 8] {
                let out = spill_job(&budgeted_engine(Some(budget), threads));
                assert_eq!(
                    out.outputs, base.outputs,
                    "budget {budget} threads {threads}"
                );
                assert_eq!(out.metrics.reducer_loads, base.metrics.reducer_loads);
                // Every non-spill counter must match the unlimited run.
                for (k, v) in out.metrics.counters.iter() {
                    if !crate::metrics::is_execution_shape(k) {
                        assert_eq!(v, base.metrics.counters.get(k), "counter {k}");
                    }
                }
                let spilled = out.metrics.counters.get("spill.buckets");
                assert_eq!(spilled, 3, "all three ~1KiB buckets overflow {budget}");
                assert!(out.metrics.counters.get("spill.runs") >= spilled);
                assert!(out.metrics.counters.get("spill.bytes") > 0);
            }
        }
    }

    #[test]
    fn spill_layout_is_thread_count_independent() {
        let base = spill_job(&budgeted_engine(Some(128), 1));
        for threads in [2, 8] {
            let out = spill_job(&budgeted_engine(Some(128), threads));
            // Including the spill.* counters: flush points are cut from the
            // merged stream, which never depends on worker_threads.
            assert_eq!(out.metrics.counters, base.metrics.counters);
            assert_eq!(out.outputs, base.outputs);
        }
    }

    #[test]
    fn generous_budget_stays_in_memory() {
        let out = spill_job(&budgeted_engine(Some(1 << 20), 3));
        assert_eq!(out.metrics.counters.get("spill.buckets"), 0);
        assert_eq!(out.metrics.counters.get("spill.runs"), 0);
        assert_eq!(out.metrics.spill_wall, Duration::ZERO);
    }

    #[test]
    fn spilled_values_keep_emission_order() {
        // All values to one key, budget far below the bucket size: the
        // reducer must still see exact input order through the spill runs.
        let input: Vec<u64> = (0..3000).collect();
        let out = budgeted_engine(Some(256), 3)
            .run_job(
                "spill-order",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    out.extend(vs);
                },
            )
            .unwrap();
        assert_eq!(out.outputs, input);
        assert_eq!(out.metrics.counters.get("spill.buckets"), 1);
        assert!(out.metrics.counters.get("spill.runs") > 1);
    }

    #[test]
    fn spilled_bucket_fault_retry_rereads_runs() {
        let input: Vec<u64> = (0..600).collect();
        let run = |eng: Engine| {
            eng.run_job(
                "spill-faulty",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 4, n),
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    out.push((ctx.key, vs.sum()));
                },
            )
            .unwrap()
        };
        let clean = run(budgeted_engine(Some(128), 3));
        let faulty = run(
            budgeted_engine(Some(128), 3).with_faults(FaultPlan::new().fail("spill-faulty", 2, 2)),
        );
        assert_eq!(faulty.outputs, clean.outputs);
        assert_eq!(faulty.metrics.retries(), 2);
    }

    #[test]
    fn spill_spans_reach_the_tracer() {
        let tracer = Arc::new(Tracer::new());
        let eng = budgeted_engine(Some(64), 2).with_tracer(tracer.clone());
        let _ = spill_job(&eng);
        let spills: Vec<_> = tracer
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == SpanKind::Spill)
            .collect();
        assert!(!spills.is_empty(), "budgeted run must record spill spans");
        assert!(spills.iter().all(|e| e.name == "spill-run"));
        assert!(tracer.chrome_trace().contains("\"cat\":\"spill\""));

        // A reduce span carries the spilled flag.
        let reduce = tracer
            .snapshot()
            .into_iter()
            .find(|e| e.kind == SpanKind::Reduce)
            .unwrap();
        assert!(reduce.args.contains(&("spilled", 1)));
    }

    #[test]
    fn budgeted_merge_splits_buckets_at_flush_points() {
        // One key, 8-byte values, budget 32: a run flushes after every 5th
        // value (40 > 32), so 12 values make 2 full runs + a 2-value tail.
        let run: SortedRun<u64> = (0..12u64).map(|v| (0, v)).collect();
        let mut store = SpillStore::new(32, None, None);
        let (buckets, stats) = merge_sorted_runs_budgeted(vec![run], &mut store).unwrap();
        assert_eq!(stats.pairs, 12);
        assert_eq!(buckets.len(), 1);
        let (key, source) = &buckets[0];
        assert_eq!(*key, 0);
        assert!(source.is_spilled());
        assert_eq!(source.len(), 12);
        let (spill_stats, _) = store.finish();
        assert_eq!(spill_stats.buckets, 1);
        assert_eq!(spill_stats.runs, 3);
        assert_eq!(spill_stats.bytes, 12 * 8);
    }
}
