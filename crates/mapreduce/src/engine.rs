//! The execution engine: runs one map-reduce cycle.

use crate::cost::{CostModel, ReducerCost};
use crate::fault::FaultPlan;
use crate::job::{Emitter, Mapper, ReduceCtx, Reducer, ReducerId};
use crate::metrics::{JobMetrics, ReducerLoad};
use crate::record::Record;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cluster shape and cost parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Parallel reduce slots — the paper runs "16 reduce processes".
    /// Note this is *slots*, not logical reducers: a job may have many more
    /// distinct reducer keys than slots; they queue, and the simulated time
    /// reflects the resulting waves.
    pub reducer_slots: usize,
    /// Worker threads used for the map phase (and for physically running
    /// reducers). Defaults to the machine's available parallelism.
    pub worker_threads: usize,
    /// Cost-model weights for the simulated cluster time.
    pub cost: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ClusterConfig {
            reducer_slots: 16,
            worker_threads: threads,
            cost: CostModel::default(),
        }
    }
}

impl ClusterConfig {
    /// A config with `slots` reduce slots and default cost weights.
    pub fn with_slots(slots: usize) -> Self {
        ClusterConfig {
            reducer_slots: slots,
            ..ClusterConfig::default()
        }
    }
}

/// Result of one map-reduce cycle: the reducer outputs (concatenated in
/// reducer-key order, hence deterministic) plus the job metrics.
#[derive(Debug, Clone)]
pub struct JobOutput<O> {
    /// Output records, ordered by reducer key then emission order.
    pub outputs: Vec<O>,
    /// The cycle's metrics.
    pub metrics: JobMetrics,
}

/// The MapReduce engine. Cheap to construct; holds only configuration and an
/// optional fault plan.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: ClusterConfig,
    faults: Option<Arc<FaultPlan>>,
}

impl Engine {
    /// Creates an engine over the given cluster configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        Engine { cfg, faults: None }
    }

    /// Attaches a fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Runs one map-reduce cycle.
    ///
    /// * `input` — the records to map over (a multi-relation job simply
    ///   concatenates its relations, with the relation id carried inside
    ///   each record, as Hadoop jobs do with multiple input files).
    /// * `mapper` / `reducer` — the job logic; usually closures.
    ///
    /// Output records are ordered by reducer key, then by value emission
    /// order, so results are deterministic regardless of thread count.
    ///
    /// # Panics
    /// Panics if an injected fault exceeds the fault plan's `max_attempts`
    /// (mirroring Hadoop failing the job).
    pub fn run_job<I, M, O>(
        &self,
        name: &str,
        input: &[I],
        mapper: impl Mapper<I, M>,
        reducer: impl Reducer<M, O>,
    ) -> JobOutput<O>
    where
        I: Record,
        M: Record,
        O: Record,
    {
        let start = Instant::now();

        // ---- Map phase -----------------------------------------------------
        let pairs = self.run_map_phase(input, &mapper);
        let intermediate_pairs = pairs.len() as u64;
        let shuffle_bytes: u64 = pairs.iter().map(|(_, v)| v.approx_bytes() + 8).sum();

        // ---- Shuffle: group by key, preserving emission order --------------
        let buckets = shuffle(pairs);

        // ---- Reduce phase ---------------------------------------------------
        let (mut results, loads) = self.run_reduce_phase(name, buckets, &reducer);

        // Concatenate outputs in key order.
        let output_records: u64 = results.iter().map(|(_, o)| o.len() as u64).sum();
        let mut outputs = Vec::with_capacity(output_records as usize);
        for (_, o) in &mut results {
            outputs.append(o);
        }

        let simulated = self.cfg.cost.simulate(
            input.len() as u64,
            intermediate_pairs,
            loads.iter().map(|l| ReducerCost {
                pairs_received: l.pairs_received,
                work: l.work,
                output: l.output,
            }),
            self.cfg.reducer_slots,
        );

        let metrics = JobMetrics {
            name: name.to_string(),
            map_input_records: input.len() as u64,
            intermediate_pairs,
            shuffle_bytes,
            distinct_reducers: loads.len() as u64,
            reducer_loads: loads,
            output_records,
            wall: start.elapsed(),
            simulated,
        };

        JobOutput { outputs, metrics }
    }

    /// Maps `input` in parallel chunks; pairs are concatenated in chunk
    /// order so the overall emission order equals sequential execution.
    fn run_map_phase<I, M>(&self, input: &[I], mapper: &impl Mapper<I, M>) -> Vec<(ReducerId, M)>
    where
        I: Record,
        M: Record,
    {
        let threads = self.cfg.worker_threads.max(1);
        if input.is_empty() {
            return Vec::new();
        }
        let chunk = input.len().div_ceil(threads);
        let chunks: Vec<&[I]> = input.chunks(chunk).collect();
        let mut per_chunk: Vec<Vec<(ReducerId, M)>> = Vec::with_capacity(chunks.len());
        crossbeam::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|c| {
                    scope.spawn(move |_| {
                        let mut em = Emitter::new();
                        for rec in *c {
                            mapper.map(rec, &mut em);
                        }
                        em.pairs
                    })
                })
                .collect();
            for h in handles {
                per_chunk.push(h.join().expect("map worker panicked"));
            }
        })
        .expect("map scope panicked");
        let total: usize = per_chunk.iter().map(Vec::len).sum();
        let mut pairs = Vec::with_capacity(total);
        for mut p in per_chunk {
            pairs.append(&mut p);
        }
        pairs
    }

    /// Runs reducers over the key buckets, work-stealing across worker
    /// threads, with fault-injection retries.
    fn run_reduce_phase<M, O>(
        &self,
        job_name: &str,
        buckets: Vec<(ReducerId, Vec<M>)>,
        reducer: &impl Reducer<M, O>,
    ) -> (Vec<(ReducerId, Vec<O>)>, Vec<ReducerLoad>)
    where
        M: Record,
        O: Record,
    {
        let threads = self.cfg.worker_threads.max(1);
        let next = AtomicUsize::new(0);
        let n = buckets.len();
        let faults = self.faults.clone();
        type Slot<O> = parking_lot::Mutex<Option<(ReducerId, Vec<O>, ReducerLoad)>>;
        let results_slots: Vec<Slot<O>> = (0..n).map(|_| parking_lot::Mutex::new(None)).collect();

        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..threads.min(n.max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (key, values) = &buckets[i];
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        if let Some(plan) = &faults {
                            if plan.should_fail(job_name, *key) {
                                assert!(
                                    attempts < plan.max_attempts(),
                                    "reducer {key} of job {job_name} exceeded max attempts"
                                );
                                continue; // retry (re-clone input below)
                            }
                        }
                        // Reducers take ownership of their group (they may
                        // sort/drain); retry therefore re-clones from the
                        // immutable bucket, mirroring Hadoop re-reading the
                        // shuffled segment from disk.
                        let mut vals = values.clone();
                        let mut out = Vec::new();
                        let mut ctx = ReduceCtx::new(*key);
                        reducer.reduce(&mut ctx, &mut vals, &mut out);
                        let load = ReducerLoad {
                            key: *key,
                            pairs_received: values.len() as u64,
                            work: ctx.work(),
                            output: out.len() as u64,
                            attempts,
                        };
                        *results_slots[i].lock() = Some((*key, out, load));
                        break;
                    }
                });
            }
        });
        if let Err(payload) = scope_result {
            // Re-raise the worker's panic with its original message.
            // crossbeam aggregates unjoined child panics into a Vec.
            match payload.downcast::<Vec<Box<dyn std::any::Any + Send>>>() {
                Ok(mut panics) if !panics.is_empty() => std::panic::resume_unwind(panics.remove(0)),
                Ok(_) => panic!("reduce worker panicked"),
                Err(other) => std::panic::resume_unwind(other),
            }
        }

        let mut outs = Vec::with_capacity(n);
        let mut loads = Vec::with_capacity(n);
        for slot in results_slots {
            let (key, o, load) = slot.into_inner().expect("reducer result missing");
            outs.push((key, o));
            loads.push(load);
        }
        (outs, loads)
    }
}

/// Groups intermediate pairs by key. Values within a group keep emission
/// order; groups come out in ascending key order.
fn shuffle<M>(mut pairs: Vec<(ReducerId, M)>) -> Vec<(ReducerId, Vec<M>)> {
    // Stable sort keeps per-key emission order intact.
    pairs.sort_by_key(|(k, _)| *k);
    let mut buckets: Vec<(ReducerId, Vec<M>)> = Vec::new();
    for (k, v) in pairs {
        match buckets.last_mut() {
            Some((last_k, vals)) if *last_k == k => vals.push(v),
            _ => buckets.push((k, vec![v])),
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: 3,
            cost: CostModel::default(),
        })
    }

    #[test]
    fn groups_all_values_for_a_key() {
        let out = engine().run_job(
            "group",
            &[1u64, 2, 3, 4, 5, 6, 7, 8],
            |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 2, n),
            |ctx: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<(u64, u64)>| {
                out.push((ctx.key, vs.iter().sum()));
            },
        );
        assert_eq!(out.outputs, vec![(0, 20), (1, 16)]);
        assert_eq!(out.metrics.distinct_reducers, 2);
        assert_eq!(out.metrics.map_input_records, 8);
    }

    #[test]
    fn value_order_is_emission_order() {
        // All values to one key: reducer must see input order even though
        // the map phase ran on 3 threads.
        let input: Vec<u64> = (0..1000).collect();
        let out = engine().run_job(
            "order",
            &input,
            |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
            |_: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<u64>| {
                out.append(vs);
            },
        );
        assert_eq!(out.outputs, input);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let input: Vec<u64> = (0..500).map(|i| i * 7 % 101).collect();
        let run = |threads: usize| {
            Engine::new(ClusterConfig {
                reducer_slots: 4,
                worker_threads: threads,
                cost: CostModel::default(),
            })
            .run_job(
                "det",
                &input,
                |&n: &u64, e: &mut Emitter<u64>| {
                    e.emit(n % 7, n);
                    if n % 3 == 0 {
                        e.emit(n % 5, n * 2);
                    }
                },
                |ctx: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<(u64, u64)>| {
                    for v in vs.iter() {
                        out.push((ctx.key, *v));
                    }
                },
            )
            .outputs
        };
        let base = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), base, "threads = {t}");
        }
    }

    #[test]
    fn empty_input_produces_empty_job() {
        let out = engine().run_job(
            "empty",
            &Vec::<u64>::new(),
            |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
            |_: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<u64>| out.append(vs),
        );
        assert!(out.outputs.is_empty());
        assert_eq!(out.metrics.intermediate_pairs, 0);
        assert_eq!(out.metrics.distinct_reducers, 0);
    }

    #[test]
    fn metrics_count_pairs_and_outputs() {
        let out = engine().run_job(
            "metrics",
            &[10u64, 20, 30],
            |&n: &u64, e: &mut Emitter<u64>| {
                // Each record to 2 reducers: 6 pairs.
                e.emit(0, n);
                e.emit(1, n);
            },
            |_: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<u64>| {
                out.push(vs.len() as u64);
            },
        );
        assert_eq!(out.metrics.intermediate_pairs, 6);
        assert_eq!(out.metrics.output_records, 2);
        assert_eq!(out.metrics.shuffle_bytes, 6 * 16);
        assert!(out.metrics.simulated > 0.0);
    }

    #[test]
    fn reducer_work_units_recorded() {
        let out = engine().run_job(
            "work",
            &[1u64, 2, 3],
            |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
            |ctx: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<u64>| {
                ctx.add_work(100);
                out.append(vs);
            },
        );
        assert_eq!(out.metrics.total_work(), 100);
    }

    #[test]
    fn fault_injection_retries_deterministically() {
        let input: Vec<u64> = (0..100).collect();
        let clean = engine().run_job(
            "faulty",
            &input,
            |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 5, n),
            |ctx: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<(u64, u64)>| {
                out.push((ctx.key, vs.iter().sum()));
            },
        );
        let faulty = Engine::new(ClusterConfig {
            reducer_slots: 4,
            worker_threads: 3,
            cost: CostModel::default(),
        })
        .with_faults(FaultPlan::new().fail("faulty", 2, 2))
        .run_job(
            "faulty",
            &input,
            |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 5, n),
            |ctx: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<(u64, u64)>| {
                out.push((ctx.key, vs.iter().sum()));
            },
        );
        assert_eq!(
            faulty.outputs, clean.outputs,
            "retry must not change output"
        );
        assert_eq!(faulty.metrics.retries(), 2);
        let load2 = faulty
            .metrics
            .reducer_loads
            .iter()
            .find(|l| l.key == 2)
            .unwrap();
        assert_eq!(load2.attempts, 3);
    }

    #[test]
    #[should_panic(expected = "exceeded max attempts")]
    fn fault_exceeding_attempts_fails_job() {
        let _ = Engine::new(ClusterConfig::with_slots(2))
            .with_faults(FaultPlan::new().fail("j", 0, 10).with_max_attempts(3))
            .run_job(
                "j",
                &[1u64],
                |&n: &u64, e: &mut Emitter<u64>| e.emit(0, n),
                |_: &mut ReduceCtx, vs: &mut Vec<u64>, out: &mut Vec<u64>| out.append(vs),
            );
    }

    #[test]
    fn shuffle_orders_keys_and_preserves_value_order() {
        let buckets = shuffle(vec![(5u64, 'a'), (1, 'b'), (5, 'c'), (1, 'd'), (3, 'e')]);
        assert_eq!(
            buckets,
            vec![(1, vec!['b', 'd']), (3, vec!['e']), (5, vec!['a', 'c']),]
        );
    }
}
