//! Typed engine failures.
//!
//! The engine never panics on its own behalf: every failure mode it can
//! detect — a fault plan exhausting a reducer's retry budget, or a breached
//! internal invariant — surfaces as an [`EngineError`] from
//! [`crate::Engine::run_job`]. Panics raised *inside user map/reduce
//! functions* are still re-raised with their original payload (they are
//! bugs in job logic, not engine failures), mirroring Hadoop failing a task
//! on an uncaught exception.
//!
//! Keeping the engine's own paths panic-free is a determinism requirement
//! as much as an ergonomic one: a panic mid-reduce tears down workers at a
//! thread-schedule-dependent point, while a typed error propagates through
//! one deterministic join point. `repolint` rule `no-panic` enforces this
//! contract statically over the engine sources.

use crate::job::ReducerId;
use std::fmt;

/// Error from one map-reduce cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A reducer task failed more times than the fault plan's
    /// `max_attempts` allows — the in-process analogue of Hadoop failing
    /// the job after `mapred.reduce.max.attempts`.
    MaxAttemptsExceeded {
        /// The job whose reducer kept failing.
        job: String,
        /// The reducer key.
        reducer: ReducerId,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// An engine invariant was breached — always a bug in the engine, never
    /// a user error. The payload names the invariant.
    Internal(&'static str),
    /// A spill-path DFS operation failed while writing or streaming back an
    /// over-budget bucket. The spill store is engine-internal, so this too
    /// is an engine bug rather than a user error, but it carries the job
    /// and reducer for diagnosis.
    Spill {
        /// The job whose spill I/O failed.
        job: String,
        /// The reducer bucket involved (`u64::MAX` when the failure
        /// happened shuffle-side before a bucket was attributable).
        reducer: ReducerId,
        /// The underlying DFS failure.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MaxAttemptsExceeded {
                job,
                reducer,
                attempts,
            } => write!(
                f,
                "reducer {reducer} of job {job} exceeded max attempts ({attempts} tries)"
            ),
            EngineError::Internal(what) => write!(f, "engine invariant breached: {what}"),
            EngineError::Spill {
                job,
                reducer,
                detail,
            } => write!(
                f,
                "spill I/O failed for reducer {reducer} of job {job}: {detail}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = EngineError::MaxAttemptsExceeded {
            job: "j".into(),
            reducer: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("reducer 3"));
        assert!(e.to_string().contains("job j"));
        assert!(EngineError::Internal("x").to_string().contains('x'));
        let s = EngineError::Spill {
            job: "j".into(),
            reducer: 7,
            detail: "dfs: no such file: spill/7/0".into(),
        };
        assert!(s.to_string().contains("reducer 7"));
        assert!(s.to_string().contains("spill/7/0"));
    }
}
