//! Fault injection: forced reducer failures and automatic retry.
//!
//! Hadoop re-executes failed reduce tasks; because the join reducers are
//! pure functions of their input group, a retry must produce byte-identical
//! output. [`FaultPlan`] lets tests inject a one-shot failure for chosen
//! `(job, reducer)` coordinates; the engine retries the task and records the
//! extra attempt in [`crate::ReducerLoad::attempts`]. Integration tests use
//! this to demonstrate the determinism claim.

use crate::job::ReducerId;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// A set of one-shot reducer failures to inject, keyed by
/// `(job name, reducer key)`. Each entry fails that reducer's first
/// `count` attempts; the engine then retries until success or until
/// [`FaultPlan::max_attempts`] is exceeded.
#[derive(Debug, Default)]
pub struct FaultPlan {
    failures: Mutex<BTreeMap<(String, ReducerId), u32>>,
    max_attempts: u32,
}

impl FaultPlan {
    /// An empty plan (no injected failures). `max_attempts` defaults to 4,
    /// matching Hadoop's default `mapred.reduce.max.attempts`.
    pub fn new() -> Self {
        FaultPlan {
            failures: Mutex::new(BTreeMap::new()),
            max_attempts: 4,
        }
    }

    /// Injects `count` consecutive failures for reducer `key` of job `job`.
    pub fn fail(mut self, job: &str, key: ReducerId, count: u32) -> Self {
        self.failures
            .get_mut()
            .insert((job.to_string(), key), count);
        self
    }

    /// Overrides the maximum attempts per reducer task.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Maximum attempts per reducer task.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Consumes one planned failure for `(job, key)` if any remain.
    /// Returns `true` when the attempt should fail.
    pub fn should_fail(&self, job: &str, key: ReducerId) -> bool {
        let mut map = self.failures.lock();
        if let Some(remaining) = map.get_mut(&(job.to_string(), key)) {
            if *remaining > 0 {
                *remaining -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_planned_failures() {
        let plan = FaultPlan::new().fail("j", 3, 2);
        assert!(plan.should_fail("j", 3));
        assert!(plan.should_fail("j", 3));
        assert!(!plan.should_fail("j", 3)); // exhausted
        assert!(!plan.should_fail("j", 4)); // different key
        assert!(!plan.should_fail("k", 3)); // different job
    }

    #[test]
    fn default_max_attempts_matches_hadoop() {
        assert_eq!(FaultPlan::new().max_attempts(), 4);
        assert_eq!(FaultPlan::new().with_max_attempts(0).max_attempts(), 1);
    }
}
