//! Mapper and reducer abstractions.
//!
//! A mapper turns one input record into intermediate `(ReducerId, value)`
//! pairs via an [`Emitter`]; the engine routes all pairs with the same key to
//! the same reducer invocation. Reducers receive their key, the values in
//! deterministic (mapper-emission) order, and a [`ReduceCtx`] through which
//! they report *work units* — the quantity the simulated cost model charges
//! for reducer compute (e.g. candidate pairs examined by a join).

use crate::dfs::DfsError;
use crate::metrics::Counters;
use crate::record::Record;
use crate::spill::{RunCursor, SpilledBucket};
use crate::telemetry::{HeartbeatHook, Telemetry};
use std::sync::Arc;

/// Identifies a logical reducer. Join algorithms encode either a 1-D
/// partition index or the coordinates of a cell in an m-dimensional reducer
/// matrix into this id (see `ij-core`'s `CellSpace`).
pub type ReducerId = u64;

/// One map worker's output, stably sorted by reducer key: the in-process
/// analogue of a Hadoop map task's sorted spill file. Runs from different
/// workers are combined by [`crate::engine::merge_sorted_runs`].
pub type SortedRun<M> = Vec<(ReducerId, M)>;

/// The map-side context: collects the intermediate pairs a mapper emits
/// and carries the worker's user-defined [`Counters`].
///
/// One `Emitter` lives per map worker (not per record), so counters
/// incremented here accumulate across the worker's whole chunk and are
/// merged across workers by the engine — the map half of Hadoop's
/// user-counter facility. [`MapCtx`] is an alias making the context role
/// explicit at algorithm call sites.
#[derive(Debug)]
pub struct Emitter<M> {
    pub(crate) pairs: Vec<(ReducerId, M)>,
    pub(crate) counters: Counters,
}

/// The map-side context handed to [`Mapper`]s — an alias for [`Emitter`]
/// (the emitter *is* the per-worker map context; see its docs).
pub type MapCtx<M> = Emitter<M>;

impl<M> Emitter<M> {
    pub(crate) fn new() -> Self {
        Emitter {
            pairs: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Emits one intermediate pair `(key, value)` — i.e. communicates
    /// `value` to reducer `key`.
    #[inline]
    pub fn emit(&mut self, key: ReducerId, value: M) {
        self.pairs.push((key, value));
    }

    /// Emits the same value to every key in `keys`, cloning as needed.
    pub fn emit_to_all(&mut self, keys: impl IntoIterator<Item = ReducerId>, value: &M)
    where
        M: Clone,
    {
        for k in keys {
            self.pairs.push((k, value.clone()));
        }
    }

    /// Number of pairs emitted so far by this worker.
    pub fn emitted(&self) -> usize {
        self.pairs.len()
    }

    /// Adds `delta` to the user counter `name` (Hadoop-style; merged
    /// across workers into [`crate::JobMetrics::counters`]).
    #[inline]
    pub fn inc(&mut self, name: &str, delta: u64) {
        self.counters.inc(name, delta);
    }

    /// The counters this worker accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Finishes the worker's map output as a key-sorted run (Hadoop's
    /// map-side sort before the spill). The sort is stable, so values for
    /// one key stay in emission order — the engine's determinism contract.
    pub fn into_sorted_run(self) -> SortedRun<M> {
        self.finish().0
    }

    /// Finishes the worker: the key-sorted run (see [`Emitter::into_sorted_run`])
    /// plus the worker's accumulated counters.
    pub(crate) fn finish(self) -> (SortedRun<M>, Counters) {
        let mut pairs = self.pairs;
        pairs.sort_by_key(|(k, _)| *k);
        (pairs, self.counters)
    }
}

/// Map side of a job: one input record in, intermediate pairs out.
///
/// Implemented for any `Fn(&I, &mut Emitter<M>) + Sync`, so jobs are usually
/// written as closures.
pub trait Mapper<I, M>: Sync {
    /// Processes one input record.
    fn map(&self, record: &I, out: &mut Emitter<M>);
}

impl<I, M, F> Mapper<I, M> for F
where
    F: Fn(&I, &mut Emitter<M>) + Sync,
{
    #[inline]
    fn map(&self, record: &I, out: &mut Emitter<M>) {
        self(record, out)
    }
}

/// Per-invocation context handed to a reducer.
#[derive(Debug)]
pub struct ReduceCtx {
    /// The key this invocation owns.
    pub key: ReducerId,
    pub(crate) work: u64,
    pub(crate) counters: Counters,
    thread_budget: usize,
    heavy_bucket_threshold: usize,
}

impl ReduceCtx {
    /// A standalone context with a serial compute budget — what the engine
    /// hands out by default, and what tests and the oracle construct
    /// directly.
    pub fn new(key: ReducerId) -> Self {
        ReduceCtx::with_parallelism(key, 1, crate::engine::DEFAULT_HEAVY_BUCKET_THRESHOLD)
    }

    /// A context carrying the engine's intra-reducer parallelism grant:
    /// heavy-bucket kernels may use up to `thread_budget` worker threads
    /// once a bucket reaches `heavy_bucket_threshold` candidates. The
    /// engine computes `thread_budget` per bucket via
    /// [`crate::schedule::SchedulePlan::acquire`] — under the default
    /// skew-driven policy a predicted-heavy bucket gets up to
    /// `intra_reduce_threads` from the shared pool, a light one gets 1.
    pub(crate) fn with_parallelism(
        key: ReducerId,
        thread_budget: usize,
        heavy_bucket_threshold: usize,
    ) -> Self {
        ReduceCtx {
            key,
            work: 0,
            counters: Counters::new(),
            thread_budget: thread_budget.max(1),
            heavy_bucket_threshold,
        }
    }

    /// Worker threads this invocation may use for heavy-bucket compute
    /// (≥ 1; 1 means strictly serial).
    pub fn thread_budget(&self) -> usize {
        self.thread_budget
    }

    /// Candidate count at which a bucket counts as "heavy" and may be
    /// split across the thread budget.
    pub fn heavy_bucket_threshold(&self) -> usize {
        self.heavy_bucket_threshold
    }

    /// Reports `units` of compute done by this reducer (candidate pairs
    /// examined, comparisons, …). Feeds the simulated cost model; a reducer
    /// that never calls this is charged only for the pairs it received.
    #[inline]
    pub fn add_work(&mut self, units: u64) {
        self.work += units;
    }

    /// Work units reported so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Adds `delta` to the user counter `name` (Hadoop-style; merged
    /// across reducers into [`crate::JobMetrics::counters`]).
    #[inline]
    pub fn inc(&mut self, name: &str, delta: u64) {
        self.counters.inc(name, delta);
    }

    /// The counters this invocation accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

/// Where a reduce bucket's values physically live: resident in memory (the
/// fast path — zero behavior change from the pre-streaming engine) or
/// spilled to DFS runs when the bucket overflowed
/// [`crate::ClusterConfig::reduce_memory_budget`]. Either way,
/// [`BucketSource::into_stream`] yields the values in the engine's
/// deterministic bucket order.
#[derive(Debug)]
pub enum BucketSource<M> {
    /// The bucket fit its budget and stayed resident.
    InMemory(Vec<M>),
    /// The bucket overflowed and lives as DFS runs (see [`crate::spill`]).
    Spilled(SpilledBucket<M>),
}

impl<M: Clone> Clone for BucketSource<M> {
    fn clone(&self) -> Self {
        match self {
            BucketSource::InMemory(v) => BucketSource::InMemory(v.clone()),
            BucketSource::Spilled(b) => BucketSource::Spilled(b.clone()),
        }
    }
}

impl<M: Record> BucketSource<M> {
    /// Number of values in the bucket.
    pub fn len(&self) -> usize {
        match self {
            BucketSource::InMemory(v) => v.len(),
            BucketSource::Spilled(b) => b.len(),
        }
    }

    /// Whether the bucket holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bucket was spilled to DFS.
    pub fn is_spilled(&self) -> bool {
        matches!(self, BucketSource::Spilled(_))
    }

    /// What the intra-reduce scheduler needs to score this bucket before
    /// it runs. For a spilled bucket `pairs` is the *full logical length*
    /// — [`crate::spill::SpilledBucket::len`] counts every value the
    /// budgeted merge routed here, not the in-memory tail — so scores are
    /// independent of `reduce_memory_budget`.
    pub fn load(&self) -> crate::schedule::BucketLoad {
        crate::schedule::BucketLoad {
            pairs: self.len() as u64,
            spilled: self.is_spilled(),
        }
    }

    /// The pull-based value stream a reducer consumes.
    pub fn into_stream(self) -> ValueStream<M> {
        match self {
            BucketSource::InMemory(v) => ValueStream::from_vec(v),
            BucketSource::Spilled(b) => {
                let total = b.len();
                ValueStream {
                    remaining: total,
                    inner: StreamInner::Spilled(b.cursor()),
                    hb: None,
                }
            }
        }
    }
}

#[derive(Debug)]
enum StreamInner<M> {
    Mem(std::vec::IntoIter<M>),
    Spilled(RunCursor<M>),
}

/// The pull-based view of one reduce bucket's values, in deterministic
/// (mapper-emission) order — what [`Reducer::reduce`] consumes instead of
/// a resident `&mut Vec<M>`.
///
/// It is an [`Iterator`] (and [`ExactSizeIterator`]), so reducer bodies
/// use `values.by_ref()` where they previously drained a vector, or any
/// adapter (`sum`, `map`, `collect`, …) directly. For spilled buckets each
/// `next` may fetch a chunk from the DFS; a read failure ends the stream
/// early and is latched in [`ValueStream::io_error`], which the engine
/// checks after the reducer returns (surfaced as
/// [`crate::EngineError::Spill`]).
#[derive(Debug)]
pub struct ValueStream<M> {
    inner: StreamInner<M>,
    remaining: usize,
    hb: Option<HeartbeatHook>,
}

impl<M: Record> ValueStream<M> {
    /// A stream over an in-memory value vector (what tests and standalone
    /// reducer invocations construct directly).
    pub fn from_vec(values: Vec<M>) -> Self {
        ValueStream {
            remaining: values.len(),
            inner: StreamInner::Mem(values.into_iter()),
            hb: None,
        }
    }

    /// Attaches reduce-side heartbeat bookkeeping: every `every`-th pull
    /// emits a telemetry heartbeat for reducer `id`, and the exact pull
    /// count is flushed into the progress gauges when the stream drops.
    pub(crate) fn enable_heartbeats(
        &mut self,
        telemetry: Arc<Telemetry>,
        job: Arc<str>,
        id: ReducerId,
        every: u64,
    ) {
        self.hb = Some(HeartbeatHook::new(telemetry, job, id, every));
    }

    /// Values not yet pulled.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Whether the stream reads back spilled DFS runs.
    pub fn is_spilled(&self) -> bool {
        matches!(self.inner, StreamInner::Spilled(_))
    }

    /// Drains the rest of the stream into a vector (the materializing
    /// escape hatch for reducers that genuinely need random access).
    pub fn take_vec(&mut self) -> Vec<M> {
        self.by_ref().collect()
    }

    /// The latched DFS read error, if streaming a spilled bucket failed.
    pub fn io_error(&self) -> Option<&DfsError> {
        match &self.inner {
            StreamInner::Mem(_) => None,
            StreamInner::Spilled(c) => c.error(),
        }
    }

    /// Cumulative wall time this stream spent reading spilled runs.
    pub(crate) fn io_nanos(&self) -> u64 {
        match &self.inner {
            StreamInner::Mem(_) => 0,
            StreamInner::Spilled(c) => c.io_nanos(),
        }
    }
}

impl<M: Record> Iterator for ValueStream<M> {
    type Item = M;

    fn next(&mut self) -> Option<M> {
        let v = match &mut self.inner {
            StreamInner::Mem(it) => it.next(),
            StreamInner::Spilled(c) => c.next_value(),
        };
        match &v {
            // An early end (spilled-read error) zeroes the count so
            // `len`/`size_hint` stay consistent with what `next` returns.
            None => self.remaining = 0,
            Some(_) => {
                self.remaining -= 1;
                if let Some(hb) = &mut self.hb {
                    hb.tick();
                }
            }
        }
        v
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<M: Record> ExactSizeIterator for ValueStream<M> {}

impl<M> Drop for ValueStream<M> {
    fn drop(&mut self) {
        // Flush the sub-quantum pull remainder so progress.reduce_values
        // lands on the exact pull count even for partially consumed
        // streams.
        if let Some(hb) = &mut self.hb {
            hb.flush();
        }
    }
}

/// Reduce side of a job: all values routed to one key in, output records out.
///
/// Implemented for any `Fn(&mut ReduceCtx, &mut ValueStream<M>, &mut Vec<O>) + Sync`.
/// Values arrive as a pull-based [`ValueStream`] in deterministic
/// (mapper-emission) order; small buckets stream straight out of memory,
/// budget-overflow buckets stream back from DFS spill runs — the reducer
/// body is identical either way.
pub trait Reducer<M, O>: Sync {
    /// Processes the group for `ctx.key`.
    fn reduce(&self, ctx: &mut ReduceCtx, values: &mut ValueStream<M>, out: &mut Vec<O>);
}

impl<M, O, F> Reducer<M, O> for F
where
    F: Fn(&mut ReduceCtx, &mut ValueStream<M>, &mut Vec<O>) + Sync,
{
    #[inline]
    fn reduce(&self, ctx: &mut ReduceCtx, values: &mut ValueStream<M>, out: &mut Vec<O>) {
        self(ctx, values, out)
    }
}

/// An identity mapper routing every record to key 0 — occasionally useful in
/// tests and for single-reducer aggregations.
pub fn route_all_to_one<I: Record>(record: &I, out: &mut Emitter<I>) {
    out.emit(0, record.clone());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_pairs() {
        let mut e: Emitter<u32> = Emitter::new();
        e.emit(3, 10);
        e.emit(3, 11);
        e.emit(7, 12);
        assert_eq!(e.emitted(), 3);
        assert_eq!(e.pairs, vec![(3, 10), (3, 11), (7, 12)]);
    }

    #[test]
    fn emit_to_all_clones() {
        let mut e: Emitter<String> = Emitter::new();
        e.emit_to_all(0..3, &"x".to_string());
        assert_eq!(e.emitted(), 3);
        assert!(e.pairs.iter().all(|(_, v)| v == "x"));
    }

    #[test]
    fn into_sorted_run_is_stable() {
        let mut e: Emitter<char> = Emitter::new();
        e.emit(5, 'a');
        e.emit(1, 'b');
        e.emit(5, 'c');
        e.emit(1, 'd');
        assert_eq!(
            e.into_sorted_run(),
            vec![(1, 'b'), (1, 'd'), (5, 'a'), (5, 'c')]
        );
    }

    #[test]
    fn reduce_ctx_accumulates_work() {
        let mut ctx = ReduceCtx::new(5);
        ctx.add_work(10);
        ctx.add_work(7);
        assert_eq!(ctx.work(), 17);
        assert_eq!(ctx.key, 5);
    }

    #[test]
    fn contexts_accumulate_counters() {
        let mut e: Emitter<u32> = Emitter::new();
        e.inc("replicas", 3);
        e.inc("replicas", 2);
        e.inc("crossing", 1);
        assert_eq!(e.counters().get("replicas"), 5);
        let (_, counters) = e.finish();
        assert_eq!(counters.get("crossing"), 1);

        let mut ctx = ReduceCtx::new(0);
        ctx.inc("candidates", 10);
        ctx.inc("emitted", 4);
        assert_eq!(ctx.counters().get("candidates"), 10);
        assert_eq!(ctx.counters().get("emitted"), 4);
    }

    #[test]
    fn closures_implement_traits() {
        fn assert_mapper<M: Mapper<u32, u32>>(_m: &M) {}
        fn assert_reducer<R: Reducer<u32, u32>>(_r: &R) {}
        let m = |r: &u32, out: &mut Emitter<u32>| out.emit(0, *r);
        let r =
            |_ctx: &mut ReduceCtx, vs: &mut ValueStream<u32>, out: &mut Vec<u32>| out.extend(vs);
        assert_mapper(&m);
        assert_reducer(&r);
    }

    #[test]
    fn value_stream_over_vec_preserves_order_and_len() {
        let mut s = ValueStream::from_vec(vec![3u64, 1, 4, 1, 5]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_spilled());
        assert_eq!(s.next(), Some(3));
        assert_eq!(s.len(), 4);
        assert_eq!(s.by_ref().collect::<Vec<_>>(), vec![1, 4, 1, 5]);
        assert!(s.is_empty());
        assert!(s.io_error().is_none());
        assert_eq!(s.io_nanos(), 0);
    }

    #[test]
    fn value_stream_take_vec_drains_remainder() {
        let mut s = ValueStream::from_vec(vec![1u64, 2, 3]);
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.take_vec(), vec![2, 3]);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn bucket_source_reports_shape() {
        let b = BucketSource::InMemory(vec![1u64, 2]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_spilled());
        assert!(!b.is_empty());
        let mut s = b.into_stream();
        assert_eq!(s.by_ref().collect::<Vec<_>>(), vec![1, 2]);
    }
}
