//! A deterministic, in-process MapReduce engine.
//!
//! This crate is the substrate the paper's join algorithms run on. The paper
//! evaluated on Hadoop 0.20.2 over a 16-core cluster; the algorithms,
//! however, are defined purely in terms of the MapReduce *contract*:
//!
//! 1. map functions turn each input record into intermediate
//!    `(reducer-id, value)` pairs;
//! 2. the framework routes all pairs with the same key to the same reducer;
//! 3. reducers process their group and emit output records;
//! 4. multi-cycle algorithms chain jobs through a distributed file system.
//!
//! The engine implements that contract faithfully on an in-process thread
//! pool and — crucially for reproducing the paper's evaluation — records the
//! quantities the paper's analysis is about:
//!
//! * the number of intermediate key-value pairs (communication volume),
//! * per-reducer load (the load-balancing story of Sections 6–7),
//! * a simulated cluster elapsed time in which reducers are packed onto a
//!   fixed number of *slots* (16 in the paper), so a straggler reducer
//!   dominates a cycle exactly as it would on the real cluster.
//!
//! Execution is deterministic: shuffle groups are keyed and value order is
//! the mappers' emission order, independent of thread count. The shuffle is
//! *partitioned* like Hadoop's: each map worker finishes its output as a
//! key-sorted run, and [`merge_sorted_runs`] k-way merges the runs into
//! reducer buckets — no code path sorts the full intermediate-pair vector.
//! Reducers take ownership of their bucket (cloned per attempt only when a
//! [`FaultPlan`] is attached), and each phase's wall time and byte volume is
//! reported separately in [`JobMetrics`].
//!
//! Reducers consume their bucket as a pull-based [`ValueStream`]. With
//! [`ClusterConfig::reduce_memory_budget`] set, a bucket whose values
//! exceed the budget is spilled to an engine-internal [`Dfs`] as sorted
//! runs and streamed back on demand (see [`spill`]) — the reducer body is
//! identical, and outputs stay byte-identical, either way.
//!
//! ```
//! use ij_mapreduce::{Engine, ClusterConfig, Emitter, ReduceCtx, ValueStream};
//!
//! let engine = Engine::new(ClusterConfig::default());
//! // Word-count style: route each number to key (n % 3) and sum per key.
//! let out = engine.run_job(
//!     "sum-mod-3",
//!     &[1u64, 2, 3, 4, 5, 6],
//!     |&n: &u64, out: &mut Emitter<u64>| out.emit(n % 3, n),
//!     |ctx: &mut ReduceCtx, values: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
//!         out.push((ctx.key, values.sum()));
//!     },
//! ).unwrap();
//! assert_eq!(out.outputs, vec![(0, 9), (1, 5), (2, 7)]);
//! assert_eq!(out.metrics.intermediate_pairs, 6);
//! ```

pub mod chain;
pub mod cost;
pub mod dfs;
pub mod engine;
pub mod error;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod record;
pub mod schedule;
pub mod spill;
pub mod telemetry;
pub mod trace;

pub use chain::JobChain;
pub use cost::{CostModel, PhaseCost};
pub use dfs::{Dfs, DfsError, DfsStats};
pub use engine::{merge_sorted_runs, ClusterConfig, Engine, JobOutput, ShuffleStats};
pub use error::EngineError;
pub use fault::FaultPlan;
pub use job::{
    BucketSource, Emitter, MapCtx, Mapper, ReduceCtx, Reducer, ReducerId, SortedRun, ValueStream,
};
pub use metrics::{is_execution_shape, Counters, JobMetrics, ReducerLoad, SkewReport};
pub use record::Record;
pub use schedule::{BucketLoad, SchedConfig, SchedPolicy, SchedulePlan};
pub use spill::{SpillStats, SpilledBucket};
pub use telemetry::{
    Clock, FlightRecorder, Histogram, HistogramRegistry, MonotonicClock, Straggler, Telemetry,
    TelemetryConfig, TelemetryEvent, TelemetrySnapshot, VirtualClock,
};
pub use trace::{SpanKind, TraceEvent, Tracer};
