//! Per-job metrics: the quantities the paper's evaluation reports.
//!
//! Table 1 reports "# Intervals Replicated" and "# Pairs" (total key-value
//! pairs after replication); the Section 7 discussion is entirely about
//! per-reducer load skew. [`JobMetrics`] captures all of these per job, and
//! [`crate::JobChain`] aggregates them across the cycles of a multi-cycle
//! algorithm.

use crate::job::ReducerId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Load received and work done by a single logical reducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducerLoad {
    /// The reducer's key.
    pub key: ReducerId,
    /// Intermediate pairs routed to this reducer.
    pub pairs_received: u64,
    /// Work units the reducer reported via [`crate::ReduceCtx::add_work`].
    pub work: u64,
    /// Output records the reducer emitted.
    pub output: u64,
    /// Times this reducer was attempted (> 1 only under fault injection).
    pub attempts: u32,
}

/// Metrics for one map-reduce cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Records read by the map phase.
    pub map_input_records: u64,
    /// Approximate bytes read by the map phase.
    pub map_input_bytes: u64,
    /// Total intermediate key-value pairs (the paper's communication cost).
    pub intermediate_pairs: u64,
    /// Approximate bytes shuffled from mappers to reducers, accumulated
    /// inside the run merge (see [`crate::merge_sorted_runs`]).
    pub shuffle_bytes: u64,
    /// Number of distinct reducer keys that received at least one pair.
    pub distinct_reducers: u64,
    /// Per-reducer loads, in key order.
    pub reducer_loads: Vec<ReducerLoad>,
    /// Output records across all reducers.
    pub output_records: u64,
    /// Approximate bytes written by reducers.
    pub output_bytes: u64,
    /// Real wall-clock time of the in-process execution.
    pub wall: Duration,
    /// Wall-clock time of the map phase (chunked map + per-worker run sort).
    pub map_wall: Duration,
    /// Wall-clock time of the shuffle (k-way merge of sorted runs into
    /// reducer buckets).
    pub shuffle_wall: Duration,
    /// Wall-clock time of the reduce phase (including output concatenation).
    pub reduce_wall: Duration,
    /// Simulated cluster time (see [`crate::CostModel`]), in cost units.
    pub simulated: f64,
}

impl JobMetrics {
    /// The heaviest reducer's received-pair count — the straggler the
    /// paper's load-balancing discussion (Fig. 4) is about.
    pub fn max_reducer_pairs(&self) -> u64 {
        self.reducer_loads
            .iter()
            .map(|l| l.pairs_received)
            .max()
            .unwrap_or(0)
    }

    /// Mean pairs per *loaded* reducer (reducers that received nothing are
    /// not counted — inconsistent reducers never appear in the shuffle).
    pub fn mean_reducer_pairs(&self) -> f64 {
        if self.reducer_loads.is_empty() {
            return 0.0;
        }
        self.intermediate_pairs as f64 / self.reducer_loads.len() as f64
    }

    /// Load skew: max / mean pairs per reducer. 1.0 is perfectly balanced;
    /// All-Rep on a sequence join approaches the reducer count (the
    /// rightmost reducer gets nearly everything), while All-Matrix stays
    /// close to 1 — that contrast is Figure 4.
    pub fn skew(&self) -> f64 {
        let mean = self.mean_reducer_pairs();
        if mean == 0.0 {
            1.0
        } else {
            self.max_reducer_pairs() as f64 / mean
        }
    }

    /// Total reducer work units across the job.
    pub fn total_work(&self) -> u64 {
        self.reducer_loads.iter().map(|l| l.work).sum()
    }

    /// Total reducer attempts beyond the first (fault-injection retries).
    pub fn retries(&self) -> u64 {
        self.reducer_loads
            .iter()
            .map(|l| (l.attempts.saturating_sub(1)) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with_loads(pairs: &[u64]) -> JobMetrics {
        JobMetrics {
            name: "t".into(),
            map_input_records: 0,
            map_input_bytes: 0,
            intermediate_pairs: pairs.iter().sum(),
            shuffle_bytes: 0,
            distinct_reducers: pairs.len() as u64,
            reducer_loads: pairs
                .iter()
                .enumerate()
                .map(|(i, &p)| ReducerLoad {
                    key: i as u64,
                    pairs_received: p,
                    work: p * 2,
                    output: 0,
                    attempts: 1,
                })
                .collect(),
            output_records: 0,
            output_bytes: 0,
            wall: Duration::ZERO,
            map_wall: Duration::ZERO,
            shuffle_wall: Duration::ZERO,
            reduce_wall: Duration::ZERO,
            simulated: 0.0,
        }
    }

    #[test]
    fn skew_balanced_is_one() {
        let m = metrics_with_loads(&[10, 10, 10, 10]);
        assert!((m.skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_detects_straggler() {
        let m = metrics_with_loads(&[1, 1, 1, 97]);
        assert!(m.skew() > 3.8, "skew = {}", m.skew());
        assert_eq!(m.max_reducer_pairs(), 97);
    }

    #[test]
    fn empty_job_skew_is_one() {
        let m = metrics_with_loads(&[]);
        assert_eq!(m.skew(), 1.0);
        assert_eq!(m.max_reducer_pairs(), 0);
    }

    #[test]
    fn total_work_sums() {
        let m = metrics_with_loads(&[3, 4]);
        assert_eq!(m.total_work(), 14);
    }

    #[test]
    fn phase_walls_serialize() {
        let mut m = metrics_with_loads(&[1]);
        m.map_wall = Duration::from_millis(3);
        m.shuffle_wall = Duration::from_millis(2);
        m.reduce_wall = Duration::from_millis(1);
        let json = serde_json::to_string(&m).unwrap();
        for field in [
            "map_wall",
            "shuffle_wall",
            "reduce_wall",
            "map_input_bytes",
            "output_bytes",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
