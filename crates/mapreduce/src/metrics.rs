//! Per-job metrics: the quantities the paper's evaluation reports.
//!
//! Table 1 reports "# Intervals Replicated" and "# Pairs" (total key-value
//! pairs after replication); the Section 7 discussion is entirely about
//! per-reducer load skew. [`JobMetrics`] captures all of these per job, and
//! [`crate::JobChain`] aggregates them across the cycles of a multi-cycle
//! algorithm.

pub mod names;

pub use names::is_execution_shape;

use crate::job::ReducerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

#[cfg(test)]
thread_local! {
    /// Counts key-`String` allocations made by [`Counters::inc`] misses —
    /// lets the micro-test below pin that the hit path allocates nothing.
    static KEY_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Hadoop-style user-defined counters: named `u64` totals incremented by
/// mappers (via [`crate::Emitter::inc`]) and reducers (via
/// [`crate::ReduceCtx::inc`]), merged across workers by the engine.
///
/// Merging is a per-name sum, so it is associative and commutative — the
/// merged totals are identical for every `worker_threads` count (the
/// property pinned by `tests/counters.rs`). Iteration order is the sorted
/// name order (`BTreeMap`), so serialized output is deterministic too.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    totals: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter map.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to the counter `name` (creating it at 0 first). The
    /// hit path is a single lookup with no key allocation; only the first
    /// increment of a name allocates its `String`.
    #[inline]
    pub fn inc(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.totals.get_mut(name) {
            *v += delta;
        } else {
            #[cfg(test)]
            KEY_ALLOCS.with(|c| c.set(c.get() + 1));
            self.totals.insert(name.to_string(), delta);
        }
    }

    /// The counter's total, or 0 if it was never incremented.
    pub fn get(&self, name: &str) -> u64 {
        self.totals.get(name).copied().unwrap_or(0)
    }

    /// Merges another counter map into this one (per-name sum).
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in &other.totals {
            self.inc(name, *v);
        }
    }

    /// Iterates `(name, total)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.totals.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True if no counter was ever incremented.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }
}

impl Serialize for Counters {
    /// Serializes as a JSON object `{name: total, …}` in sorted name order.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(
            self.totals
                .iter()
                .map(|(k, v)| (k.clone(), serde::Value::UInt(*v)))
                .collect(),
        )
    }
}

/// Load received and work done by a single logical reducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducerLoad {
    /// The reducer's key.
    pub key: ReducerId,
    /// Intermediate pairs routed to this reducer.
    pub pairs_received: u64,
    /// Work units the reducer reported via [`crate::ReduceCtx::add_work`].
    pub work: u64,
    /// Output records the reducer emitted.
    pub output: u64,
    /// Times this reducer was attempted (> 1 only under fault injection).
    pub attempts: u32,
}

/// Metrics for one map-reduce cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Records read by the map phase.
    pub map_input_records: u64,
    /// Approximate bytes read by the map phase.
    pub map_input_bytes: u64,
    /// Total intermediate key-value pairs (the paper's communication cost).
    pub intermediate_pairs: u64,
    /// Approximate bytes shuffled from mappers to reducers, accumulated
    /// inside the run merge (see [`crate::merge_sorted_runs`]).
    pub shuffle_bytes: u64,
    /// Number of distinct reducer keys that received at least one pair.
    pub distinct_reducers: u64,
    /// Per-reducer loads, in key order.
    pub reducer_loads: Vec<ReducerLoad>,
    /// Output records across all reducers.
    pub output_records: u64,
    /// Approximate bytes written by reducers.
    pub output_bytes: u64,
    /// Real wall-clock time of the in-process execution.
    pub wall: Duration,
    /// Wall-clock time of the map phase (chunked map + per-worker run sort).
    pub map_wall: Duration,
    /// Wall-clock time of the shuffle (k-way merge of sorted runs into
    /// reducer buckets).
    pub shuffle_wall: Duration,
    /// Wall-clock time of the reduce phase (including output concatenation).
    pub reduce_wall: Duration,
    /// Cumulative wall-clock time spent on spill I/O: shuffle-side run
    /// writes plus reduce-side streamed reads, summed across workers (so it
    /// overlaps `shuffle_wall`/`reduce_wall` rather than adding to them).
    /// Zero when no bucket overflowed the memory budget.
    pub spill_wall: Duration,
    /// Simulated cluster time (see [`crate::CostModel`]), in cost units.
    pub simulated: f64,
    /// User-defined counters incremented by this job's mappers and
    /// reducers, merged across workers (deterministic; see [`Counters`]).
    pub counters: Counters,
}

impl JobMetrics {
    /// The heaviest reducer's received-pair count — the straggler the
    /// paper's load-balancing discussion (Fig. 4) is about.
    pub fn max_reducer_pairs(&self) -> u64 {
        self.reducer_loads
            .iter()
            .map(|l| l.pairs_received)
            .max()
            .unwrap_or(0)
    }

    /// Mean pairs per *loaded* reducer (reducers that received nothing are
    /// not counted — inconsistent reducers never appear in the shuffle).
    pub fn mean_reducer_pairs(&self) -> f64 {
        if self.reducer_loads.is_empty() {
            return 0.0;
        }
        self.intermediate_pairs as f64 / self.reducer_loads.len() as f64
    }

    /// Load skew: max / mean pairs per reducer. 1.0 is perfectly balanced;
    /// All-Rep on a sequence join approaches the reducer count (the
    /// rightmost reducer gets nearly everything), while All-Matrix stays
    /// close to 1 — that contrast is Figure 4.
    pub fn skew(&self) -> f64 {
        let mean = self.mean_reducer_pairs();
        if mean == 0.0 {
            1.0
        } else {
            self.max_reducer_pairs() as f64 / mean
        }
    }

    /// Total reducer work units across the job.
    pub fn total_work(&self) -> u64 {
        self.reducer_loads.iter().map(|l| l.work).sum()
    }

    /// Total reducer attempts beyond the first (fault-injection retries).
    pub fn retries(&self) -> u64 {
        self.reducer_loads
            .iter()
            .map(|l| (l.attempts.saturating_sub(1)) as u64)
            .sum()
    }

    /// The full per-reducer skew diagnosis: distribution statistics plus
    /// the `k` heaviest reducer keys. See [`SkewReport`].
    pub fn skew_report(&self, k: usize) -> SkewReport {
        SkewReport::from_loads(&self.reducer_loads, k)
    }
}

/// Per-reducer load-skew diagnosis for one job: the distribution of
/// `pairs_received` across reducers, summarized the way the paper's
/// Section 7 / Figure 4 discussion compares algorithms.
///
/// All statistics are over *loaded* reducers only (reducers that received
/// no pair never appear in the shuffle, hence not in `reducer_loads`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewReport {
    /// Number of loaded reducers.
    pub reducers: u64,
    /// Pairs received by the heaviest reducer.
    pub max: u64,
    /// Mean pairs per loaded reducer.
    pub mean: f64,
    /// Median pairs per reducer (nearest-rank).
    pub p50: u64,
    /// 99th-percentile pairs per reducer (nearest-rank).
    pub p99: u64,
    /// Straggler factor max/mean — 1.0 is perfectly balanced; the paper's
    /// All-Rep-on-sequence pathology approaches the reducer count.
    pub max_mean_ratio: f64,
    /// Tail ratio p99/p50 (1.0 when the median reducer already carries the
    /// tail load; large when a few reducers dominate).
    pub p99_p50_ratio: f64,
    /// Gini coefficient of the load distribution: 0 = perfectly equal,
    /// → 1 as one reducer absorbs everything.
    pub gini: f64,
    /// The `k` heaviest reducers as `(key, pairs_received)`, heaviest
    /// first; ties break toward the smaller key (deterministic).
    pub top: Vec<(ReducerId, u64)>,
}

impl SkewReport {
    /// Computes the report from per-reducer loads, keeping the `k`
    /// heaviest keys.
    pub fn from_loads(loads: &[ReducerLoad], k: usize) -> SkewReport {
        let mut pairs: Vec<u64> = loads.iter().map(|l| l.pairs_received).collect();
        pairs.sort_unstable();
        let n = pairs.len();
        let total: u64 = pairs.iter().sum();
        let max = pairs.last().copied().unwrap_or(0);
        let mean = if n == 0 { 0.0 } else { total as f64 / n as f64 };
        let p50 = percentile(&pairs, 50.0);
        let p99 = percentile(&pairs, 99.0);
        let mut top: Vec<(ReducerId, u64)> =
            loads.iter().map(|l| (l.key, l.pairs_received)).collect();
        // Heaviest first; ties on the smaller key so the order never
        // depends on the input order of `loads`.
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(k);
        SkewReport {
            reducers: n as u64,
            max,
            mean,
            p50,
            p99,
            max_mean_ratio: if mean == 0.0 { 1.0 } else { max as f64 / mean },
            p99_p50_ratio: if p50 == 0 {
                1.0
            } else {
                p99 as f64 / p50 as f64
            },
            gini: gini(&pairs, total),
            top,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 for empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Gini coefficient over ascending-sorted values summing to `total`.
/// `G = (2 Σ i·x_i) / (n Σ x) − (n+1)/n`, 1-based `i`; 0 for degenerate
/// inputs (empty, or all-zero loads).
fn gini(sorted: &[u64], total: u64) -> f64 {
    let n = sorted.len();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with_loads(pairs: &[u64]) -> JobMetrics {
        JobMetrics {
            name: "t".into(),
            map_input_records: 0,
            map_input_bytes: 0,
            intermediate_pairs: pairs.iter().sum(),
            shuffle_bytes: 0,
            distinct_reducers: pairs.len() as u64,
            reducer_loads: pairs
                .iter()
                .enumerate()
                .map(|(i, &p)| ReducerLoad {
                    key: i as u64,
                    pairs_received: p,
                    work: p * 2,
                    output: 0,
                    attempts: 1,
                })
                .collect(),
            output_records: 0,
            output_bytes: 0,
            wall: Duration::ZERO,
            map_wall: Duration::ZERO,
            shuffle_wall: Duration::ZERO,
            reduce_wall: Duration::ZERO,
            spill_wall: Duration::ZERO,
            simulated: 0.0,
            counters: Counters::default(),
        }
    }

    #[test]
    fn skew_balanced_is_one() {
        let m = metrics_with_loads(&[10, 10, 10, 10]);
        assert!((m.skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_detects_straggler() {
        let m = metrics_with_loads(&[1, 1, 1, 97]);
        assert!(m.skew() > 3.8, "skew = {}", m.skew());
        assert_eq!(m.max_reducer_pairs(), 97);
    }

    #[test]
    fn empty_job_skew_is_one() {
        let m = metrics_with_loads(&[]);
        assert_eq!(m.skew(), 1.0);
        assert_eq!(m.max_reducer_pairs(), 0);
    }

    #[test]
    fn total_work_sums() {
        let m = metrics_with_loads(&[3, 4]);
        assert_eq!(m.total_work(), 14);
    }

    #[test]
    fn counters_sum_and_merge_associatively() {
        let mut a = Counters::new();
        a.inc("pairs", 3);
        a.inc("pairs", 4);
        a.inc("replicas", 1);
        assert_eq!(a.get("pairs"), 7);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.inc("pairs", 10);
        b.inc("crossing", 2);

        // (a ⊕ b) == (b ⊕ a): merge is commutative.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("pairs"), 17);
        assert_eq!(ab.len(), 3);
        assert_eq!(
            ab.iter().collect::<Vec<_>>(),
            vec![("crossing", 2), ("pairs", 17), ("replicas", 1)],
            "iteration is sorted by name"
        );
    }

    #[test]
    fn counters_serialize_as_object() {
        let mut c = Counters::new();
        c.inc("b", 2);
        c.inc("a", 1);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(json, r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn skew_report_statistics() {
        // 99 light reducers and one straggler.
        let mut loads = vec![10u64; 99];
        loads.push(1000);
        let m = metrics_with_loads(&loads);
        let r = m.skew_report(3);
        assert_eq!(r.reducers, 100);
        assert_eq!(r.max, 1000);
        assert!((r.mean - 19.9).abs() < 1e-9);
        assert_eq!(r.p50, 10);
        assert_eq!(r.p99, 10, "p99 of 100 loads is the 99th-ranked one");
        assert!(r.max_mean_ratio > 50.0, "ratio {}", r.max_mean_ratio);
        assert_eq!(r.p99_p50_ratio, 1.0);
        assert!(r.gini > 0.4, "gini {}", r.gini);
        assert_eq!(r.top[0], (99, 1000), "heaviest key first");
        assert_eq!(r.top.len(), 3);
    }

    #[test]
    fn skew_report_balanced_and_empty() {
        let r = metrics_with_loads(&[50, 50, 50, 50]).skew_report(2);
        assert_eq!(r.max_mean_ratio, 1.0);
        assert_eq!(r.p99_p50_ratio, 1.0);
        assert!(r.gini.abs() < 1e-9, "equal loads have zero gini");
        assert_eq!(r.top, vec![(0, 50), (1, 50)], "ties break on key");

        let r = metrics_with_loads(&[]).skew_report(5);
        assert_eq!(r.reducers, 0);
        assert_eq!(r.max, 0);
        assert_eq!(r.max_mean_ratio, 1.0);
        assert_eq!(r.gini, 0.0);
        assert!(r.top.is_empty());
    }

    #[test]
    fn skew_report_matches_legacy_skew() {
        let m = metrics_with_loads(&[1, 1, 1, 97]);
        let r = m.skew_report(1);
        assert!((r.max_mean_ratio - m.skew()).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&sorted, 50.0), 5);
        assert_eq!(percentile(&sorted, 99.0), 10);
        assert_eq!(percentile(&sorted, 100.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn gini_extremes() {
        // One reducer holds everything: G = (n-1)/n.
        let sorted = [0u64, 0, 0, 100];
        assert!((gini(&sorted, 100) - 0.75).abs() < 1e-9);
        assert_eq!(gini(&[0, 0], 0), 0.0);
    }

    #[test]
    fn phase_walls_serialize() {
        let mut m = metrics_with_loads(&[1]);
        m.map_wall = Duration::from_millis(3);
        m.shuffle_wall = Duration::from_millis(2);
        m.reduce_wall = Duration::from_millis(1);
        let json = serde_json::to_string(&m).unwrap();
        for field in [
            "map_wall",
            "shuffle_wall",
            "reduce_wall",
            "spill_wall",
            "map_input_bytes",
            "output_bytes",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn execution_shape_counters_are_classified() {
        assert!(is_execution_shape("kernel.parallel_buckets"));
        assert!(is_execution_shape("kernel.active_peak"));
        assert!(is_execution_shape("spill.buckets"));
        assert!(is_execution_shape("spill.runs"));
        assert!(is_execution_shape("spill.bytes"));
        assert!(is_execution_shape("telemetry.stragglers"));
        assert!(!is_execution_shape("kernel.candidates"));
        assert!(!is_execution_shape("replicas"));
    }

    #[test]
    fn counter_inc_hit_path_does_not_allocate_keys() {
        let mut c = Counters::new();
        let before = KEY_ALLOCS.with(std::cell::Cell::get);
        c.inc("hot.counter", 1);
        for _ in 0..1000 {
            c.inc("hot.counter", 1);
        }
        let allocs = KEY_ALLOCS.with(std::cell::Cell::get) - before;
        assert_eq!(allocs, 1, "only the first inc of a name allocates");
        assert_eq!(c.get("hot.counter"), 1001);
        // A second distinct name costs exactly one more allocation.
        c.inc("other", 5);
        c.inc("other", 5);
        let allocs = KEY_ALLOCS.with(std::cell::Cell::get) - before;
        assert_eq!(allocs, 2);
    }

    #[test]
    fn skew_report_single_reducer() {
        let r = metrics_with_loads(&[42]).skew_report(3);
        assert_eq!(r.reducers, 1);
        assert_eq!(r.max, 42);
        assert_eq!(r.max_mean_ratio, 1.0);
        assert_eq!(r.p50, 42);
        assert_eq!(r.p99, 42);
        assert_eq!(r.p99_p50_ratio, 1.0);
        assert_eq!(r.gini, 0.0, "one reducer cannot be skewed");
        assert_eq!(r.top, vec![(0, 42)]);
    }

    #[test]
    fn skew_report_all_equal_loads() {
        let r = metrics_with_loads(&[7, 7, 7, 7, 7, 7, 7, 7]).skew_report(2);
        assert_eq!(r.p50, r.p99, "equal loads: p50 == p99");
        assert_eq!(r.p99_p50_ratio, 1.0);
        assert_eq!(r.max_mean_ratio, 1.0);
        assert!(
            r.gini.abs() < 1e-12,
            "gini must be exactly ~0, got {}",
            r.gini
        );
        assert_eq!(r.mean, 7.0);
    }
}
