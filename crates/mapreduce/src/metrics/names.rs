//! The single registry of every counter, histogram and telemetry-series
//! name the production engine and algorithms record.
//!
//! Two determinism classifiers used to live apart —
//! `metrics::is_execution_shape` for counters and
//! `telemetry::snapshot::is_execution_shape_series` for series — and
//! could silently drift, corrupting the byte-diffs `repolint audit`
//! builds on. Both now live *here*, driven by the same shared prefix
//! constants, and `repolint graph`'s counter-registry rule enforces that
//! (a) every metric-name literal passed to a recording call is declared
//! in this module and (b) a declared name never reappears as a string
//! literal anywhere else in production code — call sites must use these
//! constants, so renames and classification changes have exactly one
//! home.

// ---------------------------------------------------------------------------
// Counters (recorded via `Emitter::inc` / `ReduceCtx::inc` /
// `Counters::inc`, merged per-name by the engine).

/// Buckets joined by the endpoint-sorted plane-sweep kernel.
pub const KERNEL_SWEEP_BUCKETS: &str = "kernel.sweep_buckets";
/// Buckets joined by the merged-event-list sweep kernel.
pub const KERNEL_EVENT_SWEEP_BUCKETS: &str = "kernel.event_sweep_buckets";
/// Buckets joined by the sort-merge kernel.
pub const KERNEL_MERGE_BUCKETS: &str = "kernel.merge_buckets";
/// Buckets joined by the windowed-backtracking fallback kernel.
pub const KERNEL_FALLBACK_BUCKETS: &str = "kernel.fallback_buckets";
/// Heavy buckets split across intra-reducer worker chunks
/// (execution-shape: depends on the thread grant).
pub const KERNEL_PARALLEL_BUCKETS: &str = "kernel.parallel_buckets";
/// Summed per-bucket peak active-interval count of the event sweep
/// (execution-shape: the skew-driven thread budget's load signal). Also
/// recorded as a per-bucket histogram under the same name.
pub const KERNEL_ACTIVE_PEAK: &str = "kernel.active_peak";

/// Candidate pairs examined by a join kernel.
pub const JOIN_CANDIDATES: &str = "join.candidates";
/// Result pairs emitted by a join kernel.
pub const JOIN_EMITTED: &str = "join.emitted";

/// All-Rep: replicated key-value pairs shuffled.
pub const ALLREP_REPLICA_PAIRS: &str = "allrep.replica_pairs";
/// All-Rep: pairs surviving bucket projection.
pub const ALLREP_PROJECTED_PAIRS: &str = "allrep.projected_pairs";
/// RCCIS: split pairs produced by the partition round.
pub const RCCIS_SPLIT_PAIRS: &str = "rccis.split_pairs";
/// RCCIS: intervals crossing a partition boundary.
pub const RCCIS_CROSSING_INTERVALS: &str = "rccis.crossing_intervals";
/// RCCIS: crossing intervals flagged for the merge round.
pub const RCCIS_FLAGGED_INTERVALS: &str = "rccis.flagged_intervals";
/// RCCIS: replicated pairs shuffled by the join round.
pub const RCCIS_REPLICA_PAIRS: &str = "rccis.replica_pairs";
/// RCCIS: pairs surviving bucket projection.
pub const RCCIS_PROJECTED_PAIRS: &str = "rccis.projected_pairs";
/// 2-way cascade: composite pairs carried between cycles.
pub const CASCADE_COMP_PAIRS: &str = "cascade.comp_pairs";
/// 2-way cascade: base-relation pairs read per cycle.
pub const CASCADE_BASE_PAIRS: &str = "cascade.base_pairs";
/// One-Bucket: row-replica copies shuffled.
pub const ONEBUCKET_ROW_COPIES: &str = "onebucket.row_copies";
/// One-Bucket: column-replica copies shuffled.
pub const ONEBUCKET_COL_COPIES: &str = "onebucket.col_copies";

/// Reduce buckets that overflowed the memory budget (execution-shape:
/// depends on `reduce_memory_budget`).
pub const SPILL_BUCKETS: &str = "spill.buckets";
/// Sorted runs written to the Dfs by the budgeted shuffle
/// (execution-shape).
pub const SPILL_RUNS: &str = "spill.runs";
/// Approximate bytes spilled (execution-shape).
pub const SPILL_BYTES: &str = "spill.bytes";
/// Reducers flagged below the straggler rate threshold (execution-shape:
/// rates depend on wall time). Also a telemetry series.
pub const TELEMETRY_STRAGGLERS: &str = "telemetry.stragglers";

/// Total intra-reduce threads granted across all buckets — the sum of
/// per-bucket grants, so a value above the bucket count means some bucket
/// ran multi-threaded (execution-shape: depends on the sched policy and
/// thread count).
pub const SCHED_GRANTS: &str = "sched.grants";
/// Buckets the scheduler classified heavy (execution-shape: the cutoff
/// depends on `heavy_bucket_threshold` and the work multiplier, and the
/// counter is only meaningful relative to a policy).
pub const SCHED_HEAVY_BUCKETS: &str = "sched.heavy_buckets";

// ---------------------------------------------------------------------------
// Histograms (recorded via `HistogramRegistry::record` /
// `Telemetry::record_hist`).

/// Per-bucket pair counts in key order (data-plane).
pub const REDUCE_BUCKET_PAIRS: &str = "reduce.bucket_pairs";
/// One shuffle-volume sample per job (data-plane).
pub const SHUFFLE_JOB_BYTES: &str = "shuffle.job_bytes";
/// Per-map-task record counts (execution-shape: chunking).
pub const MAP_TASK_RECORDS: &str = "map.task_records";
/// Per-reducer service times (execution-shape: wall time).
pub const REDUCE_SERVICE_NS: &str = "reduce.service_ns";
/// Per-run spilled bytes (execution-shape: budget).
pub const SPILL_RUN_BYTES: &str = "spill.run_bytes";
/// Per-bucket intra-reduce thread grants in key order (execution-shape:
/// grants depend on the sched policy, thread count and pool state).
pub const SCHED_GRANT_THREADS: &str = "sched.grant_threads";

// ---------------------------------------------------------------------------
// Telemetry series (recorded via `Telemetry::inc_series` and the
// progress gauges).

/// Map-side heartbeats (execution-shape: one per map chunk quantum).
pub const HEARTBEATS_MAP: &str = "telemetry.heartbeats.map";
/// Reduce-side heartbeats (data-plane: pull quanta are byte-stable).
pub const HEARTBEATS_REDUCE: &str = "telemetry.heartbeats.reduce";
/// Jobs entered (gauge).
pub const PROGRESS_JOBS_STARTED: &str = "progress.jobs_started";
/// Jobs finished (gauge).
pub const PROGRESS_JOBS_FINISHED: &str = "progress.jobs_finished";
/// Map records processed (gauge).
pub const PROGRESS_MAP_RECORDS: &str = "progress.map_records";
/// Map tasks completed (gauge; execution-shape: chunk count).
pub const PROGRESS_MAP_TASKS: &str = "progress.map_tasks";
/// Reduce values pulled (gauge).
pub const PROGRESS_REDUCE_VALUES: &str = "progress.reduce_values";
/// Reducers scheduled (gauge).
pub const PROGRESS_REDUCERS: &str = "progress.reducers";
/// Reducers completed (gauge).
pub const PROGRESS_REDUCERS_DONE: &str = "progress.reducers_done";

/// Every registered metric name. `repolint graph` parses this module's
/// `const` declarations, so a name recorded anywhere in production code
/// but missing here fails the counter-registry rule.
pub const ALL: &[&str] = &[
    KERNEL_SWEEP_BUCKETS,
    KERNEL_EVENT_SWEEP_BUCKETS,
    KERNEL_MERGE_BUCKETS,
    KERNEL_FALLBACK_BUCKETS,
    KERNEL_PARALLEL_BUCKETS,
    KERNEL_ACTIVE_PEAK,
    JOIN_CANDIDATES,
    JOIN_EMITTED,
    ALLREP_REPLICA_PAIRS,
    ALLREP_PROJECTED_PAIRS,
    RCCIS_SPLIT_PAIRS,
    RCCIS_CROSSING_INTERVALS,
    RCCIS_FLAGGED_INTERVALS,
    RCCIS_REPLICA_PAIRS,
    RCCIS_PROJECTED_PAIRS,
    CASCADE_COMP_PAIRS,
    CASCADE_BASE_PAIRS,
    ONEBUCKET_ROW_COPIES,
    ONEBUCKET_COL_COPIES,
    SPILL_BUCKETS,
    SPILL_RUNS,
    SPILL_BYTES,
    TELEMETRY_STRAGGLERS,
    SCHED_GRANTS,
    SCHED_HEAVY_BUCKETS,
    REDUCE_BUCKET_PAIRS,
    SHUFFLE_JOB_BYTES,
    MAP_TASK_RECORDS,
    REDUCE_SERVICE_NS,
    SPILL_RUN_BYTES,
    SCHED_GRANT_THREADS,
    HEARTBEATS_MAP,
    HEARTBEATS_REDUCE,
    PROGRESS_JOBS_STARTED,
    PROGRESS_JOBS_FINISHED,
    PROGRESS_MAP_RECORDS,
    PROGRESS_MAP_TASKS,
    PROGRESS_REDUCE_VALUES,
    PROGRESS_REDUCERS,
    PROGRESS_REDUCERS_DONE,
];

// ---------------------------------------------------------------------------
// Execution-shape classification — the ONE place both byte-diff filters
// derive from.

/// Name prefix of every spill-layout metric; shared by the counter and
/// series classifiers (the satellite-1 "one prefix list drives both").
pub const SPILL_PREFIX: &str = "spill.";
/// Name prefix of the live-telemetry counter family.
pub const TELEMETRY_PREFIX: &str = "telemetry.";
/// Name prefix of the intra-reduce scheduler family; shared by the
/// counter and series classifiers like [`SPILL_PREFIX`] — grants and
/// heavy classifications describe *how* a run executed, never the data
/// plane.
pub const SCHED_PREFIX: &str = "sched.";
/// Name prefix of the progress gauges (rendered as Prometheus gauges).
pub const PROGRESS_PREFIX: &str = "progress.";
/// Name prefix of per-map-task series (chunking-dependent).
pub const MAP_TASK_PREFIX: &str = "map.task";
/// Name suffix of wall-time series (nanosecond histograms).
pub const NS_SUFFIX: &str = "_ns";

/// Exact counter names that are execution-shape without sharing a shape
/// prefix.
pub const SHAPE_COUNTER_NAMES: &[&str] = &[KERNEL_PARALLEL_BUCKETS, KERNEL_ACTIVE_PEAK];
/// Counter-name prefixes whose whole family is execution-shape.
pub const SHAPE_COUNTER_PREFIXES: &[&str] = &[SPILL_PREFIX, TELEMETRY_PREFIX, SCHED_PREFIX];

/// Exact series names that are execution-shape without sharing a shape
/// prefix or suffix. Note `telemetry.heartbeats.reduce` is *absent*:
/// reduce heartbeats derive from pull quanta and stay byte-identical,
/// while map heartbeats follow the chunk count.
pub const SHAPE_SERIES_NAMES: &[&str] = &[
    TELEMETRY_STRAGGLERS,
    HEARTBEATS_MAP,
    PROGRESS_MAP_TASKS,
    KERNEL_ACTIVE_PEAK,
];
/// Series-name prefixes whose whole family is execution-shape.
pub const SHAPE_SERIES_PREFIXES: &[&str] = &[SPILL_PREFIX, MAP_TASK_PREFIX, SCHED_PREFIX];
/// Series-name suffixes whose whole family is execution-shape.
pub const SHAPE_SERIES_SUFFIXES: &[&str] = &[NS_SUFFIX];

/// Whether a counter name describes *execution shape* — how a run was
/// physically carried out (intra-reducer chunking, spill decisions)
/// rather than the data plane. Execution-shape counters are legitimately
/// configuration-dependent: [`KERNEL_PARALLEL_BUCKETS`] varies with the
/// thread grant, and the `spill.*` family varies with
/// `ClusterConfig::reduce_memory_budget`. Determinism byte-diffs
/// (`repolint audit`, the equivalence proptests) exclude exactly these
/// names; every data-plane counter must stay byte-identical across
/// thread counts *and* budgets.
pub fn is_execution_shape(name: &str) -> bool {
    SHAPE_COUNTER_NAMES.contains(&name)
        || SHAPE_COUNTER_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// True for telemetry series whose value legitimately depends on *how*
/// the job executed (thread count, chunking, memory budget, wall clock)
/// rather than on *what* it computed. These are excluded from the
/// cross-thread-count determinism contract, mirroring
/// [`is_execution_shape`] for counters.
pub fn is_execution_shape_series(name: &str) -> bool {
    SHAPE_SERIES_NAMES.contains(&name)
        || SHAPE_SERIES_PREFIXES.iter().any(|p| name.starts_with(p))
        || SHAPE_SERIES_SUFFIXES.iter().any(|s| name.ends_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free_and_sorted_within_reason() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate registry entry {name}");
            assert!(name.contains('.'), "registry names are dotted: {name}");
        }
    }

    #[test]
    fn shape_entries_are_registered() {
        for name in SHAPE_COUNTER_NAMES.iter().chain(SHAPE_SERIES_NAMES) {
            assert!(ALL.contains(name), "{name} classified but unregistered");
        }
    }

    #[test]
    fn both_classifiers_share_the_spill_prefix() {
        assert!(SHAPE_COUNTER_PREFIXES.contains(&SPILL_PREFIX));
        assert!(SHAPE_SERIES_PREFIXES.contains(&SPILL_PREFIX));
        assert!(is_execution_shape(SPILL_RUNS));
        assert!(is_execution_shape_series(SPILL_RUN_BYTES));
    }

    #[test]
    fn both_classifiers_share_the_sched_prefix() {
        // The grant counters and histogram vary with SchedPolicy and
        // thread count; were either classifier to miss the prefix, the
        // cross-policy byte-diffs in `repolint audit` and the
        // schedule_equivalence proptest would flag legitimate grant
        // variation as nondeterminism.
        assert!(SHAPE_COUNTER_PREFIXES.contains(&SCHED_PREFIX));
        assert!(SHAPE_SERIES_PREFIXES.contains(&SCHED_PREFIX));
        assert!(is_execution_shape(SCHED_GRANTS));
        assert!(is_execution_shape(SCHED_HEAVY_BUCKETS));
        assert!(is_execution_shape_series(SCHED_GRANT_THREADS));
    }

    #[test]
    fn classifier_split_is_intentional() {
        // Shape as counter (telemetry.* prefix) but data-plane as series:
        // reduce heartbeats count pull quanta, which are byte-stable.
        assert!(is_execution_shape(HEARTBEATS_REDUCE));
        assert!(!is_execution_shape_series(HEARTBEATS_REDUCE));
        // Shape as series (chunk count) without being a counter at all.
        assert!(is_execution_shape_series(PROGRESS_MAP_TASKS));
        assert!(!is_execution_shape(PROGRESS_MAP_TASKS));
    }
}
