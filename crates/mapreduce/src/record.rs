//! The [`Record`] trait: what can flow through the engine.
//!
//! Records must be cheap to clone and sendable across the engine's worker
//! threads. `approx_bytes` feeds the shuffle-volume accounting — the paper
//! reasons about communication cost in key-value pairs and bytes copied over
//! the network; we report both.

/// A value that can be carried through map, shuffle and reduce.
pub trait Record: Clone + Send + Sync + 'static {
    /// Approximate serialized size in bytes, used for shuffle-volume
    /// accounting. The default is the in-memory size, which is a good proxy
    /// for the fixed-width records the join algorithms use.
    fn approx_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
    }
}

impl Record for u8 {}
impl Record for u16 {}
impl Record for u32 {}
impl Record for u64 {}
impl Record for i8 {}
impl Record for i16 {}
impl Record for i32 {}
impl Record for i64 {}
impl Record for usize {}
impl Record for bool {}
impl Record for char {}
impl Record for () {}

impl Record for String {
    fn approx_bytes(&self) -> u64 {
        // Payload bytes plus the 8-byte length header a serialized string
        // record carries on the wire (matches the Vec<T> accounting above).
        self.len() as u64 + 8
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    fn approx_bytes(&self) -> u64 {
        self.0.approx_bytes() + self.1.approx_bytes()
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    fn approx_bytes(&self) -> u64 {
        self.0.approx_bytes() + self.1.approx_bytes() + self.2.approx_bytes()
    }
}

impl<T: Record> Record for Vec<T> {
    fn approx_bytes(&self) -> u64 {
        self.iter().map(Record::approx_bytes).sum::<u64>() + 8
    }
}

impl<T: Record> Record for Option<T> {
    fn approx_bytes(&self) -> u64 {
        match self {
            Some(v) => 1 + v.approx_bytes(),
            None => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(3u32.approx_bytes(), 4);
        assert_eq!(3u64.approx_bytes(), 8);
        assert_eq!(true.approx_bytes(), 1);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u64).approx_bytes(), 12);
        assert_eq!(vec![1u32, 2, 3].approx_bytes(), 12 + 8);
        assert_eq!(Some(7u64).approx_bytes(), 9);
        assert_eq!(None::<u64>.approx_bytes(), 1);
        assert_eq!("abcd".to_string().approx_bytes(), 12);
        assert_eq!(String::new().approx_bytes(), 8);
    }
}
