//! Skew-driven intra-reduce thread scheduling.
//!
//! The paper's central headache is reducer skew: one overloaded reducer
//! sets the job's wall clock (Sections 6–7). The engine long had every
//! ingredient a scheduler needs — per-bucket pair counts from the shuffle
//! merge, the `spill.*` stats, per-reducer load lines and the kernel work
//! multiplier — yet split intra-reduce threads *uniformly*
//! (`worker_threads / concurrent_reducers`), so light buckets hoarded
//! threads the straggler bucket needed. This module replaces that static
//! grant with a plan computed before the reduce phase spawns workers:
//!
//! 1. **Score** every bucket by predicted work:
//!    `pairs_received × work_multiplier × spill_penalty`, priced through
//!    [`crate::cost::CostModel::predicted_bucket_cost`] (`work_multiplier` is the
//!    planned kernel's per-candidate cost relative to backtracking —
//!    `ij-core`'s `estimate::kernel_work_multiplier` — threaded in by the
//!    caller since this crate sits below the kernel planner; the spill
//!    penalty inflates buckets that must stream back from the Dfs).
//! 2. **Order** buckets heavy-first (descending score, ties on bucket
//!    index), so the buckets that dominate the reduce makespan start
//!    first instead of landing behind a queue of light ones.
//! 3. **Grant** threads dynamically from a lock-light table: a heavy
//!    bucket takes up to `intra_reduce_threads` from a shared token pool
//!    when its worker picks it up; light buckets run serial; tokens
//!    return to the pool as buckets finish, so grants are recomputed from
//!    the *remaining* capacity rather than fixed at spawn time. There is
//!    no barrier — `acquire` never blocks, it just takes what is free.
//!
//! The scheduler changes only *when* work runs, never *what* is emitted:
//! grants feed the kernel layer's chunk-ordered merge (byte-identical
//! output for any thread count) and the engine merges results in bucket
//! (key) order regardless of execution order, so outputs and data-plane
//! counters are byte-identical for every [`SchedPolicy`] — pinned by the
//! `schedule_equivalence` proptest and a `repolint audit` leg. Only the
//! `sched.*` execution-shape counters differ (see
//! [`crate::metrics::names`]).
//!
//! Oversubscription bound: each reduce worker contributes one baseline
//! thread (the work-stealing loop itself, which blocks inside the
//! kernel's scoped join while its grant runs) and the extra-token pool
//! holds `worker_threads` tokens, so peak live threads stay under
//! 2 × `worker_threads`. In the skewed regime the scheduler targets —
//! few heavy buckets, many light ones — light buckets drain quickly and
//! actual concurrency sits near `worker_threads`.

use crate::engine::ClusterConfig;
use parking_lot::Mutex;
use std::fmt;
use std::str::FromStr;

/// Default factor by which a spilled bucket's score is inflated: streaming
/// runs back from the Dfs adds chunked reads and value reconstruction on
/// top of the join itself, so a spilled bucket of equal size is slower
/// than a resident one and deserves its grant earlier.
pub const DEFAULT_SPILL_PENALTY: f64 = 1.5;

/// How intra-reduce thread grants are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// The pre-scheduler static split: every bucket gets
    /// `intra_reduce_threads` capped by `worker_threads / concurrent`,
    /// in shuffle (key) order. Kept as the comparison baseline.
    Uniform,
    /// Score-ordered heavy-first execution with dynamic grants from the
    /// shared token pool (the default).
    #[default]
    SkewDriven,
    /// Every bucket runs serial, in shuffle (key) order — the
    /// determinism-audit anchor and the floor for grant benchmarks.
    AllSerial,
}

impl SchedPolicy {
    /// Stable lowercase name (what `--sched` parses and reports print).
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Uniform => "uniform",
            SchedPolicy::SkewDriven => "skew",
            SchedPolicy::AllSerial => "serial",
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uniform" => Ok(SchedPolicy::Uniform),
            "skew" | "skew-driven" => Ok(SchedPolicy::SkewDriven),
            "serial" | "all-serial" => Ok(SchedPolicy::AllSerial),
            other => Err(format!(
                "unknown sched policy {other:?} (expected uniform, skew or serial)"
            )),
        }
    }
}

/// Scheduler knobs carried in [`ClusterConfig`].
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Grant policy (default: [`SchedPolicy::SkewDriven`]).
    pub policy: SchedPolicy,
    /// Per-candidate cost of the kernel the reduce phase will run,
    /// relative to the backtracking fallback at `1.0` — callers that know
    /// the query set this from `ij-core`'s
    /// `estimate::kernel_work_multiplier`. A constant factor across
    /// buckets of one job, but it matters absolutely: the heavy cutoff is
    /// a fixed score, so a bucket served by a cheap kernel must be
    /// proportionally larger before it earns a multi-thread grant
    /// (mirroring `auto_tune`'s over-partitioning logic).
    pub work_multiplier: f64,
    /// Score inflation for buckets whose source is spilled (default
    /// [`DEFAULT_SPILL_PENALTY`]).
    pub spill_penalty: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: SchedPolicy::default(),
            work_multiplier: 1.0,
            spill_penalty: DEFAULT_SPILL_PENALTY,
        }
    }
}

impl SchedConfig {
    /// A config running `policy` with default scoring knobs.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        SchedConfig {
            policy,
            ..SchedConfig::default()
        }
    }
}

/// What the scheduler knows about one reduce bucket before it runs. For
/// spilled buckets `pairs` is the *full logical length* (the shuffle merge
/// counts every value through the budgeted path, not just the in-memory
/// tail), so scores are budget-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketLoad {
    /// Intermediate pairs routed to the bucket.
    pub pairs: u64,
    /// Whether the bucket streams back from Dfs spill runs.
    pub spilled: bool,
}

/// The reduce phase's execution plan: per-bucket scores, the heavy-first
/// pull order and the live grant table. Built once per job by
/// [`SchedulePlan::new`] before the reduce workers spawn; shared by
/// reference across them afterwards.
#[derive(Debug)]
pub struct SchedulePlan {
    policy: SchedPolicy,
    /// Permutation: pull position → bucket index. Identity for the
    /// static policies, descending-score for [`SchedPolicy::SkewDriven`].
    order: Vec<usize>,
    /// Per-bucket predicted score (bucket-index order).
    scores: Vec<f64>,
    /// Per-bucket heavy classification (bucket-index order).
    heavy: Vec<bool>,
    /// The static per-bucket grant of [`SchedPolicy::Uniform`] — the
    /// pre-scheduler `intra_reduce_threads.min(threads / concurrent)`.
    uniform_grant: usize,
    /// Per-bucket grant ceiling (`intra_reduce_threads`).
    intra_cap: usize,
    /// Spare thread tokens heavy buckets draw extra threads from.
    pool: Mutex<usize>,
}

impl SchedulePlan {
    /// Scores `loads` under `cfg` and computes the execution order and
    /// initial grant capacity. The heavy cutoff is the predicted cost of
    /// a `heavy_bucket_threshold`-pair bucket under the backtracking
    /// kernel — the same absolute notion of "heavy" the kernel layer
    /// uses, which is why a cheap kernel (low `work_multiplier`) needs a
    /// proportionally bigger bucket to earn a grant.
    pub fn new(cfg: &ClusterConfig, loads: &[BucketLoad]) -> Self {
        let threads = cfg.worker_threads.max(1);
        let n = loads.len();
        let concurrent = threads.min(n.max(1));
        let uniform_grant = cfg
            .intra_reduce_threads
            .max(1)
            .min((threads / concurrent).max(1));
        let cutoff = cfg
            .cost
            .predicted_bucket_cost(cfg.heavy_bucket_threshold as u64, 1.0, 1.0);
        let sched = &cfg.sched;
        let scores: Vec<f64> = loads
            .iter()
            .map(|l| {
                let penalty = if l.spilled { sched.spill_penalty } else { 1.0 };
                cfg.cost
                    .predicted_bucket_cost(l.pairs, sched.work_multiplier, penalty)
            })
            .collect();
        let heavy: Vec<bool> = scores.iter().map(|&s| s > 0.0 && s >= cutoff).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let pool = match sched.policy {
            SchedPolicy::SkewDriven => {
                // Descending score; ties break on the bucket index, so the
                // order is a pure function of the scores — independent of
                // thread count and of float quirks (total_cmp is total).
                order.sort_by(|&a, &b| {
                    let sa = scores.get(a).copied().unwrap_or(0.0);
                    let sb = scores.get(b).copied().unwrap_or(0.0);
                    sb.total_cmp(&sa).then(a.cmp(&b))
                });
                threads
            }
            SchedPolicy::Uniform | SchedPolicy::AllSerial => 0,
        };
        SchedulePlan {
            policy: sched.policy,
            order,
            scores,
            heavy,
            uniform_grant,
            intra_cap: cfg.intra_reduce_threads.max(1),
            pool: Mutex::new(pool),
        }
    }

    /// The policy this plan runs.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The bucket pull order (position → bucket index).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The predicted score of bucket `index` (0.0 when out of range).
    pub fn score(&self, index: usize) -> f64 {
        self.scores.get(index).copied().unwrap_or(0.0)
    }

    /// Whether bucket `index` is classified heavy.
    pub fn is_heavy(&self, index: usize) -> bool {
        self.heavy.get(index).copied().unwrap_or(false)
    }

    /// Number of heavy buckets in the plan.
    pub fn heavy_count(&self) -> usize {
        self.heavy.iter().filter(|&&h| h).count()
    }

    /// The static grant of the uniform policy (for reports).
    pub fn uniform_grant(&self) -> usize {
        self.uniform_grant
    }

    /// Grants threads to bucket `index` as its worker picks it up. Never
    /// blocks: under [`SchedPolicy::SkewDriven`] a heavy bucket takes
    /// `1 + min(intra_cap - 1, free tokens)` and a light bucket takes 1;
    /// the static policies return their fixed grant. The grant must be
    /// handed back via [`SchedulePlan::release`] when the bucket ends.
    pub fn acquire(&self, index: usize) -> usize {
        match self.policy {
            SchedPolicy::Uniform => self.uniform_grant,
            SchedPolicy::AllSerial => 1,
            SchedPolicy::SkewDriven => {
                if !self.is_heavy(index) {
                    return 1;
                }
                let mut pool = self.pool.lock();
                let extra = self.intra_cap.saturating_sub(1).min(*pool);
                *pool -= extra;
                1 + extra
            }
        }
    }

    /// Returns a grant's extra tokens to the pool, so buckets still
    /// queued see the freed capacity. A no-op for the static policies.
    pub fn release(&self, grant: usize) {
        if self.policy == SchedPolicy::SkewDriven && grant > 1 {
            *self.pool.lock() += grant - 1;
        }
    }

    /// Free tokens currently in the pool (diagnostic).
    pub fn free_tokens(&self) -> usize {
        *self.pool.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn cfg(threads: usize, intra: usize, policy: SchedPolicy) -> ClusterConfig {
        ClusterConfig {
            reducer_slots: 4,
            worker_threads: threads,
            intra_reduce_threads: intra,
            heavy_bucket_threshold: 100,
            reduce_memory_budget: None,
            sched: SchedConfig::with_policy(policy),
            cost: CostModel::default(),
        }
    }

    fn mem(pairs: u64) -> BucketLoad {
        BucketLoad {
            pairs,
            spilled: false,
        }
    }

    #[test]
    fn policy_parses_and_prints() {
        for (s, p) in [
            ("uniform", SchedPolicy::Uniform),
            ("skew", SchedPolicy::SkewDriven),
            ("skew-driven", SchedPolicy::SkewDriven),
            ("serial", SchedPolicy::AllSerial),
            ("all-serial", SchedPolicy::AllSerial),
        ] {
            assert_eq!(s.parse::<SchedPolicy>().unwrap(), p);
        }
        assert!("best-effort".parse::<SchedPolicy>().is_err());
        assert_eq!(SchedPolicy::SkewDriven.to_string(), "skew");
        assert_eq!(SchedPolicy::default(), SchedPolicy::SkewDriven);
    }

    #[test]
    fn heavy_first_order_is_descending_score_with_index_ties() {
        let plan = SchedulePlan::new(
            &cfg(8, 8, SchedPolicy::SkewDriven),
            &[mem(10), mem(500), mem(500), mem(9000), mem(3)],
        );
        assert_eq!(plan.order(), &[3, 1, 2, 0, 4]);
        assert!(plan.is_heavy(3) && plan.is_heavy(1) && plan.is_heavy(2));
        assert!(!plan.is_heavy(0) && !plan.is_heavy(4));
        assert_eq!(plan.heavy_count(), 3);
    }

    #[test]
    fn static_policies_keep_shuffle_order() {
        for policy in [SchedPolicy::Uniform, SchedPolicy::AllSerial] {
            let plan = SchedulePlan::new(&cfg(8, 8, policy), &[mem(10), mem(9000), mem(500)]);
            assert_eq!(plan.order(), &[0, 1, 2]);
        }
    }

    #[test]
    fn uniform_grant_matches_static_split() {
        // 8 threads over 2 buckets: 4 threads each (the old engine split).
        let plan = SchedulePlan::new(&cfg(8, 8, SchedPolicy::Uniform), &[mem(10), mem(10)]);
        assert_eq!(plan.acquire(0), 4);
        assert_eq!(plan.acquire(1), 4);
        plan.release(4); // no-op for static policies
        assert_eq!(plan.free_tokens(), 0);
        // Many buckets: the split degrades to serial.
        let many: Vec<BucketLoad> = (0..20).map(|_| mem(10)).collect();
        let plan = SchedulePlan::new(&cfg(8, 8, SchedPolicy::Uniform), &many);
        assert_eq!(plan.acquire(7), 1);
        // All-serial grants 1 even with spare threads.
        let plan = SchedulePlan::new(&cfg(8, 8, SchedPolicy::AllSerial), &[mem(9000)]);
        assert_eq!(plan.acquire(0), 1);
    }

    #[test]
    fn skew_grants_draw_from_and_return_to_the_pool() {
        let loads: Vec<BucketLoad> = (0..20)
            .map(|i| if i == 4 { mem(9000) } else { mem(10) })
            .collect();
        let plan = SchedulePlan::new(&cfg(8, 8, SchedPolicy::SkewDriven), &loads);
        // Heavy bucket pulled first, even though 19 buckets precede it in
        // key order — and it gets the full intra cap despite 20 buckets
        // competing (the uniform split would hand it a single thread).
        assert_eq!(plan.order()[0], 4);
        let g = plan.acquire(4);
        assert_eq!(g, 8);
        assert_eq!(plan.free_tokens(), 1);
        // Light buckets stay serial and take nothing from the pool.
        assert_eq!(plan.acquire(0), 1);
        assert_eq!(plan.free_tokens(), 1);
        plan.release(g);
        assert_eq!(plan.free_tokens(), 8);
        plan.release(1); // serial grants return nothing
        assert_eq!(plan.free_tokens(), 8);
    }

    #[test]
    fn second_heavy_bucket_sees_remaining_capacity() {
        let plan = SchedulePlan::new(&cfg(8, 6, SchedPolicy::SkewDriven), &[mem(9000), mem(8000)]);
        let g0 = plan.acquire(0);
        assert_eq!(g0, 6); // intra cap, pool had 8
        let g1 = plan.acquire(1);
        assert_eq!(g1, 4); // 1 + the 3 tokens left
        plan.release(g0);
        let g2 = plan.acquire(0);
        assert_eq!(g2, 6); // freed capacity is re-grantable
        plan.release(g1);
        plan.release(g2);
        assert_eq!(plan.free_tokens(), 8);
    }

    #[test]
    fn spill_penalty_and_multiplier_shift_the_cutoff() {
        let base = cfg(8, 8, SchedPolicy::SkewDriven);
        // 80 pairs < threshold 100: light when resident…
        let resident = SchedulePlan::new(&base, &[mem(80)]);
        assert!(!resident.is_heavy(0));
        // …but heavy once the 1.5× spill penalty prices the Dfs re-read.
        let spilled = SchedulePlan::new(
            &base,
            &[BucketLoad {
                pairs: 80,
                spilled: true,
            }],
        );
        assert!(spilled.is_heavy(0));
        // A cheap kernel needs a proportionally bigger bucket: at
        // multiplier 0.12 the cutoff in pairs is ~833.
        let mut cheap = cfg(8, 8, SchedPolicy::SkewDriven);
        cheap.sched.work_multiplier = 0.12;
        let plan = SchedulePlan::new(&cheap, &[mem(500), mem(1000)]);
        assert!(!plan.is_heavy(0));
        assert!(plan.is_heavy(1));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = SchedulePlan::new(&cfg(8, 8, SchedPolicy::SkewDriven), &[]);
        assert!(plan.order().is_empty());
        assert_eq!(plan.heavy_count(), 0);
        assert_eq!(plan.score(3), 0.0);
        assert!(!plan.is_heavy(3));
    }
}
