//! Spill-to-DFS path for oversized reduce buckets.
//!
//! The engine's default reduce path materializes every bucket as a `Vec<M>`
//! — fine while buckets fit in RAM, but it ignores the reducer-size bound
//! the paper's analysis is built on (a reducer may only receive as much
//! input as it can hold). With [`crate::ClusterConfig::reduce_memory_budget`]
//! set, the shuffle merge stops buffering a bucket once its accumulated
//! [`Record::approx_bytes`] exceed the budget: the buffered prefix is
//! written to an engine-internal [`Dfs`] as a *run*, and the reducer later
//! pulls the bucket back as a stream of fixed-size chunks instead of a
//! resident vector.
//!
//! # Spill format and the determinism argument
//!
//! Runs are cut from the merged shuffle stream, which is already in final
//! bucket order (keys ascend; values within a key keep mapper-emission
//! order, ties between map runs broken by run index). Run *i* of a bucket
//! therefore holds a contiguous segment that entirely precedes run *i + 1*,
//! so the on-demand k-way merge of a bucket's runs degenerates to chaining
//! them in write order — the same tie-break discipline
//! [`crate::merge_sorted_runs`] uses. Because the merged stream is
//! independent of `worker_threads`, the flush points (and hence
//! `spill.runs` / `spill.bytes`) depend only on the budget, and the value
//! sequence a reducer observes is byte-identical to in-memory execution for
//! every budget and thread count.

use crate::dfs::{Dfs, DfsError};
use crate::job::ReducerId;
use crate::record::Record;
use crate::telemetry::Telemetry;
use crate::trace::{SpanKind, TraceEvent, Tracer};
use std::marker::PhantomData;
use std::sync::Arc;
// repolint: allow(wall-clock, file): Instant feeds only the spill I/O wall
// accounting surfaced as JobMetrics::spill_wall and the optional trace
// spans; durations are never keyed, emitted, or able to reach job output.
use std::time::Instant;

/// Records per chunk the spilled-bucket cursor pulls through
/// [`Dfs::read_range`] — a reducer holds one chunk of one run resident at
/// a time, never a whole run.
pub(crate) const SPILL_READ_CHUNK: usize = 1024;

/// Spill-volume statistics for one job, surfaced as the `spill.buckets` /
/// `spill.runs` / `spill.bytes` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Buckets that overflowed the budget and were spilled.
    pub buckets: u64,
    /// Sorted runs written across all spilled buckets.
    pub runs: u64,
    /// Approximate bytes written to the spill store.
    pub bytes: u64,
}

/// One spilled run: a DFS path plus the record count stored there.
#[derive(Debug, Clone)]
pub struct SpillRun {
    pub(crate) path: String,
    pub(crate) len: usize,
}

/// Shuffle-side writer for budget-overflow runs. One store lives per
/// budgeted `run_job`, wrapping a fresh engine-internal [`Dfs`] so spill
/// files can never collide with (or leak into) algorithm-visible storage.
pub(crate) struct SpillStore<'t> {
    dfs: Arc<Dfs>,
    budget: u64,
    seq: u64,
    stats: SpillStats,
    write_nanos: u64,
    tracer: Option<&'t Tracer>,
    telemetry: Option<&'t Telemetry>,
}

impl<'t> SpillStore<'t> {
    /// A store enforcing `budget` approx-bytes per bucket buffer.
    pub(crate) fn new(
        budget: u64,
        tracer: Option<&'t Tracer>,
        telemetry: Option<&'t Telemetry>,
    ) -> Self {
        SpillStore {
            dfs: Arc::new(Dfs::new()),
            budget,
            seq: 0,
            stats: SpillStats::default(),
            write_nanos: 0,
            tracer,
            telemetry,
        }
    }

    /// The per-bucket buffer budget in approx-bytes.
    pub(crate) fn budget(&self) -> u64 {
        self.budget
    }

    /// The store's backing DFS (shared with the cursors reading it back).
    pub(crate) fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    /// Writes `values` as the next run for bucket `key`, returning its
    /// handle. The sequence number makes paths unique without consulting
    /// any ambient state, so spill layout is deterministic.
    pub(crate) fn spill_run<M: Record>(
        &mut self,
        key: ReducerId,
        values: Vec<M>,
    ) -> Result<SpillRun, DfsError> {
        let t0 = Instant::now();
        let span_t0 = self.tracer.map(Tracer::now_us).unwrap_or(0);
        let len = values.len();
        let bytes: u64 = values.iter().map(Record::approx_bytes).sum();
        let path = format!("spill/{key}/{seq}", seq = self.seq);
        self.seq += 1;
        self.dfs.write(&path, values)?;
        self.stats.runs += 1;
        self.stats.bytes += bytes;
        self.write_nanos += t0.elapsed().as_nanos() as u64;
        if let Some(tel) = self.telemetry {
            tel.spill_run(key, bytes);
        }
        if let Some(t) = self.tracer {
            t.record(
                TraceEvent::span(SpanKind::Spill, "spill-run", key, span_t0, t.now_us())
                    .arg("key", key)
                    .arg("records", len as u64)
                    .arg("bytes", bytes),
            );
        }
        Ok(SpillRun { path, len })
    }

    /// Records that one more bucket ended up spilled.
    pub(crate) fn note_bucket(&mut self) {
        self.stats.buckets += 1;
    }

    /// Consumes the store: spill statistics plus cumulative write time.
    pub(crate) fn finish(self) -> (SpillStats, u64) {
        (self.stats, self.write_nanos)
    }
}

/// A reduce bucket whose values live in DFS run files rather than memory.
///
/// Cloning is cheap (paths plus an `Arc<Dfs>`): a fault-plan retry simply
/// re-reads the runs, the in-process analogue of a re-executed Hadoop
/// reduce task re-reading its shuffled segment from disk.
#[derive(Debug)]
pub struct SpilledBucket<M> {
    dfs: Arc<Dfs>,
    runs: Vec<SpillRun>,
    total: usize,
    _values: PhantomData<fn() -> M>,
}

impl<M> Clone for SpilledBucket<M> {
    fn clone(&self) -> Self {
        SpilledBucket {
            dfs: Arc::clone(&self.dfs),
            runs: self.runs.clone(),
            total: self.total,
            _values: PhantomData,
        }
    }
}

impl<M: Record> SpilledBucket<M> {
    /// A bucket backed by `runs` (in bucket order) holding `total` records.
    pub(crate) fn new(dfs: Arc<Dfs>, runs: Vec<SpillRun>, total: usize) -> Self {
        SpilledBucket {
            dfs,
            runs,
            total,
            _values: PhantomData,
        }
    }

    /// Total records across all runs.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the bucket holds no records.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of runs the bucket was cut into.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// A cursor streaming the bucket's values back in bucket order.
    pub(crate) fn cursor(self) -> RunCursor<M> {
        RunCursor {
            dfs: self.dfs,
            runs: self.runs,
            run_idx: 0,
            offset: 0,
            chunk: Vec::new().into_iter(),
            io_nanos: 0,
            error: None,
            _values: PhantomData,
        }
    }
}

/// Pull-based reader over a spilled bucket's runs: chains the runs in
/// write order (see the module docs for why that *is* the k-way merge) and
/// fetches [`SPILL_READ_CHUNK`]-record chunks through [`Dfs::read_range`],
/// so at most one chunk is resident per reducer.
#[derive(Debug)]
pub(crate) struct RunCursor<M> {
    dfs: Arc<Dfs>,
    runs: Vec<SpillRun>,
    run_idx: usize,
    offset: usize,
    chunk: std::vec::IntoIter<M>,
    io_nanos: u64,
    error: Option<DfsError>,
    _values: PhantomData<fn() -> M>,
}

impl<M: Record> RunCursor<M> {
    /// The next value, or `None` at end-of-bucket *or* on a read error —
    /// streaming can't surface a `Result` per value, so the error is
    /// latched in [`RunCursor::error`] for the engine to check after the
    /// reducer returns.
    pub(crate) fn next_value(&mut self) -> Option<M> {
        loop {
            if let Some(v) = self.chunk.next() {
                return Some(v);
            }
            if self.error.is_some() {
                return None;
            }
            let run = self.runs.get(self.run_idx)?;
            if self.offset >= run.len {
                self.run_idx += 1;
                self.offset = 0;
                continue;
            }
            let t0 = Instant::now();
            let read = self
                .dfs
                .read_range::<M>(&run.path, self.offset, SPILL_READ_CHUNK);
            self.io_nanos += t0.elapsed().as_nanos() as u64;
            match read {
                Ok(chunk) if chunk.is_empty() => {
                    // A run shorter than its recorded length would be an
                    // engine bug; treat it as corruption, not end-of-data.
                    self.error = Some(DfsError::NotFound(run.path.clone()));
                    return None;
                }
                Ok(chunk) => {
                    self.offset += chunk.len();
                    self.chunk = chunk.into_iter();
                }
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }

    /// Cumulative wall time spent inside `read_range`.
    pub(crate) fn io_nanos(&self) -> u64 {
        self.io_nanos
    }

    /// The latched read error, if any chunk fetch failed.
    pub(crate) fn error(&self) -> Option<&DfsError> {
        self.error.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpillStore<'static> {
        SpillStore::new(64, None, None)
    }

    #[test]
    fn runs_round_trip_in_order() {
        let mut st = store();
        let r1 = st.spill_run(3, vec![1u64, 2, 3]).unwrap();
        let r2 = st.spill_run(3, vec![4u64, 5]).unwrap();
        let bucket = SpilledBucket::<u64>::new(Arc::clone(st.dfs()), vec![r1, r2], 5);
        assert_eq!(bucket.len(), 5);
        assert_eq!(bucket.run_count(), 2);
        let mut cur = bucket.cursor();
        let mut got = Vec::new();
        while let Some(v) = cur.next_value() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert!(cur.error().is_none());
    }

    #[test]
    fn stats_accumulate_runs_and_bytes() {
        let mut st = store();
        st.spill_run(0, vec![1u64, 2]).unwrap();
        st.spill_run(7, vec![3u64]).unwrap();
        st.note_bucket();
        let (stats, _nanos) = st.finish();
        assert_eq!(stats.buckets, 1);
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.bytes, 3 * 8);
    }

    #[test]
    fn paths_are_unique_per_run() {
        let mut st = store();
        st.spill_run(1, vec![1u64]).unwrap();
        st.spill_run(1, vec![2u64]).unwrap();
        assert_eq!(st.dfs().list().len(), 2);
    }

    #[test]
    fn chunked_reads_cross_run_boundaries() {
        // A run longer than one chunk plus a short tail run.
        let big: Vec<u64> = (0..(SPILL_READ_CHUNK as u64 * 2 + 10)).collect();
        let mut st = store();
        let r1 = st.spill_run(0, big.clone()).unwrap();
        let r2 = st.spill_run(0, vec![999u64]).unwrap();
        let total = big.len() + 1;
        let bucket = SpilledBucket::<u64>::new(Arc::clone(st.dfs()), vec![r1, r2], total);
        let mut cur = bucket.cursor();
        let mut got = Vec::with_capacity(total);
        while let Some(v) = cur.next_value() {
            got.push(v);
        }
        assert_eq!(got.len(), total);
        assert_eq!(got[..big.len()], big[..]);
        assert_eq!(got[big.len()], 999);
        // More than one range read must have happened.
        assert!(st.dfs().stats().range_reads >= 3);
    }

    #[test]
    fn missing_run_latches_error_instead_of_panicking() {
        let st = store();
        let bucket = SpilledBucket::<u64>::new(
            Arc::clone(st.dfs()),
            vec![SpillRun {
                path: "spill/0/404".to_string(),
                len: 3,
            }],
            3,
        );
        let mut cur = bucket.cursor();
        assert!(cur.next_value().is_none());
        assert!(matches!(cur.error(), Some(DfsError::NotFound(_))));
        // The error is sticky.
        assert!(cur.next_value().is_none());
    }

    #[test]
    fn cloned_bucket_rereads_independently() {
        let mut st = store();
        let r = st.spill_run(0, vec![7u64, 8]).unwrap();
        let bucket = SpilledBucket::<u64>::new(Arc::clone(st.dfs()), vec![r], 2);
        let twin = bucket.clone();
        let drain = |b: SpilledBucket<u64>| {
            let mut cur = b.cursor();
            let mut got = Vec::new();
            while let Some(v) = cur.next_value() {
                got.push(v);
            }
            got
        };
        assert_eq!(drain(bucket), vec![7, 8]);
        assert_eq!(drain(twin), vec![7, 8]);
    }
}
