//! Injectable time sources for the telemetry plane.
//!
//! Telemetry timestamps (heartbeat times, per-reducer service durations)
//! are the one place the live-metrics plane legitimately touches a clock.
//! Instead of sprinkling wall-clock reads — and repolint `allow` markers —
//! through the subsystem, every read goes through the [`Clock`] trait:
//! production attaches a [`MonotonicClock`], tests and the determinism
//! audit attach a [`VirtualClock`] whose time only moves when explicitly
//! advanced. This file is the *only* telemetry source inside repolint's
//! `wall-clock` allowlist; the rest of `telemetry/` must stay clock-free.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe — workers read the clock on reduce-service boundaries and
/// heartbeats.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now_nanos(&self) -> u64;
}

/// The production clock: monotonic time since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch (time zero) is the moment of creation.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A deterministic test clock: time stands still until [`VirtualClock::advance`]
/// (or [`VirtualClock::set`]) moves it. The determinism audit attaches one
/// so telemetry snapshots carry no wall-clock entropy.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock frozen at nanosecond 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jumps time to an absolute nanosecond offset.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_on_demand() {
        let c = VirtualClock::new();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0, "time stands still");
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
        c.set(3);
        assert_eq!(c.now_nanos(), 3);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> = vec![
            Box::new(MonotonicClock::new()),
            Box::new(VirtualClock::new()),
        ];
        for c in &clocks {
            let _ = c.now_nanos();
        }
    }
}
