//! Deterministically mergeable histograms with fixed log2 bucket bounds.
//!
//! Bucket `i` covers values whose bit length is `i`: bucket 0 holds only
//! the value 0, bucket 1 holds 1, bucket 2 holds 2..=3, bucket `i` holds
//! `2^(i-1) ..= 2^i - 1`. The bounds are *fixed* (never rescaled from
//! observed data), so merging two histograms is an element-wise sum —
//! associative and commutative, which is what makes worker-merged
//! histograms byte-identical across `worker_threads` counts, exactly like
//! [`crate::Counters`].

use std::collections::BTreeMap;

/// Bucket count: one per possible `u64` bit length (0..=64).
pub const HIST_BUCKETS: usize = 65;

/// One fixed-bound log2 histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index of a value: its bit length (0 for 0).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        // repolint: allow(panic-propagation): bucket_index clamps to BUCKETS - 1
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram in (element-wise bucket sum; commutative,
    /// so the result is independent of merge order).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket sample counts (index = bit length of the sample).
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn highest_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }
}

/// A name-keyed set of [`Histogram`]s, merged across workers the same way
/// [`crate::Counters`] merges: per-name, order-independent. Iteration is
/// sorted by name (`BTreeMap`), so rendered output is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramRegistry {
    hists: BTreeMap<String, Histogram>,
}

impl HistogramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        HistogramRegistry::default()
    }

    /// Records one sample into the histogram `name` (creating it empty
    /// first). The name is only allocated on first use.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Merges another registry in (per-name histogram merge).
    pub fn merge(&mut self, other: &HistogramRegistry) {
        for (name, h) in &other.hists {
            if let Some(mine) = self.hists.get_mut(name) {
                mine.merge(h);
            } else {
                self.hists.insert(name.clone(), h.clone());
            }
        }
    }

    /// The named histogram, if any sample was recorded under it.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterates `(name, histogram)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of named histograms.
    pub fn len(&self) -> usize {
        self.hists.len()
    }

    /// True when no histogram exists.
    pub fn is_empty(&self) -> bool {
        self.hists.is_empty()
    }

    /// A sorted-name map clone of the registry contents (what snapshots
    /// carry).
    pub fn to_map(&self) -> BTreeMap<String, Histogram> {
        self.hists.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value falls inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} in bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} above bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [5u64, 0, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 105);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.highest_bucket(), Some(bucket_index(100)));
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let xs = [1u64, 7, 7, 300, 0];
        let ys = [2u64, 9000, 1];
        let mut a = Histogram::new();
        xs.iter().for_each(|&v| a.record(v));
        let mut b = Histogram::new();
        ys.iter().for_each(|&v| b.record(v));
        let mut union = Histogram::new();
        xs.iter().chain(ys.iter()).for_each(|&v| union.record(v));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, union, "merge must equal recording the union");
        assert_eq!(ab, ba, "merge is commutative");
    }

    #[test]
    fn registry_merges_per_name_and_iterates_sorted() {
        let mut a = HistogramRegistry::new();
        a.record("b.size", 10);
        a.record("a.size", 1);
        let mut b = HistogramRegistry::new();
        b.record("b.size", 20);
        b.record("c.size", 5);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.size", "b.size", "c.size"]);
        let bs = a.get("b.size").unwrap();
        assert_eq!(bs.count(), 2);
        assert_eq!(bs.sum(), 30);
        assert!(a.get("missing").is_none());
    }
}
