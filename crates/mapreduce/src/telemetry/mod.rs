//! Live telemetry: progress gauges, heartbeats, straggler detection,
//! mergeable histograms, Prometheus exposition, and a crash flight
//! recorder.
//!
//! Everything post-mortem the engine already had ([`crate::JobMetrics`],
//! [`crate::SkewReport`], `spill.*` counters) is computed after a job
//! finishes. This module is the *live* plane: the engine feeds it while
//! jobs run, so a straggling or spilling reducer is observable mid-job —
//! the load signal the roadmap's skew-driven intra-reduce budget needs.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic output.** The data-plane projection of a
//!    [`TelemetrySnapshot`] (see
//!    [`snapshot::is_execution_shape_series`]) must be byte-identical
//!    across `worker_threads` and memory budgets, exactly like engine
//!    outputs and data-plane [`crate::Counters`]. Histograms use fixed
//!    log2 bucket bounds so merges commute; heartbeat counts derive from
//!    pull quanta, not time.
//! 2. **Lock-light.** Progress gauges are plain atomics; the aggregate
//!    (series + histograms) mutex is taken once per heartbeat quantum or
//!    phase boundary, never per record.
//! 3. **No ambient wall clock.** All timestamps flow through the
//!    injectable [`Clock`]; only `clock.rs` touches `Instant`, keeping
//!    repolint's wall-clock rule scoped instead of `allow`-riddled.

pub mod clock;
pub mod hist;
pub mod progress;
pub mod recorder;
pub mod snapshot;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, HistogramRegistry, HIST_BUCKETS};
pub use progress::{detect_stragglers, ProgressGauges, Straggler};
pub use recorder::{FlightRecorder, TelemetryEvent};
pub use snapshot::{is_execution_shape_series, TelemetrySnapshot};

use crate::error::EngineError;
use crate::job::ReducerId;
use crate::metrics::names;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tunables for the live telemetry plane.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Emit a heartbeat every N processed values (map records or reduce
    /// pulls). Clamped to ≥ 1 at use sites.
    pub heartbeat_every: u64,
    /// A reducer whose progress rate is below this fraction of the
    /// job median is flagged as a straggler.
    pub straggler_fraction: f64,
    /// Jobs with fewer reducers than this never flag stragglers.
    pub min_straggler_reducers: usize,
    /// Flight-recorder ring capacity (recent events retained).
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            heartbeat_every: 8192,
            straggler_fraction: 0.25,
            min_straggler_reducers: 4,
            flight_capacity: 1024,
        }
    }
}

/// Series + histogram aggregate behind one mutex (taken per quantum or
/// phase boundary, never per record).
#[derive(Debug, Default)]
struct Agg {
    series: BTreeMap<String, u64>,
    hists: HistogramRegistry,
}

/// The live telemetry plane. Attach one to an [`crate::Engine`] with
/// [`crate::Engine::with_telemetry`]; share the [`Arc`] to observe jobs
/// mid-flight or snapshot after.
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    clock: Arc<dyn Clock>,
    gauges: ProgressGauges,
    flight: FlightRecorder,
    agg: Mutex<Agg>,
    last_dump: Mutex<Option<String>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Default config and the production [`MonotonicClock`].
    pub fn new() -> Self {
        Telemetry::with_config(TelemetryConfig::default())
    }

    /// Custom config, production clock.
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        Telemetry::with_clock(cfg, Arc::new(MonotonicClock::new()))
    }

    /// Custom config and clock — tests and the determinism audit inject a
    /// [`VirtualClock`] here so snapshots carry no wall-clock entropy.
    pub fn with_clock(cfg: TelemetryConfig, clock: Arc<dyn Clock>) -> Self {
        let flight = FlightRecorder::new(cfg.flight_capacity);
        Telemetry {
            cfg,
            clock,
            gauges: ProgressGauges::new(),
            flight,
            agg: Mutex::new(Agg::default()),
            last_dump: Mutex::new(None),
        }
    }

    /// The active config.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Current clock reading (ns since the clock's epoch).
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The live progress gauges.
    pub fn gauges(&self) -> &ProgressGauges {
        &self.gauges
    }

    /// The flight recorder (recent-events ring).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Adds `delta` to the scalar series `name`.
    pub(crate) fn inc_series(&self, name: &str, delta: u64) {
        let mut agg = self.agg.lock();
        if let Some(v) = agg.series.get_mut(name) {
            *v += delta;
        } else {
            agg.series.insert(name.to_string(), delta);
        }
    }

    /// Records one sample into the histogram `name`.
    pub(crate) fn record_hist(&self, name: &str, value: u64) {
        self.agg.lock().hists.record(name, value);
    }

    /// Merges a worker-local registry into the aggregate (one lock for
    /// the whole batch).
    pub(crate) fn merge_hists(&self, other: &HistogramRegistry) {
        self.agg.lock().hists.merge(other);
    }

    /// A task reported liveness: bump the per-scope heartbeat series and
    /// record the event.
    pub(crate) fn heartbeat(&self, job: &str, scope: &'static str, id: u64, processed: u64) {
        let series = if scope == "map" {
            names::HEARTBEATS_MAP
        } else {
            names::HEARTBEATS_REDUCE
        };
        self.inc_series(series, 1);
        self.flight.push(TelemetryEvent::Heartbeat {
            job: job.to_string(),
            scope,
            id,
            processed,
            t_ns: self.clock.now_nanos(),
        });
    }

    /// A job entered the engine.
    pub(crate) fn job_start(&self, job: &str, records: u64) {
        self.gauges.note_job_started();
        self.flight.push(TelemetryEvent::JobStart {
            job: job.to_string(),
            records,
            t_ns: self.clock.now_nanos(),
        });
    }

    /// A phase (map / shuffle / reduce) completed.
    pub(crate) fn phase_end(&self, job: &str, phase: &'static str, items: u64) {
        self.flight.push(TelemetryEvent::PhaseEnd {
            job: job.to_string(),
            phase,
            items,
            t_ns: self.clock.now_nanos(),
        });
    }

    /// A job ran to successful completion.
    pub(crate) fn job_end(&self, job: &str, outputs: u64) {
        self.gauges.note_job_finished();
        self.flight.push(TelemetryEvent::JobEnd {
            job: job.to_string(),
            outputs,
            t_ns: self.clock.now_nanos(),
        });
    }

    /// The straggler detector flagged reducers: bump the
    /// `telemetry.stragglers` series and record one event each.
    pub(crate) fn note_stragglers(&self, job: &str, stragglers: &[Straggler]) {
        if stragglers.is_empty() {
            return;
        }
        self.inc_series(names::TELEMETRY_STRAGGLERS, stragglers.len() as u64);
        let t_ns = self.clock.now_nanos();
        for s in stragglers {
            self.flight.push(TelemetryEvent::Straggler {
                job: job.to_string(),
                reducer: s.key,
                pairs: s.pairs,
                service_ns: s.service_ns,
                t_ns,
            });
        }
    }

    /// The budgeted shuffle wrote a spill run.
    pub(crate) fn spill_run(&self, reducer: ReducerId, bytes: u64) {
        self.record_hist(names::SPILL_RUN_BYTES, bytes);
        self.flight.push(TelemetryEvent::SpillRun {
            reducer,
            bytes,
            t_ns: self.clock.now_nanos(),
        });
    }

    /// A job failed: record the error and freeze a JSONL dump of the
    /// flight recorder for forensics (readable via
    /// [`Telemetry::last_flight_dump`]).
    pub(crate) fn note_error(&self, job: &str, err: &EngineError) {
        self.flight.push(TelemetryEvent::Error {
            job: job.to_string(),
            detail: err.to_string(),
            t_ns: self.clock.now_nanos(),
        });
        let dump = self.flight.jsonl();
        *self.last_dump.lock() = Some(dump);
    }

    /// The flight-recorder JSONL dump frozen by the most recent engine
    /// error, if any job has failed.
    pub fn last_flight_dump(&self) -> Option<String> {
        self.last_dump.lock().clone()
    }

    /// A point-in-time copy of every series and histogram. Core series
    /// (`telemetry.stragglers`, per-scope heartbeats, `spill.run_bytes`)
    /// are pre-seeded at zero so scrapes always expose them.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut series: BTreeMap<String, u64> = BTreeMap::new();
        for name in [
            names::HEARTBEATS_MAP,
            names::HEARTBEATS_REDUCE,
            names::TELEMETRY_STRAGGLERS,
        ] {
            series.insert(name.to_string(), 0);
        }
        for (name, v) in self.gauges.read_all() {
            series.insert(name.to_string(), v);
        }
        let agg = self.agg.lock();
        for (name, v) in &agg.series {
            *series.entry(name.clone()).or_insert(0) += *v;
        }
        let mut histograms = agg.hists.to_map();
        histograms
            .entry(names::SPILL_RUN_BYTES.to_string())
            .or_default();
        TelemetrySnapshot { series, histograms }
    }
}

/// Per-stream heartbeat bookkeeping for reduce-side [`crate::ValueStream`]
/// pulls: counts pulls locally and touches the shared telemetry only once
/// per `every` values (lock-light by construction).
#[derive(Debug)]
pub(crate) struct HeartbeatHook {
    tel: Arc<Telemetry>,
    job: Arc<str>,
    id: u64,
    every: u64,
    pulled: u64,
    since: u64,
}

impl HeartbeatHook {
    pub(crate) fn new(tel: Arc<Telemetry>, job: Arc<str>, id: u64, every: u64) -> Self {
        HeartbeatHook {
            tel,
            job,
            id,
            every: every.max(1),
            pulled: 0,
            since: 0,
        }
    }

    /// One value pulled; emits a heartbeat at each quantum boundary.
    pub(crate) fn tick(&mut self) {
        self.pulled += 1;
        self.since += 1;
        if self.since == self.every {
            self.since = 0;
            self.tel.gauges().add_reduce_values(self.every);
            self.tel
                .heartbeat(&self.job, "reduce", self.id, self.pulled);
        }
    }

    /// Flushes the sub-quantum remainder into the gauges (called on
    /// stream drop so `progress.reduce_values` is exact).
    pub(crate) fn flush(&mut self) {
        self.tel.gauges().add_reduce_values(self.since);
        self.since = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = TelemetryConfig::default();
        assert!(cfg.heartbeat_every > 0);
        assert!((0.0..=1.0).contains(&cfg.straggler_fraction));
        assert!(cfg.min_straggler_reducers >= 2);
        assert!(cfg.flight_capacity > 0);
    }

    #[test]
    fn snapshot_seeds_core_series_at_zero() {
        let tel = Telemetry::with_clock(TelemetryConfig::default(), Arc::new(VirtualClock::new()));
        let snap = tel.snapshot();
        assert_eq!(snap.series.get("telemetry.stragglers"), Some(&0));
        assert_eq!(snap.series.get("telemetry.heartbeats.map"), Some(&0));
        assert_eq!(snap.series.get("telemetry.heartbeats.reduce"), Some(&0));
        assert_eq!(snap.series.get("progress.jobs_started"), Some(&0));
        assert!(snap.histograms.contains_key("spill.run_bytes"));
        assert!(snap
            .histograms
            .get("spill.run_bytes")
            .is_some_and(Histogram::is_empty));
    }

    #[test]
    fn series_and_hists_accumulate() {
        let tel = Telemetry::with_clock(TelemetryConfig::default(), Arc::new(VirtualClock::new()));
        tel.inc_series("telemetry.stragglers", 2);
        tel.inc_series("telemetry.stragglers", 1);
        tel.record_hist("reduce.bucket_pairs", 10);
        let mut reg = HistogramRegistry::new();
        reg.record("reduce.bucket_pairs", 20);
        tel.merge_hists(&reg);
        let snap = tel.snapshot();
        assert_eq!(snap.series.get("telemetry.stragglers"), Some(&3));
        let h = snap.histograms.get("reduce.bucket_pairs").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
    }

    #[test]
    fn heartbeat_hook_fires_per_quantum_and_flushes_remainder() {
        let tel = Arc::new(Telemetry::with_clock(
            TelemetryConfig::default(),
            Arc::new(VirtualClock::new()),
        ));
        let mut hook = HeartbeatHook::new(Arc::clone(&tel), Arc::from("j"), 7, 4);
        for _ in 0..10 {
            hook.tick();
        }
        // 10 pulls at quantum 4: two heartbeats, 8 values in gauges so far.
        assert_eq!(tel.snapshot().series["telemetry.heartbeats.reduce"], 2);
        assert_eq!(tel.gauges().reduce_values(), 8);
        hook.flush();
        assert_eq!(tel.gauges().reduce_values(), 10);
        hook.flush();
        assert_eq!(tel.gauges().reduce_values(), 10, "flush is idempotent");
        assert_eq!(tel.flight().len(), 2, "one event per heartbeat");
    }

    #[test]
    fn note_error_freezes_a_jsonl_dump() {
        let tel = Telemetry::with_clock(TelemetryConfig::default(), Arc::new(VirtualClock::new()));
        assert!(tel.last_flight_dump().is_none());
        tel.job_start("j", 100);
        tel.note_error("j", &EngineError::Internal("boom"));
        let dump = tel.last_flight_dump().unwrap();
        assert!(dump.contains("\"event\":\"job_start\""));
        assert!(dump.contains("\"event\":\"error\""));
        assert!(dump.contains("boom"), "{dump}");
        assert!(dump.lines().count() >= 2);
    }

    #[test]
    fn virtual_clock_timestamps_flow_into_events() {
        let clock = Arc::new(VirtualClock::new());
        let tel = Telemetry::with_clock(
            TelemetryConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        clock.set(42);
        tel.phase_end("j", "map", 5);
        match &tel.flight().snapshot()[0] {
            TelemetryEvent::PhaseEnd { t_ns, .. } => assert_eq!(*t_ns, 42),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(tel.now_nanos(), 42);
    }
}
