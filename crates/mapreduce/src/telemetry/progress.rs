//! Live progress gauges and the straggler detector.
//!
//! Gauges are plain atomics — workers bump them lock-free while a job
//! runs, and anything holding the [`crate::telemetry::Telemetry`] handle
//! can read a consistent-enough view mid-flight (each gauge individually
//! exact, the set weakly consistent, like any scrape of a live process).
//! Final values are deterministic: every gauge counts data-plane events
//! (records mapped, values reduced, buckets finished) whose totals do not
//! depend on thread count or memory budget.

use crate::job::ReducerId;
use crate::metrics::names;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free progress counters the engine bumps while jobs run.
#[derive(Debug, Default)]
pub struct ProgressGauges {
    jobs_started: AtomicU64,
    jobs_finished: AtomicU64,
    map_tasks: AtomicU64,
    map_records: AtomicU64,
    reducers: AtomicU64,
    reducers_done: AtomicU64,
    reduce_values: AtomicU64,
}

impl ProgressGauges {
    /// Fresh gauges, all zero.
    pub fn new() -> Self {
        ProgressGauges::default()
    }

    pub(crate) fn note_job_started(&self) {
        self.jobs_started.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_job_finished(&self) {
        self.jobs_finished.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_map_tasks(&self, n: u64) {
        self.map_tasks.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_map_records(&self, n: u64) {
        self.map_records.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_reducers(&self, n: u64) {
        self.reducers.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_reducer_done(&self) {
        self.reducers_done.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_reduce_values(&self, n: u64) {
        self.reduce_values.fetch_add(n, Ordering::Relaxed);
    }

    /// Jobs the engine has started.
    pub fn jobs_started(&self) -> u64 {
        self.jobs_started.load(Ordering::Relaxed)
    }

    /// Jobs that ran to successful completion.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_finished.load(Ordering::Relaxed)
    }

    /// Map tasks (worker chunks) completed.
    pub fn map_tasks(&self) -> u64 {
        self.map_tasks.load(Ordering::Relaxed)
    }

    /// Input records mapped.
    pub fn map_records(&self) -> u64 {
        self.map_records.load(Ordering::Relaxed)
    }

    /// Reducer buckets formed by shuffles.
    pub fn reducers(&self) -> u64 {
        self.reducers.load(Ordering::Relaxed)
    }

    /// Reducer buckets fully reduced.
    pub fn reducers_done(&self) -> u64 {
        self.reducers_done.load(Ordering::Relaxed)
    }

    /// Values pulled through reducer [`crate::ValueStream`]s.
    pub fn reduce_values(&self) -> u64 {
        self.reduce_values.load(Ordering::Relaxed)
    }

    /// The gauge values as `(series name, value)` pairs, in a fixed order
    /// (what snapshots embed).
    pub fn read_all(&self) -> [(&'static str, u64); 7] {
        [
            (names::PROGRESS_JOBS_STARTED, self.jobs_started()),
            (names::PROGRESS_JOBS_FINISHED, self.jobs_finished()),
            (names::PROGRESS_MAP_RECORDS, self.map_records()),
            (names::PROGRESS_MAP_TASKS, self.map_tasks()),
            (names::PROGRESS_REDUCE_VALUES, self.reduce_values()),
            (names::PROGRESS_REDUCERS, self.reducers()),
            (names::PROGRESS_REDUCERS_DONE, self.reducers_done()),
        ]
    }
}

/// One reducer flagged by [`detect_stragglers`].
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// The straggling reducer's key.
    pub key: ReducerId,
    /// Pairs the reducer received.
    pub pairs: u64,
    /// Service time the reducer took, in clock nanoseconds.
    pub service_ns: u64,
    /// The reducer's progress rate (pairs per nanosecond).
    pub rate: f64,
    /// The median rate across all reducers of the job.
    pub median_rate: f64,
}

/// Flags reducers whose progress rate (pairs processed per service
/// nanosecond) fell below `fraction` of the job's median rate.
///
/// `loads` is `(key, pairs_received, service_ns)` per reducer. Jobs with
/// fewer than `min_reducers` loaded reducers are never flagged — a median
/// over a handful of reducers is noise, and single-reducer jobs would
/// always self-compare. Zero service times are clamped to 1 ns so the
/// rate stays finite (and so a virtual clock yields rates proportional to
/// load — deterministic, if not meaningful as wall time).
pub fn detect_stragglers(
    loads: &[(ReducerId, u64, u64)],
    fraction: f64,
    min_reducers: usize,
) -> Vec<Straggler> {
    if loads.len() < min_reducers.max(2) || !(0.0..=1.0).contains(&fraction) {
        return Vec::new();
    }
    let rate_of = |pairs: u64, ns: u64| pairs as f64 / ns.max(1) as f64;
    let mut rates: Vec<f64> = loads.iter().map(|&(_, p, ns)| rate_of(p, ns)).collect();
    rates.sort_by(f64::total_cmp);
    // repolint: allow(panic-propagation): rates.len() >= 2 by the guard at the top
    let median = rates[rates.len() / 2];
    if median <= 0.0 {
        return Vec::new();
    }
    let cutoff = fraction * median;
    loads
        .iter()
        .filter_map(|&(key, pairs, service_ns)| {
            let rate = rate_of(pairs, service_ns);
            (rate < cutoff).then_some(Straggler {
                key,
                pairs,
                service_ns,
                rate,
                median_rate: median,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_accumulate_and_read_back() {
        let g = ProgressGauges::new();
        g.note_job_started();
        g.add_map_tasks(3);
        g.add_map_records(100);
        g.add_reducers(4);
        g.note_reducer_done();
        g.note_reducer_done();
        g.add_reduce_values(80);
        g.note_job_finished();
        assert_eq!(g.jobs_started(), 1);
        assert_eq!(g.jobs_finished(), 1);
        assert_eq!(g.map_tasks(), 3);
        assert_eq!(g.map_records(), 100);
        assert_eq!(g.reducers(), 4);
        assert_eq!(g.reducers_done(), 2);
        assert_eq!(g.reduce_values(), 80);
        let all = g.read_all();
        assert_eq!(all[0], ("progress.jobs_started", 1));
        assert!(all
            .iter()
            .any(|&(n, v)| n == "progress.reduce_values" && v == 80));
    }

    #[test]
    fn flags_the_slow_reducer() {
        // Four reducers with equal load; one took 100x longer.
        let loads: Vec<(ReducerId, u64, u64)> = vec![
            (0, 1000, 10_000),
            (1, 1000, 12_000),
            (2, 1000, 1_200_000),
            (3, 1000, 11_000),
        ];
        let s = detect_stragglers(&loads, 0.25, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].key, 2);
        assert!(s[0].rate < 0.25 * s[0].median_rate);
    }

    #[test]
    fn balanced_jobs_flag_nothing() {
        let loads: Vec<(ReducerId, u64, u64)> =
            (0..8).map(|k| (k, 500, 10_000 + k * 100)).collect();
        assert!(detect_stragglers(&loads, 0.25, 4).is_empty());
    }

    #[test]
    fn small_jobs_are_never_flagged() {
        let loads: Vec<(ReducerId, u64, u64)> = vec![(0, 10, 10), (1, 10, 1_000_000)];
        assert!(
            detect_stragglers(&loads, 0.25, 4).is_empty(),
            "below min_reducers no straggler is reported"
        );
        assert!(detect_stragglers(&[], 0.25, 0).is_empty());
        assert!(detect_stragglers(&[(0, 1, 1)], 0.25, 0).is_empty());
    }

    #[test]
    fn zero_service_times_stay_finite() {
        // A virtual clock reports 0 ns everywhere; rates degrade to the
        // pair counts and nothing is NaN/inf.
        let loads: Vec<(ReducerId, u64, u64)> =
            vec![(0, 100, 0), (1, 100, 0), (2, 100, 0), (3, 100, 0)];
        let s = detect_stragglers(&loads, 0.5, 4);
        assert!(s.is_empty(), "equal loads at zero time: no straggler");
    }

    #[test]
    fn bad_fraction_is_rejected() {
        let loads: Vec<(ReducerId, u64, u64)> = vec![(0, 1, 1), (1, 1, 1), (2, 1, 1), (3, 1, 1000)];
        assert!(detect_stragglers(&loads, -0.1, 4).is_empty());
        assert!(detect_stragglers(&loads, 1.5, 4).is_empty());
    }

    #[test]
    fn exactly_at_cutoff_rate_is_not_flagged() {
        // The comparison is strict (`rate < fraction * median`): a
        // reducer sitting exactly on the cutoff is NOT a straggler.
        // Median rate here is 1.0 (three reducers at 1000 pairs /
        // 1000 ns); with fraction 0.25 the cutoff is 0.25, and key 3
        // runs at exactly 0.25 pairs/ns.
        let loads: Vec<(ReducerId, u64, u64)> = vec![
            (0, 1000, 1_000),
            (1, 1000, 1_000),
            (2, 1000, 1_000),
            (3, 1000, 4_000),
        ];
        assert!(
            detect_stragglers(&loads, 0.25, 4).is_empty(),
            "exactly-at-cutoff must not be flagged (strict comparison)"
        );
        // One nanosecond slower crosses the boundary.
        let loads_below: Vec<(ReducerId, u64, u64)> = vec![
            (0, 1000, 1_000),
            (1, 1000, 1_000),
            (2, 1000, 1_000),
            (3, 1000, 4_001),
        ];
        let s = detect_stragglers(&loads_below, 0.25, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].key, 3);
    }

    #[test]
    fn exactly_at_median_rate_is_not_flagged() {
        // A reducer at exactly the median rate sits at fraction 1.0's
        // cutoff — still strict, still unflagged, even at the detector's
        // most aggressive legal fraction.
        let loads: Vec<(ReducerId, u64, u64)> = vec![
            (0, 1000, 1_000),
            (1, 1000, 1_000),
            (2, 1000, 1_000),
            (3, 1000, 1_000),
        ];
        assert!(
            detect_stragglers(&loads, 1.0, 4).is_empty(),
            "at fraction 1.0 every reducer equals the median — none flagged"
        );
    }

    #[test]
    fn single_reducer_never_self_compares() {
        // Whatever min_reducers says, the `max(2)` floor keeps a lone
        // reducer from being measured against its own median.
        for min in [0usize, 1, 2, 8] {
            assert!(
                detect_stragglers(&[(7, 1000, 1_000_000)], 1.0, min).is_empty(),
                "single reducer flagged at min_reducers {min}"
            );
        }
    }

    #[test]
    fn zero_processed_heartbeat_rates_degrade_gracefully() {
        // A reducer that processed nothing has rate 0 — below any
        // positive cutoff, so it IS a straggler when its peers made
        // progress…
        let loads: Vec<(ReducerId, u64, u64)> = vec![
            (0, 1000, 1_000),
            (1, 1000, 1_000),
            (2, 1000, 1_000),
            (3, 0, 1_000),
        ];
        let s = detect_stragglers(&loads, 0.25, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].key, 3);
        assert_eq!(s[0].rate, 0.0);
        // …but when *no* reducer processed anything the median is 0 and
        // the detector stays silent instead of flagging everyone (or
        // dividing by zero).
        let idle: Vec<(ReducerId, u64, u64)> = (0..4).map(|k| (k, 0, 1_000)).collect();
        assert!(detect_stragglers(&idle, 0.25, 4).is_empty());
        // Zero pairs at zero nanoseconds (a heartbeat that never ticked)
        // is the same: clamped denominator, rate 0, no NaN.
        let idle_zero_ns: Vec<(ReducerId, u64, u64)> = (0..4).map(|k| (k, 0, 0)).collect();
        assert!(detect_stragglers(&idle_zero_ns, 0.25, 4).is_empty());
    }
}
