//! The flight recorder: a bounded ring of recent telemetry events.
//!
//! While a job runs, the engine pushes phase boundaries, heartbeats,
//! spill runs and straggler verdicts here. The buffer is bounded
//! (drop-oldest), so it costs O(capacity) memory no matter how long the
//! engine lives — and when a job dies with an [`crate::EngineError`], the
//! recorder's contents are dumped as JSONL: the last N things the engine
//! did before the failure, for post-mortem forensics.

use crate::job::ReducerId;
use crate::trace::write_json_string;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One telemetry event, as the flight recorder stores it. Every variant
/// carries `t_ns`, the [`crate::telemetry::Clock`] timestamp at emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A job entered the engine.
    JobStart {
        /// Job name.
        job: String,
        /// Input records the map phase will read.
        records: u64,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
    /// A phase (map / shuffle / reduce) completed.
    PhaseEnd {
        /// Job name.
        job: String,
        /// Phase name.
        phase: &'static str,
        /// Items the phase processed (records, pairs or outputs).
        items: u64,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
    /// A worker reported liveness after N more processed values.
    Heartbeat {
        /// Job name.
        job: String,
        /// `"map"` or `"reduce"`.
        scope: &'static str,
        /// Task index (map) or reducer key (reduce).
        id: u64,
        /// Values the task has processed so far.
        processed: u64,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
    /// A spill run was written on the budgeted shuffle path.
    SpillRun {
        /// The bucket that overflowed.
        reducer: ReducerId,
        /// Approx bytes in the run.
        bytes: u64,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
    /// The straggler detector flagged a reducer.
    Straggler {
        /// Job name.
        job: String,
        /// The flagged reducer.
        reducer: ReducerId,
        /// Pairs the reducer received.
        pairs: u64,
        /// Its service time in clock nanoseconds.
        service_ns: u64,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
    /// A job completed successfully.
    JobEnd {
        /// Job name.
        job: String,
        /// Output records the job produced.
        outputs: u64,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
    /// A job failed with an [`crate::EngineError`].
    Error {
        /// Job name.
        job: String,
        /// The error's display string.
        detail: String,
        /// Clock timestamp (ns).
        t_ns: u64,
    },
}

impl TelemetryEvent {
    /// The event's kind tag as it appears in the JSONL dump.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::JobStart { .. } => "job_start",
            TelemetryEvent::PhaseEnd { .. } => "phase_end",
            TelemetryEvent::Heartbeat { .. } => "heartbeat",
            TelemetryEvent::SpillRun { .. } => "spill_run",
            TelemetryEvent::Straggler { .. } => "straggler",
            TelemetryEvent::JobEnd { .. } => "job_end",
            TelemetryEvent::Error { .. } => "error",
        }
    }

    /// Appends the event as one JSON object (no trailing newline).
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"event\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            TelemetryEvent::JobStart { job, records, t_ns } => {
                out.push_str(",\"job\":");
                write_json_string(out, job);
                let _ = write!(out, ",\"records\":{records},\"t_ns\":{t_ns}");
            }
            TelemetryEvent::PhaseEnd {
                job,
                phase,
                items,
                t_ns,
            } => {
                out.push_str(",\"job\":");
                write_json_string(out, job);
                let _ = write!(
                    out,
                    ",\"phase\":\"{phase}\",\"items\":{items},\"t_ns\":{t_ns}"
                );
            }
            TelemetryEvent::Heartbeat {
                job,
                scope,
                id,
                processed,
                t_ns,
            } => {
                out.push_str(",\"job\":");
                write_json_string(out, job);
                let _ = write!(
                    out,
                    ",\"scope\":\"{scope}\",\"id\":{id},\"processed\":{processed},\"t_ns\":{t_ns}"
                );
            }
            TelemetryEvent::SpillRun {
                reducer,
                bytes,
                t_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"reducer\":{reducer},\"bytes\":{bytes},\"t_ns\":{t_ns}"
                );
            }
            TelemetryEvent::Straggler {
                job,
                reducer,
                pairs,
                service_ns,
                t_ns,
            } => {
                out.push_str(",\"job\":");
                write_json_string(out, job);
                let _ = write!(
                    out,
                    ",\"reducer\":{reducer},\"pairs\":{pairs},\"service_ns\":{service_ns},\"t_ns\":{t_ns}"
                );
            }
            TelemetryEvent::JobEnd { job, outputs, t_ns } => {
                out.push_str(",\"job\":");
                write_json_string(out, job);
                let _ = write!(out, ",\"outputs\":{outputs},\"t_ns\":{t_ns}");
            }
            TelemetryEvent::Error { job, detail, t_ns } => {
                out.push_str(",\"job\":");
                write_json_string(out, job);
                out.push_str(",\"detail\":");
                write_json_string(out, detail);
                let _ = write!(out, ",\"t_ns\":{t_ns}");
            }
        }
        out.push('}');
    }
}

/// Bounded drop-oldest ring buffer of [`TelemetryEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    buf: Mutex<VecDeque<TelemetryEvent>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` (≥ 1) recent events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: TelemetryEvent) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        self.buf.lock().iter().cloned().collect()
    }

    /// The retained events as JSONL (one object per line, oldest first) —
    /// the dump format [`crate::EngineError`] paths write for forensics.
    pub fn jsonl(&self) -> String {
        let buf = self.buf.lock();
        let mut out = String::with_capacity(buf.len() * 96);
        for ev in buf.iter() {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(n: u64) -> TelemetryEvent {
        TelemetryEvent::Heartbeat {
            job: "j".into(),
            scope: "reduce",
            id: 0,
            processed: n,
            t_ns: n,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts_evictions() {
        let r = FlightRecorder::new(3);
        assert_eq!(r.capacity(), 3);
        for n in 0..5 {
            r.push(hb(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r
            .snapshot()
            .iter()
            .map(|e| match e {
                TelemetryEvent::Heartbeat { processed, .. } => *processed,
                _ => 0,
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::new(0);
        r.push(hb(1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn jsonl_has_one_tagged_object_per_line() {
        let r = FlightRecorder::new(8);
        r.push(TelemetryEvent::JobStart {
            job: "q\"1".into(),
            records: 10,
            t_ns: 0,
        });
        r.push(TelemetryEvent::SpillRun {
            reducer: 3,
            bytes: 512,
            t_ns: 5,
        });
        r.push(TelemetryEvent::Error {
            job: "q\"1".into(),
            detail: "boom\nline2".into(),
            t_ns: 9,
        });
        let dump = r.jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"job_start\""));
        assert!(lines[0].contains(r#""job":"q\"1""#), "{}", lines[0]);
        assert!(lines[1].contains("\"reducer\":3"));
        assert!(
            lines[2].contains(r#""detail":"boom\nline2""#),
            "{}",
            lines[2]
        );
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn every_variant_serializes_with_its_kind() {
        let events = [
            TelemetryEvent::JobStart {
                job: "j".into(),
                records: 1,
                t_ns: 0,
            },
            TelemetryEvent::PhaseEnd {
                job: "j".into(),
                phase: "map",
                items: 2,
                t_ns: 1,
            },
            hb(3),
            TelemetryEvent::SpillRun {
                reducer: 0,
                bytes: 4,
                t_ns: 2,
            },
            TelemetryEvent::Straggler {
                job: "j".into(),
                reducer: 1,
                pairs: 5,
                service_ns: 6,
                t_ns: 3,
            },
            TelemetryEvent::JobEnd {
                job: "j".into(),
                outputs: 7,
                t_ns: 4,
            },
            TelemetryEvent::Error {
                job: "j".into(),
                detail: "d".into(),
                t_ns: 5,
            },
        ];
        let r = FlightRecorder::new(events.len());
        for e in &events {
            r.push(e.clone());
        }
        let dump = r.jsonl();
        for e in &events {
            assert!(
                dump.contains(&format!("\"event\":\"{}\"", e.kind())),
                "missing {} in {dump}",
                e.kind()
            );
        }
    }
}
