//! Point-in-time telemetry snapshots and Prometheus text exposition.
//!
//! A [`TelemetrySnapshot`] is a plain, sorted value type: scalar series
//! (gauges and counters) plus named histograms. Rendering is fully
//! deterministic — `BTreeMap` iteration order plus fixed histogram bucket
//! bounds — so two equal snapshots always produce byte-identical
//! Prometheus text. The determinism *audit* compares the
//! [`TelemetrySnapshot::data_plane`] projection, which strips
//! execution-shape series (anything timing-, chunking- or spill-layout-
//! dependent) the same way [`crate::is_execution_shape`] strips counters.

use super::hist::{bucket_upper_bound, Histogram};
use crate::metrics::names;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// The series classifier lives in the `metrics::names` registry next to
// its counter sibling, so the two execution-shape sets cannot drift —
// re-exported here at its historical path.
pub use crate::metrics::names::is_execution_shape_series;

/// A point-in-time copy of everything the telemetry plane has recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Scalar series (progress gauges, heartbeat/straggler counters),
    /// keyed by dotted series name.
    pub series: BTreeMap<String, u64>,
    /// Named log2 histograms (service times, bucket sizes, run bytes).
    pub histograms: BTreeMap<String, Histogram>,
}

/// Maps a dotted series name onto a Prometheus metric name:
/// `ij_` prefix, non-alphanumeric bytes become `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("ij_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

impl TelemetrySnapshot {
    /// The snapshot restricted to data-plane series: everything
    /// execution-shape (see [`is_execution_shape_series`]) removed. Two
    /// runs of the same job must produce byte-identical
    /// [`TelemetrySnapshot::to_prometheus`] output for this projection
    /// regardless of `worker_threads` or memory budget.
    pub fn data_plane(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            series: self
                .series
                .iter()
                .filter(|(k, _)| !is_execution_shape_series(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !is_execution_shape_series(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// a `# TYPE` line per metric, `progress.*` series as gauges, other
    /// series as counters, histograms with cumulative `_bucket{le=...}`
    /// samples plus `_sum` and `_count`. Output is byte-deterministic for
    /// equal snapshots (sorted iteration, fixed bucket bounds).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(64 * (self.series.len() + self.histograms.len()));
        for (name, value) in &self.series {
            let pname = prometheus_name(name);
            let kind = if name.starts_with(names::PROGRESS_PREFIX) {
                "gauge"
            } else {
                "counter"
            };
            let _ = writeln!(out, "# TYPE {pname} {kind}");
            let _ = writeln!(out, "{pname} {value}");
        }
        for (name, hist) in &self.histograms {
            let pname = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {pname} histogram");
            let mut cumulative = 0u64;
            let top = hist.highest_bucket().map_or(0, |i| i + 1);
            for (i, count) in hist.bucket_counts().iter().enumerate().take(top) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{pname}_sum {}", hist.sum());
            let _ = writeln!(out, "{pname}_count {}", hist.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        s.series.insert("progress.jobs_started".into(), 2);
        s.series.insert("telemetry.heartbeats.reduce".into(), 5);
        s.series.insert("telemetry.stragglers".into(), 1);
        s.series.insert("telemetry.heartbeats.map".into(), 3);
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 900] {
            h.record(v);
        }
        s.histograms.insert("reduce.bucket_pairs".into(), h);
        s.histograms.insert("reduce.service_ns".into(), {
            let mut h = Histogram::new();
            h.record(42);
            h
        });
        s
    }

    #[test]
    fn execution_shape_series_classification() {
        for name in [
            "spill.run_bytes",
            "map.task_records",
            "reduce.service_ns",
            "telemetry.stragglers",
            "telemetry.heartbeats.map",
            "progress.map_tasks",
            "kernel.active_peak",
        ] {
            assert!(is_execution_shape_series(name), "{name}");
        }
        for name in [
            "progress.jobs_started",
            "progress.reduce_values",
            "telemetry.heartbeats.reduce",
            "reduce.bucket_pairs",
            "shuffle.job_bytes",
        ] {
            assert!(!is_execution_shape_series(name), "{name}");
        }
    }

    #[test]
    fn data_plane_strips_execution_shape() {
        let d = snap().data_plane();
        assert!(d.series.contains_key("progress.jobs_started"));
        assert!(d.series.contains_key("telemetry.heartbeats.reduce"));
        assert!(!d.series.contains_key("telemetry.stragglers"));
        assert!(!d.series.contains_key("telemetry.heartbeats.map"));
        assert!(d.histograms.contains_key("reduce.bucket_pairs"));
        assert!(!d.histograms.contains_key("reduce.service_ns"));
    }

    #[test]
    fn prometheus_output_has_types_and_cumulative_buckets() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE ij_progress_jobs_started gauge"));
        assert!(text.contains("ij_progress_jobs_started 2"));
        assert!(text.contains("# TYPE ij_telemetry_stragglers counter"));
        assert!(text.contains("# TYPE ij_reduce_bucket_pairs histogram"));
        // Samples 1,2,2,900: bucket le="1" -> 1, le="3" -> 3, ..., le="1023" -> 4.
        assert!(
            text.contains("ij_reduce_bucket_pairs_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ij_reduce_bucket_pairs_bucket{le=\"3\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("ij_reduce_bucket_pairs_bucket{le=\"1023\"} 4"),
            "{text}"
        );
        assert!(text.contains("ij_reduce_bucket_pairs_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("ij_reduce_bucket_pairs_sum 905"));
        assert!(text.contains("ij_reduce_bucket_pairs_count 4"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("ij_reduce_bucket_pairs_bucket{le=\"") {
                if rest.starts_with('+') {
                    continue;
                }
                let v: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(v >= last, "{line}");
                last = v;
            }
        }
    }

    #[test]
    fn empty_histogram_renders_zero_samples() {
        let mut s = TelemetrySnapshot::default();
        s.histograms
            .insert("spill.run_bytes".into(), Histogram::new());
        let text = s.to_prometheus();
        assert!(text.contains("ij_spill_run_bytes_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("ij_spill_run_bytes_sum 0"));
        assert!(text.contains("ij_spill_run_bytes_count 0"));
    }

    #[test]
    fn rendering_is_byte_deterministic() {
        assert_eq!(snap().to_prometheus(), snap().to_prometheus());
        assert_eq!(
            snap().data_plane().to_prometheus(),
            snap().data_plane().to_prometheus()
        );
    }

    #[test]
    fn names_are_sanitized() {
        let mut s = TelemetrySnapshot::default();
        s.series.insert("a.b-c/d".into(), 1);
        assert!(s.to_prometheus().contains("ij_a_b_c_d 1"));
    }
}
