//! Structured tracing: timestamped span events for every level of a job.
//!
//! The paper's evaluation is an argument about *where* time and
//! communication go — which cycle, which phase, which reducer. A
//! [`Tracer`] attached to an [`crate::Engine`] (via
//! [`crate::Engine::with_tracer`]) records one span per:
//!
//! * **job** — each `run_job` call (one MR cycle of an algorithm);
//! * **phase** — map / shuffle / reduce inside a job;
//! * **task** — each map worker's chunk and each reduce worker's stint;
//! * **reduce** — each logical reducer invocation, tagged with its key,
//!   pairs received and output count (the per-reducer skew, span by span).
//!
//! Recording is lock-cheap: worker threads batch their events into a local
//! `Vec` and append it to the shared buffer **once per worker per phase**.
//! Event *order* is deterministic — map-task events land in chunk order,
//! reduce invocations in bucket (key) order, phase and job spans after
//! their children — regardless of `worker_threads`; only the timestamps
//! themselves are wall-clock. With no tracer attached the engine skips all
//! of this (a per-phase `Option` check; nothing per record).
//!
//! Two exporters:
//!
//! * [`Tracer::chrome_trace`] — the Chrome trace-event JSON format; load
//!   the file in `chrome://tracing` or <https://ui.perfetto.dev> to see the
//!   phase waterfall with per-worker lanes.
//! * [`Tracer::jsonl`] — one JSON object per line, for `grep`/`jq`
//!   pipelines over large traces.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Instant;

/// What level of the job hierarchy a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One `run_job` call (one MR cycle).
    Job,
    /// A phase within a job: map, shuffle or reduce.
    Phase,
    /// One worker's stint within a phase (a map chunk, a reduce worker).
    Task,
    /// One logical reducer invocation.
    Reduce,
    /// One spill-run write on the budgeted reduce path (see
    /// [`crate::spill`]).
    Spill,
}

impl SpanKind {
    /// The Chrome trace `cat` string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Phase => "phase",
            SpanKind::Task => "task",
            SpanKind::Reduce => "reduce",
            SpanKind::Spill => "spill",
        }
    }
}

/// One completed span: a named interval on a worker lane with numeric args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (job name, phase name, `"map-task"`, `"reduce"`, …).
    pub name: String,
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Lane: worker index for tasks/reduces, 0 for job/phase spans.
    pub lane: u64,
    /// Start offset in microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Numeric annotations (record counts, pair counts, reducer key, …).
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// A span from explicit start/end offsets (end clamped to start).
    pub fn span(
        kind: SpanKind,
        name: impl Into<String>,
        lane: u64,
        start_us: u64,
        end_us: u64,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            kind,
            lane,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            args: Vec::new(),
        }
    }

    /// Adds one numeric annotation (builder-style).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        self.args.push((key, value));
        self
    }
}

/// Collects [`TraceEvent`]s from all workers of all jobs run against one
/// engine. Cheap to share (`Arc<Tracer>`); see the module docs for the
/// locking and determinism story.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; its epoch (timestamp zero) is the moment of creation.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the tracer's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one event (one lock acquisition).
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Appends a worker's batched events (one lock acquisition per batch —
    /// the per-worker-per-phase path).
    pub fn record_batch(&self, batch: Vec<TraceEvent>) {
        if !batch.is_empty() {
            self.events.lock().extend(batch);
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the events recorded so far, in recording order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Renders the Chrome trace-event JSON (`{"traceEvents": [...]}`) —
    /// open in `chrome://tracing` or Perfetto. All spans are complete
    /// (`"ph": "X"`) events on `pid` 0 with the worker index as `tid`.
    pub fn chrome_trace(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 96 + 32);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            write_event_json(&mut out, ev);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders one JSON object per line (same fields as the Chrome trace).
    pub fn jsonl(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 96);
        for ev in events.iter() {
            write_event_json(&mut out, ev);
            out.push('\n');
        }
        out
    }

    /// Writes [`Tracer::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }

    /// Writes [`Tracer::jsonl`] to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.jsonl())
    }
}

/// One event as a Chrome trace-format JSON object (no trailing newline).
fn write_event_json(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":");
    write_json_string(out, &ev.name);
    let _ = write!(
        out,
        ",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}",
        ev.kind.as_str(),
        ev.start_us,
        ev.dur_us,
        ev.lane
    );
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push('}');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
/// Shared with the telemetry flight recorder's JSONL dump.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_clamp_and_annotate() {
        let ev = TraceEvent::span(SpanKind::Task, "map-task", 2, 100, 50).arg("records", 7);
        assert_eq!(ev.dur_us, 0, "end before start clamps to zero");
        assert_eq!(ev.args, vec![("records", 7)]);
        let ev = TraceEvent::span(SpanKind::Job, "j", 0, 100, 350);
        assert_eq!(ev.dur_us, 250);
    }

    #[test]
    fn records_in_order_and_batches() {
        let t = Tracer::new();
        t.record(TraceEvent::span(SpanKind::Job, "a", 0, 0, 1));
        t.record_batch(vec![
            TraceEvent::span(SpanKind::Task, "b", 1, 0, 1),
            TraceEvent::span(SpanKind::Task, "c", 2, 0, 1),
        ]);
        t.record_batch(Vec::new());
        let names: Vec<_> = t.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::new();
        t.record(
            TraceEvent::span(SpanKind::Phase, "map", 0, 10, 40)
                .arg("records", 3)
                .arg("pairs", 9),
        );
        let json = t.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(
            json.contains(
                "{\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":10,\"dur\":30,\"pid\":0,\"tid\":0,\"args\":{\"records\":3,\"pairs\":9}}"
            ),
            "{json}"
        );
        assert!(json.trim_end().ends_with("]}"), "{json}");
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let t = Tracer::new();
        t.record(TraceEvent::span(SpanKind::Job, "j1", 0, 0, 5));
        t.record(TraceEvent::span(SpanKind::Job, "j2", 0, 5, 9));
        let lines: Vec<_> = t.jsonl().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn names_are_escaped() {
        let t = Tracer::new();
        t.record(TraceEvent::span(SpanKind::Job, "a\"b\\c\nd", 0, 0, 1));
        let json = t.chrome_trace();
        assert!(json.contains(r#""a\"b\\c\nd""#), "{json}");
    }

    #[test]
    fn now_us_is_monotonic_from_epoch() {
        let t = Tracer::new();
        let a = t.now_us();
        let b = t.now_us();
        assert!(b >= a);
    }
}
