//! Property tests for the user-counter facility.
//!
//! The engine merges per-worker counter maps with a per-name sum. These
//! properties pin what that buys: the merge is associative and commutative
//! (any merge tree gives the same totals), and a job's merged counters are
//! identical for every `worker_threads` count — the Hadoop counter
//! contract the algorithms' replica/candidate statistics rely on.

use ij_mapreduce::{ClusterConfig, CostModel, Counters, Emitter, Engine, ReduceCtx, ValueStream};
use proptest::prelude::*;

/// A small name pool keeps collisions frequent, which is where merge bugs
/// would hide.
fn entries_strategy() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..6, 0u64..1_000), 0..40)
}

fn counters_from(entries: &[(u8, u64)]) -> Counters {
    let mut c = Counters::new();
    for (name, delta) in entries {
        c.inc(&format!("c{name}"), *delta);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in entries_strategy(),
        b in entries_strategy(),
        c in entries_strategy(),
    ) {
        let (a, b, c) = (counters_from(&a), counters_from(&b), counters_from(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Identity: merging an empty map changes nothing.
        let mut id = a.clone();
        id.merge(&Counters::new());
        prop_assert_eq!(&id, &a);
    }

    #[test]
    fn job_counters_identical_across_worker_threads(
        input in proptest::collection::vec(0u64..5_000, 0..300),
        fanout in 1u64..4,
    ) {
        // Mappers and reducers both increment counters whose names and
        // deltas depend on the record, so different chunkings produce
        // different per-worker partial maps — the merged totals must not
        // care.
        let run = |threads: usize| {
            Engine::new(ClusterConfig {
                reducer_slots: 4,
                worker_threads: threads,
                cost: CostModel::default(),
    ..ClusterConfig::default()
            })
            .run_job(
                "prop-counters",
                &input,
                move |&n: &u64, e: &mut Emitter<u64>| {
                    e.inc(if n % 2 == 0 { "even" } else { "odd" }, 1 + n % 3);
                    for i in 0..1 + n % fanout {
                        e.emit((n + i) % 13, n);
                    }
                },
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| {
                    ctx.inc("groups", 1);
                    ctx.inc(&format!("bucket{}", ctx.key % 3), vs.len() as u64);
                    out.push(vs.len() as u64);
                },
            )
            .unwrap()
            .metrics
            .counters
            .clone()
        };
        let base = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(&run(threads), &base, "threads = {}", threads);
        }
    }
}
