//! Fault × spill interplay: a `FaultPlan`-injected retry on a *spilled*
//! bucket must re-read its Dfs runs and produce byte-identical output vs
//! the no-fault run, across budgets {64, 256, ∞} × threads {1, 2, 8}.
//!
//! The engine's retry contract says a spilled bucket's per-attempt
//! "clone" is just its run paths — every attempt streams the runs back
//! from the spill store. These properties pin that the re-read really is
//! lossless and order-preserving, and (the satellite fix verification)
//! that a spilled bucket's `pairs_received` reports the *full logical
//! length* of the bucket, not the in-memory tail left after spilling —
//! the quantity the skew-driven scheduler scores buckets by.

use ij_mapreduce::metrics::names;
use ij_mapreduce::{
    is_execution_shape, ClusterConfig, CostModel, Counters, Emitter, Engine, FaultPlan, JobOutput,
    ReduceCtx, ValueStream,
};
use proptest::prelude::*;

/// The budget sweep: tiny (many runs per spilled bucket), small (few
/// runs) and unlimited (the in-memory control).
const BUDGETS: [Option<u64>; 3] = [Some(64), Some(256), None];

const JOB: &str = "fault-spill";

/// The reducer key every input value is routed to (besides its fan-out
/// key), so its bucket is guaranteed to overflow any finite budget here.
const HOT_KEY: u64 = 0;

fn engine(threads: usize, budget: Option<u64>, faults: Option<FaultPlan>) -> Engine {
    let eng = Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: threads,
        intra_reduce_threads: threads,
        reduce_memory_budget: budget,
        cost: CostModel::default(),
        ..ClusterConfig::default()
    });
    match faults {
        Some(plan) => eng.with_faults(plan),
        None => eng,
    }
}

/// Every value lands in the hot bucket (which spills under any finite
/// budget here) plus one fan-out bucket; the reducer echoes its stream in
/// order, so loss, duplication or reordering through the re-read runs is
/// visible in the output bytes.
fn run(
    input: &[u64],
    threads: usize,
    budget: Option<u64>,
    faults: Option<FaultPlan>,
) -> JobOutput<(u64, u64)> {
    engine(threads, budget, faults)
        .run_job(
            JOB,
            input,
            |&n: &u64, e: &mut Emitter<u64>| {
                e.emit(HOT_KEY, n);
                e.emit(1 + n % 12, n);
            },
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                ctx.inc("groups", 1);
                for v in vs.by_ref() {
                    out.push((ctx.key, v));
                }
            },
        )
        .expect("job survives injected faults within max_attempts")
}

fn data_plane(counters: &Counters) -> Vec<(String, u64)> {
    counters
        .iter()
        .filter(|(k, _)| !is_execution_shape(k))
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two injected failures on the hot (spilled) bucket: attempts 1 and 2
    /// die, attempt 3 must re-read the runs and reproduce the no-fault
    /// run byte-for-byte — outputs, data-plane counters and per-reducer
    /// pair counts — under every budget × thread combination.
    #[test]
    fn retry_on_spilled_bucket_rereads_runs_byte_identically(
        input in proptest::collection::vec(0u64..5_000, 48..160),
        fails in 1u32..3,
    ) {
        let base = run(&input, 1, None, None);
        for budget in BUDGETS {
            for threads in [1usize, 2, 8] {
                let plan = FaultPlan::new().fail(JOB, HOT_KEY, fails);
                let out = run(&input, threads, budget, Some(plan));
                if budget.is_some() {
                    prop_assert!(
                        out.metrics.counters.get(names::SPILL_BUCKETS) > 0,
                        "budget {:?} never spilled — the retry path under test \
                         was not exercised", budget
                    );
                }
                prop_assert_eq!(
                    &out.outputs, &base.outputs,
                    "budget {:?}, threads {}, fails {}", budget, threads, fails
                );
                prop_assert_eq!(
                    data_plane(&out.metrics.counters),
                    data_plane(&base.metrics.counters),
                    "budget {:?}, threads {}", budget, threads
                );
                let hot = out
                    .metrics
                    .reducer_loads
                    .iter()
                    .find(|l| l.key == HOT_KEY)
                    .expect("hot bucket present");
                prop_assert_eq!(
                    hot.attempts, fails + 1,
                    "injected failures must cost exactly one attempt each"
                );
                // Loads besides the attempt counter are fault-invariant.
                let base_hot = base
                    .metrics
                    .reducer_loads
                    .iter()
                    .find(|l| l.key == HOT_KEY)
                    .expect("hot bucket present in baseline");
                prop_assert_eq!(hot.pairs_received, base_hot.pairs_received);
                prop_assert_eq!(hot.output, base_hot.output);
            }
        }
    }

    /// `pairs_received` — the scheduler's load signal — is taken from
    /// `source.len()` before the bucket is consumed. For a spilled bucket
    /// that must be the full logical length (every value the budgeted
    /// merge routed there), never the in-memory tail left after the runs
    /// were cut, and therefore identical across all budgets.
    #[test]
    fn spilled_buckets_report_full_logical_length(
        input in proptest::collection::vec(0u64..5_000, 48..160),
    ) {
        let base = run(&input, 1, None, None);
        for budget in [Some(64), Some(256)] {
            let out = run(&input, 1, budget, None);
            prop_assert!(out.metrics.counters.get(names::SPILL_BUCKETS) > 0);
            prop_assert_eq!(
                &out.metrics.reducer_loads, &base.metrics.reducer_loads,
                "budget {:?} skewed a reducer's pairs_received", budget
            );
        }
        // The hot bucket's reported length equals what was actually
        // routed to it: one pair per input value.
        let hot = base
            .metrics
            .reducer_loads
            .iter()
            .find(|l| l.key == HOT_KEY)
            .expect("hot bucket present");
        prop_assert_eq!(hot.pairs_received, input.len() as u64);
    }
}
