//! Scheduler equivalence: a Dfs snapshot of a job's outputs plus its
//! data-plane counters must be byte-identical across intra-reduce grant
//! policies (uniform vs skew-driven vs all-serial) — the scheduler may
//! only change *when* work runs, never *what* is emitted.
//!
//! The workloads mimic the join layer's bucket mixes: a chain-style mix
//! (many similar-sized buckets) and a clique-style mix (one dominant hot
//! bucket plus a light tail — the skewed regime the scheduler exists
//! for). Each is swept across policies × threads {1, 2, 8} × budgets
//! {∞, 64}, every combination byte-diffed against the skew-driven
//! single-thread unbudgeted baseline through a fresh [`Dfs`] — the same
//! discipline as `repolint audit`.

use ij_mapreduce::metrics::names;
use ij_mapreduce::{
    is_execution_shape, ClusterConfig, CostModel, Dfs, Emitter, Engine, JobOutput, ReduceCtx,
    SchedConfig, SchedPolicy, ValueStream,
};
use proptest::prelude::*;

const POLICIES: [SchedPolicy; 3] = [
    SchedPolicy::SkewDriven,
    SchedPolicy::Uniform,
    SchedPolicy::AllSerial,
];

/// Low heavy cutoff so the skew-driven policy actually classifies the
/// hot bucket heavy (and hands it a multi-thread grant) at test scale.
const HEAVY_THRESHOLD: usize = 32;

fn engine(threads: usize, budget: Option<u64>, policy: SchedPolicy) -> Engine {
    Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: threads,
        intra_reduce_threads: threads,
        heavy_bucket_threshold: HEAVY_THRESHOLD,
        reduce_memory_budget: budget,
        sched: SchedConfig::with_policy(policy),
        cost: CostModel::default(),
    })
}

/// `hot_share` of 8 routes each value to the hot bucket (key 0); the
/// rest fan out over 16 light keys. `hot_share = 1` approximates a
/// chain's balanced mix, `hot_share = 6` a clique's skewed one.
fn run(
    input: &[u64],
    hot_share: u64,
    threads: usize,
    budget: Option<u64>,
    policy: SchedPolicy,
) -> JobOutput<(u64, u64)> {
    engine(threads, budget, policy)
        .run_job(
            "sched-prop",
            input,
            move |&n: &u64, e: &mut Emitter<u64>| {
                if n % 8 < hot_share {
                    e.emit(0, n);
                } else {
                    e.emit(1 + n % 16, n);
                }
            },
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                ctx.inc("groups", 1);
                let mut acc = 0u64;
                for v in vs.by_ref() {
                    acc = acc.wrapping_mul(31).wrapping_add(v);
                    out.push((ctx.key, acc));
                }
            },
        )
        .expect("job runs")
}

/// One run's byte snapshot through the Dfs: outputs in emission order
/// plus every non-execution-shape counter (the `sched.*` family is
/// execution-shape — grants legitimately differ across policies — so it
/// must NOT appear here).
fn snapshot(out: &JobOutput<(u64, u64)>) -> Vec<u8> {
    let mut lines: Vec<String> = out.outputs.iter().map(|t| format!("{t:?}")).collect();
    for (k, v) in out.metrics.counters.iter() {
        if !is_execution_shape(k) {
            lines.push(format!("counter {k}={v}"));
        }
    }
    for l in &out.metrics.reducer_loads {
        lines.push(format!(
            "load key={} pairs={} out={}",
            l.key, l.pairs_received, l.output
        ));
    }
    let dfs = Dfs::new();
    dfs.write("sched/snapshot", lines).expect("dfs write");
    dfs.read::<String>("sched/snapshot")
        .expect("dfs read")
        .join("\n")
        .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full matrix: chain-like and clique-like mixes, every policy,
    /// threads 1/2/8, budgets ∞/64 — all byte-identical.
    #[test]
    fn grant_policies_never_change_output_bytes(
        input in proptest::collection::vec(0u64..10_000, 40..240),
        hot_share in 1u64..7,
    ) {
        let base = snapshot(&run(&input, hot_share, 1, None, SchedPolicy::SkewDriven));
        for policy in POLICIES {
            for threads in [1usize, 2, 8] {
                for budget in [None, Some(64)] {
                    let out = run(&input, hot_share, threads, budget, policy);
                    prop_assert_eq!(
                        snapshot(&out),
                        base.clone(),
                        "policy {}, threads {}, budget {:?} diverged",
                        policy, threads, budget
                    );
                }
            }
        }
    }

    /// On the skewed mix the skew-driven policy must actually deviate
    /// from serial execution: with 8 workers the hot bucket is heavy, so
    /// the summed grants exceed the bucket count (some bucket ran
    /// multi-threaded) and the heavy classification is recorded — while
    /// all-serial stays at one thread per bucket by construction.
    #[test]
    fn skew_policy_grants_exceed_serial_on_skewed_mix(
        input in proptest::collection::vec(0u64..10_000, 120..240),
    ) {
        let skew = run(&input, 6, 8, None, SchedPolicy::SkewDriven);
        let buckets = skew.metrics.distinct_reducers;
        prop_assert!(
            skew.metrics.counters.get(names::SCHED_HEAVY_BUCKETS) > 0,
            "hot bucket never classified heavy"
        );
        prop_assert!(
            skew.metrics.counters.get(names::SCHED_GRANTS) > buckets,
            "summed grants {} never exceeded the {} buckets — no \
             multi-thread grant landed",
            skew.metrics.counters.get(names::SCHED_GRANTS),
            buckets
        );
        let serial = run(&input, 6, 8, None, SchedPolicy::AllSerial);
        prop_assert_eq!(
            serial.metrics.counters.get(names::SCHED_GRANTS),
            buckets,
            "all-serial must grant exactly one thread per bucket"
        );
    }
}
