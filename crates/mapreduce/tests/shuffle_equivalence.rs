//! Property tests for the partitioned shuffle.
//!
//! The engine merges per-worker key-sorted runs instead of globally sorting
//! the full intermediate-pair vector. These properties pin the equivalence:
//! over arbitrary emit patterns and arbitrary chunkings, the k-way merge
//! must produce byte-identical buckets to the reference stable-sort-and-
//! group shuffle, and `run_job` must return identical output regardless of
//! `worker_threads`.

use ij_mapreduce::{
    merge_sorted_runs, ClusterConfig, CostModel, Emitter, Engine, ReduceCtx, ReducerId, ValueStream,
};
use proptest::prelude::*;

/// Reference shuffle: stable global sort of all pairs, then group by key.
fn reference_shuffle(pairs: Vec<(ReducerId, u32)>) -> Vec<(ReducerId, Vec<u32>)> {
    let mut sorted = pairs;
    sorted.sort_by_key(|(k, _)| *k);
    let mut buckets: Vec<(ReducerId, Vec<u32>)> = Vec::new();
    for (k, v) in sorted {
        match buckets.last_mut() {
            Some((last, vals)) if *last == k => vals.push(v),
            _ => buckets.push((k, vec![v])),
        }
    }
    buckets
}

/// Splits `pairs` at the given fractions and locally stable-sorts each chunk,
/// imitating what an arbitrary assignment of records to map workers produces.
fn chunked_runs(pairs: &[(ReducerId, u32)], cut_points: &[usize]) -> Vec<Vec<(ReducerId, u32)>> {
    let mut cuts: Vec<usize> = cut_points.iter().map(|c| c % (pairs.len() + 1)).collect();
    cuts.push(0);
    cuts.push(pairs.len());
    cuts.sort_unstable();
    cuts.windows(2)
        .map(|w| {
            let mut run = pairs[w[0]..w[1]].to_vec();
            run.sort_by_key(|(k, _)| *k);
            run
        })
        .collect()
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(ReducerId, u32)>> {
    // Values are unique-ish tags so equal-key order mix-ups are detected.
    proptest::collection::vec((0u64..24, 0u32..1_000_000), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn merge_of_sorted_runs_equals_reference_shuffle(
        pairs in pairs_strategy(),
        cuts in proptest::collection::vec(0usize..10_000, 0..8),
    ) {
        let runs = chunked_runs(&pairs, &cuts);
        let (buckets, stats) = merge_sorted_runs(runs);
        prop_assert_eq!(&buckets, &reference_shuffle(pairs.clone()));
        prop_assert_eq!(stats.pairs, pairs.len() as u64);
        // 4-byte value + 8-byte key per pair.
        prop_assert_eq!(stats.bytes, pairs.len() as u64 * 12);
    }

    #[test]
    fn run_job_is_identical_across_worker_threads(
        input in proptest::collection::vec(0u64..5_000, 0..400),
        fanout in 1u64..4,
    ) {
        let run = |threads: usize| {
            Engine::new(ClusterConfig {
                reducer_slots: 4,
                worker_threads: threads,
                cost: CostModel::default(),
    ..ClusterConfig::default()
            })
            .run_job(
                "prop-det",
                &input,
                move |&n: &u64, e: &mut Emitter<u64>| {
                    for i in 0..1 + n % fanout {
                        e.emit((n + i) % 13, n * 10 + i);
                    }
                },
                |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                    for v in vs.by_ref() {
                        out.push((ctx.key, v));
                    }
                },
            )
            .unwrap()
        };
        let base = run(1);
        for threads in [2usize, 8] {
            let out = run(threads);
            prop_assert_eq!(&out.outputs, &base.outputs, "threads = {}", threads);
            // Volume metrics are thread-count independent too.
            prop_assert_eq!(out.metrics.intermediate_pairs, base.metrics.intermediate_pairs);
            prop_assert_eq!(out.metrics.shuffle_bytes, base.metrics.shuffle_bytes);
            prop_assert_eq!(&out.metrics.reducer_loads, &base.metrics.reducer_loads);
        }
    }
}
