//! Property tests for the memory-budgeted (spilling) reduce path.
//!
//! The engine promises that `reduce_memory_budget` is *invisible* to the
//! data plane: for any budget and any `worker_threads` count, a job's
//! outputs, reducer loads and data-plane counters are byte-identical to
//! the unlimited in-memory run. Spilling may only change execution-shape
//! observables (`spill.*` counters, `spill_wall`). These properties pin
//! that equivalence over arbitrary emit patterns.

use ij_mapreduce::{
    is_execution_shape, ClusterConfig, CostModel, Counters, Emitter, Engine, JobOutput, ReduceCtx,
    ValueStream,
};
use proptest::prelude::*;

/// Budgets the property sweeps: unlimited (pure in-memory), tiny (every
/// non-trivial bucket spills, many runs) and mid (only heavy buckets
/// spill).
const BUDGETS: [Option<u64>; 3] = [None, Some(64), Some(1024)];

fn engine(threads: usize, budget: Option<u64>) -> Engine {
    Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: threads,
        intra_reduce_threads: threads,
        reduce_memory_budget: budget,
        cost: CostModel::default(),
        ..ClusterConfig::default()
    })
}

/// Runs the shared fan-out job: each input value emits `1 + n % fanout`
/// pairs across 13 reducer keys, and the reducer echoes its stream in
/// order (so any reordering or loss through the spill files is visible).
fn run(input: &[u64], fanout: u64, threads: usize, budget: Option<u64>) -> JobOutput<(u64, u64)> {
    engine(threads, budget)
        .run_job(
            "spill-prop",
            input,
            move |&n: &u64, e: &mut Emitter<u64>| {
                for i in 0..1 + n % fanout {
                    e.emit((n + i) % 13, n * 10 + i);
                }
            },
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                ctx.inc("groups", 1);
                for v in vs.by_ref() {
                    out.push((ctx.key, v));
                }
            },
        )
        .expect("job runs")
}

/// The data-plane slice of a counter set: everything except
/// execution-shape names (`spill.*`, `kernel.parallel_buckets`).
fn data_plane(counters: &Counters) -> Vec<(String, u64)> {
    counters
        .iter()
        .filter(|(k, _)| !is_execution_shape(k))
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spilled_runs_match_in_memory_runs_exactly(
        input in proptest::collection::vec(0u64..5_000, 0..400),
        fanout in 1u64..4,
    ) {
        let base = run(&input, fanout, 1, None);
        prop_assert_eq!(base.metrics.counters.get("spill.buckets"), 0);
        for budget in BUDGETS {
            for threads in [1usize, 2, 8] {
                let out = run(&input, fanout, threads, budget);
                prop_assert_eq!(
                    &out.outputs, &base.outputs,
                    "budget {:?}, threads {}", budget, threads
                );
                prop_assert_eq!(
                    &out.metrics.reducer_loads, &base.metrics.reducer_loads,
                    "budget {:?}, threads {}", budget, threads
                );
                prop_assert_eq!(
                    data_plane(&out.metrics.counters),
                    data_plane(&base.metrics.counters),
                    "budget {:?}, threads {}", budget, threads
                );
                prop_assert_eq!(out.metrics.intermediate_pairs, base.metrics.intermediate_pairs);
                prop_assert_eq!(out.metrics.shuffle_bytes, base.metrics.shuffle_bytes);
            }
        }
    }

    #[test]
    fn spill_shape_is_thread_count_independent(
        input in proptest::collection::vec(0u64..5_000, 0..400),
        fanout in 1u64..4,
    ) {
        // With a fixed budget, even the spill layout (bucket/run/byte
        // counts) must not depend on worker_threads: the merged shuffle
        // stream the spiller consumes is itself deterministic.
        let budget = Some(64);
        let base = run(&input, fanout, 1, budget);
        let base_spill: Vec<(String, u64)> = base
            .metrics
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("spill."))
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        for threads in [2usize, 8] {
            let out = run(&input, fanout, threads, budget);
            let spill: Vec<(String, u64)> = out
                .metrics
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("spill."))
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            prop_assert_eq!(&spill, &base_spill, "threads {}", threads);
        }
    }
}
