//! Property tests for the live-telemetry plane (DESIGN.md §13).
//!
//! The telemetry subsystem promises its *data-plane* snapshot — progress
//! gauges, reduce heartbeats, the `reduce.bucket_pairs` and
//! `shuffle.job_bytes` histograms — is byte-identical in Prometheus text
//! form across `worker_threads` counts and reduce-memory budgets, exactly
//! like job outputs. Execution-shape series (map heartbeats, stragglers,
//! `spill.*`, `*_ns` timings) are excluded by `data_plane()`. These tests
//! pin that contract, plus the flight recorder's crash-dump path.

use ij_mapreduce::{
    ClusterConfig, CostModel, Emitter, Engine, EngineError, FaultPlan, JobOutput, ReduceCtx,
    Telemetry, TelemetryConfig, ValueStream, VirtualClock,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A telemetry plane with a virtual clock (timestamps carry no entropy)
/// and a tiny heartbeat quantum so reduce heartbeats fire at test scale.
fn telemetry() -> Arc<Telemetry> {
    Arc::new(Telemetry::with_clock(
        TelemetryConfig {
            heartbeat_every: 8,
            ..TelemetryConfig::default()
        },
        Arc::new(VirtualClock::new()),
    ))
}

fn engine(threads: usize, budget: Option<u64>) -> Engine {
    Engine::new(ClusterConfig {
        reducer_slots: 4,
        worker_threads: threads,
        intra_reduce_threads: threads,
        reduce_memory_budget: budget,
        cost: CostModel::default(),
        ..ClusterConfig::default()
    })
}

/// Runs the shared fan-out job against an instrumented engine and
/// returns the output plus the attached telemetry plane.
fn run(
    input: &[u64],
    fanout: u64,
    threads: usize,
    budget: Option<u64>,
) -> (JobOutput<(u64, u64)>, Arc<Telemetry>) {
    let tel = telemetry();
    let out = engine(threads, budget)
        .with_telemetry(Arc::clone(&tel))
        .run_job(
            "telemetry-prop",
            input,
            move |&n: &u64, e: &mut Emitter<u64>| {
                for i in 0..1 + n % fanout {
                    e.emit((n + i) % 13, n * 10 + i);
                }
            },
            |ctx: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<(u64, u64)>| {
                for v in vs.by_ref() {
                    out.push((ctx.key, v));
                }
            },
        )
        .expect("job runs");
    (out, tel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn data_plane_prometheus_text_is_thread_and_budget_invariant(
        input in proptest::collection::vec(0u64..5_000, 0..300),
        fanout in 1u64..4,
    ) {
        let (base_out, base_tel) = run(&input, fanout, 1, None);
        let base = base_tel.snapshot().data_plane().to_prometheus();
        for budget in [None, Some(256)] {
            for threads in [1usize, 2, 8] {
                let (out, tel) = run(&input, fanout, threads, budget);
                prop_assert_eq!(&out.outputs, &base_out.outputs);
                let text = tel.snapshot().data_plane().to_prometheus();
                prop_assert_eq!(
                    &text, &base,
                    "telemetry data plane diverged at budget {:?}, threads {}",
                    budget, threads
                );
            }
        }
    }
}

#[test]
fn snapshot_tracks_progress_and_heartbeats() {
    let input: Vec<u64> = (0..200).collect();
    let (out, tel) = run(&input, 3, 4, None);
    let snap = tel.snapshot();
    assert_eq!(snap.series["progress.jobs_started"], 1);
    assert_eq!(snap.series["progress.jobs_finished"], 1);
    assert_eq!(snap.series["progress.map_records"], 200);
    assert_eq!(
        snap.series["progress.reducers"],
        snap.series["progress.reducers_done"]
    );
    assert_eq!(
        snap.series["progress.reduce_values"],
        out.metrics.intermediate_pairs
    );
    assert!(snap.series["telemetry.heartbeats.reduce"] > 0);
    let pairs = snap.histograms.get("reduce.bucket_pairs").expect("hist");
    assert_eq!(pairs.sum(), out.metrics.intermediate_pairs);
    assert!(snap.histograms.contains_key("reduce.service_ns"));
}

#[test]
fn failed_job_dumps_flight_recorder_jsonl() {
    let tel = telemetry();
    let result = engine(2, None)
        .with_telemetry(Arc::clone(&tel))
        .with_faults(FaultPlan::new().fail("doomed", 0, 10).with_max_attempts(2))
        .run_job(
            "doomed",
            &(0..64u64).collect::<Vec<_>>(),
            |&n: &u64, e: &mut Emitter<u64>| e.emit(n % 4, n),
            |_: &mut ReduceCtx, vs: &mut ValueStream<u64>, out: &mut Vec<u64>| out.extend(vs),
        );
    assert!(
        matches!(result, Err(EngineError::MaxAttemptsExceeded { .. })),
        "{result:?}"
    );
    let dump = tel
        .last_flight_dump()
        .expect("error path freezes a flight-recorder dump");
    assert!(!dump.is_empty());
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "flight dump is JSONL, got {line:?}"
        );
    }
    assert!(
        dump.lines().any(|l| l.contains("\"event\":\"error\"")),
        "{dump}"
    );
    assert!(dump.contains("doomed"), "{dump}");
    assert!(
        dump.lines().any(|l| l.contains("\"event\":\"job_start\"")),
        "the events leading up to the failure are retained: {dump}"
    );
}

#[test]
fn flight_dump_is_not_frozen_on_success() {
    let input: Vec<u64> = (0..32).collect();
    let (_, tel) = run(&input, 2, 2, None);
    assert!(tel.last_flight_dump().is_none());
    assert!(!tel.flight().is_empty(), "events still recorded live");
}
