//! Query classification into the paper's four classes (Section 1).

use crate::query::JoinQuery;
use serde::{Deserialize, Serialize};

/// The paper's four interval-join query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Single interval attribute, only colocation predicates — handled by
    /// RCCIS (Section 6).
    Colocation,
    /// Single interval attribute, only sequence predicates — handled by
    /// All-Matrix (Section 7).
    Sequence,
    /// Single interval attribute, both predicate classes — handled by
    /// All-Seq-Matrix / PASM (Section 8).
    Hybrid,
    /// One or more interval attributes (possibly real-valued) — handled by
    /// Gen-Matrix (Section 9).
    General,
}

impl QueryClass {
    /// Classifies a query.
    ///
    /// A query is "single interval attribute" when every relation
    /// contributes exactly its attribute 0 to the join and declares no
    /// further attributes in the query metadata.
    pub fn of(q: &JoinQuery) -> QueryClass {
        let single_attr = q
            .conditions()
            .iter()
            .all(|c| c.left.attr == 0 && c.right.attr == 0)
            && q.relations().iter().all(|r| r.attr_names.len() == 1);
        if !single_attr {
            return QueryClass::General;
        }
        let any_coloc = q.conditions().iter().any(|c| c.is_colocation());
        let any_seq = q.conditions().iter().any(|c| c.is_sequence());
        match (any_coloc, any_seq) {
            (true, false) => QueryClass::Colocation,
            (false, true) => QueryClass::Sequence,
            (true, true) => QueryClass::Hybrid,
            (false, false) => unreachable!("validated queries have conditions"),
        }
    }
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueryClass::Colocation => "colocation",
            QueryClass::Sequence => "sequence",
            QueryClass::Hybrid => "hybrid",
            QueryClass::General => "general",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{AttrRef, Condition};
    use crate::query::RelationMeta;
    use ij_interval::AllenPredicate::*;

    #[test]
    fn chain_classes() {
        assert_eq!(
            JoinQuery::chain(&[Overlaps, Contains]).unwrap().class(),
            QueryClass::Colocation
        );
        assert_eq!(
            JoinQuery::chain(&[Before, Before]).unwrap().class(),
            QueryClass::Sequence
        );
        assert_eq!(
            JoinQuery::chain(&[Overlaps, Before]).unwrap().class(),
            QueryClass::Hybrid
        );
    }

    #[test]
    fn multi_attribute_is_general() {
        // Q5-style: two attributes on R1.
        let rels = vec![
            RelationMeta {
                name: "R1".into(),
                attr_names: vec!["I".into(), "A".into()],
            },
            RelationMeta {
                name: "R2".into(),
                attr_names: vec!["I".into()],
            },
        ];
        let q = JoinQuery::with_relations(
            rels,
            vec![
                Condition::new(AttrRef::new(0, 0), Before, AttrRef::new(1, 0)),
                Condition::new(AttrRef::new(0, 1), Equals, AttrRef::new(1, 0)),
            ],
        )
        .unwrap();
        assert_eq!(q.class(), QueryClass::General);
    }

    #[test]
    fn extra_declared_attrs_force_general() {
        // Even if all conditions use attr 0, a relation with extra declared
        // attributes means tuples are wider than a bare interval.
        let rels = vec![
            RelationMeta {
                name: "R1".into(),
                attr_names: vec!["I".into(), "payload".into()],
            },
            RelationMeta {
                name: "R2".into(),
                attr_names: vec!["I".into()],
            },
        ];
        let q = JoinQuery::with_relations(rels, vec![Condition::whole(0, Overlaps, 1)]).unwrap();
        assert_eq!(q.class(), QueryClass::General);
    }
}
