//! Colocation connected components — graph `G'` of Sections 8–9.
//!
//! Dropping the sequence edges from the join graph leaves connected
//! components formed by colocation edges only. Each component `C_k`
//! encapsulates a colocation query `Q_{C_k}`; the hybrid and general
//! algorithms treat components as the dimensions of the reducer matrix and
//! solve each `Q_{C_k}` with RCCIS.
//!
//! [`Component::as_query`] extracts `Q_{C_k}` as a standalone
//! single-attribute [`JoinQuery`] over renumbered relations, which lets the
//! RCCIS implementation work on plain colocation queries regardless of
//! whether it is invoked directly (Section 6), per-component on one
//! attribute (Section 8), or per-component on distinct attributes
//! (Section 9).

use crate::condition::{AttrRef, Condition};
use crate::query::{JoinQuery, RelationMeta};
use ij_interval::RelId;
use serde::{Deserialize, Serialize};

/// Dense id of a component within a query's decomposition.
pub type ComponentId = usize;

/// One colocation connected component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// The component's id (its dimension in the reducer matrix).
    pub id: ComponentId,
    /// The member vertices, sorted. A component may be a singleton (a
    /// vertex with no colocation edges, like `⟨R2, I⟩` in Q5).
    pub vertices: Vec<AttrRef>,
    /// Indices (into the parent query's condition list) of the colocation
    /// conditions inside this component.
    pub condition_idxs: Vec<usize>,
}

impl Component {
    /// Whether the vertex belongs to this component.
    pub fn contains(&self, v: AttrRef) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Position of a vertex within this component's ordered vertex list —
    /// the vertex's relation id in [`Component::as_query`]'s renumbering.
    pub fn local_index(&self, v: AttrRef) -> Option<usize> {
        self.vertices.binary_search(&v).ok()
    }

    /// Extracts the encapsulated colocation query `Q_C` as a standalone
    /// single-attribute query: component vertex `vertices[i]` becomes the
    /// sub-query's relation `RelId(i)`.
    ///
    /// Singleton components (no internal conditions) return `None` — there
    /// is nothing to join within them.
    pub fn as_query(&self, parent: &JoinQuery) -> Option<JoinQuery> {
        if self.condition_idxs.is_empty() {
            return None;
        }
        let relations = self
            .vertices
            .iter()
            .map(|v| RelationMeta {
                name: format!(
                    "{}.{}",
                    parent.relations()[v.rel.idx()].name,
                    parent.relations()[v.rel.idx()].attr_names[v.attr as usize]
                ),
                attr_names: vec!["a0".to_string()],
            })
            .collect();
        let conditions = self
            .condition_idxs
            .iter()
            .map(|&ci| {
                let c = parent.conditions()[ci];
                let l = self.local_index(c.left).expect("left vertex in component");
                let r = self
                    .local_index(c.right)
                    .expect("right vertex in component");
                Condition::whole(l as u16, c.pred, r as u16)
            })
            .collect();
        Some(JoinQuery::with_relations(relations, conditions).expect("component query is valid"))
    }
}

/// A query's decomposition into colocation components, plus the sequence
/// conditions connecting them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Components {
    /// The components, ordered by their smallest vertex.
    pub components: Vec<Component>,
    /// Indices of the parent query's sequence conditions — the edges of the
    /// rewritten sequence query `Q'`.
    pub sequence_condition_idxs: Vec<usize>,
}

impl Components {
    /// Decomposes `q`.
    pub fn of(q: &JoinQuery) -> Components {
        let g = q.join_graph();
        let ids = g.component_ids(|coloc| coloc);
        let n_components = ids.iter().copied().max().map_or(0, |m| m + 1);
        let mut components: Vec<Component> = (0..n_components)
            .map(|id| Component {
                id,
                vertices: Vec::new(),
                condition_idxs: Vec::new(),
            })
            .collect();
        for (vi, &cid) in ids.iter().enumerate() {
            components[cid].vertices.push(g.vertices()[vi]);
        }
        let mut sequence_condition_idxs = Vec::new();
        for (ci, c) in q.conditions().iter().enumerate() {
            if c.is_colocation() {
                let cid = ids[g.vertex_index(c.left).expect("vertex present")];
                components[cid].condition_idxs.push(ci);
            } else {
                sequence_condition_idxs.push(ci);
            }
        }
        // Vertices arrive in sorted order already (graph vertices are
        // sorted and scanned in order), but make the invariant explicit.
        for c in &mut components {
            c.vertices.sort_unstable();
        }
        Components {
            components,
            sequence_condition_idxs,
        }
    }

    /// Number of components `l` — the dimensionality of the reducer matrix
    /// in All-Seq-Matrix / Gen-Matrix.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether there are no components (impossible for validated queries).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component containing a vertex.
    pub fn component_of(&self, v: AttrRef) -> Option<ComponentId> {
        self.components.iter().find(|c| c.contains(v)).map(|c| c.id)
    }

    /// The components a relation participates in — one per join attribute
    /// for Gen-Matrix; exactly one for single-attribute queries.
    pub fn components_of_relation(&self, r: RelId) -> Vec<(ComponentId, AttrRef)> {
        let mut out = Vec::new();
        for c in &self.components {
            for &v in &c.vertices {
                if v.rel == r {
                    out.push((c.id, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    /// Q3 (Section 8): R1 ov R2 and R2 ov R3 and R2 before R4 and R4 ov R5.
    fn q3() -> JoinQuery {
        JoinQuery::new(
            5,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(1, Before, 3),
                Condition::whole(3, Overlaps, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn q3_decomposes_into_two_components() {
        let comps = q3().components();
        assert_eq!(comps.len(), 2);
        let c1 = &comps.components[0];
        let c2 = &comps.components[1];
        assert_eq!(
            c1.vertices,
            vec![AttrRef::whole(0), AttrRef::whole(1), AttrRef::whole(2)]
        );
        assert_eq!(c2.vertices, vec![AttrRef::whole(3), AttrRef::whole(4)]);
        assert_eq!(c1.condition_idxs, vec![0, 1]);
        assert_eq!(c2.condition_idxs, vec![3]);
        assert_eq!(comps.sequence_condition_idxs, vec![2]);
    }

    #[test]
    fn component_query_renumbers() {
        let q = q3();
        let comps = q.components();
        let sub = comps.components[1].as_query(&q).unwrap();
        // C2 encapsulates R4 overlaps R5 -> renumbered to R1 overlaps R2.
        assert_eq!(sub.num_relations(), 2);
        assert_eq!(sub.conditions()[0], Condition::whole(0, Overlaps, 1));
    }

    #[test]
    fn pure_sequence_query_gives_singletons() {
        // Q2: R1 before R2 and R2 before R3 — three singleton components.
        let q = JoinQuery::chain(&[Before, Before]).unwrap();
        let comps = q.components();
        assert_eq!(comps.len(), 3);
        for c in &comps.components {
            assert_eq!(c.vertices.len(), 1);
            assert!(c.condition_idxs.is_empty());
            assert!(c.as_query(&q).is_none());
        }
        assert_eq!(comps.sequence_condition_idxs, vec![0, 1]);
    }

    #[test]
    fn pure_colocation_query_is_one_component() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        let comps = q.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps.components[0].vertices.len(), 4);
        assert!(comps.sequence_condition_idxs.is_empty());
        // The component query is the query itself, modulo naming.
        let sub = comps.components[0].as_query(&q).unwrap();
        assert_eq!(sub.conditions(), q.conditions());
    }

    #[test]
    fn q5_multi_attribute_components() {
        // Q5 (Section 9): R1.I before R2.I and R1.I overlaps R3.I and
        // R1.A = R3.A and R2.B = R3.B.
        use crate::query::RelationMeta;
        let rels = vec![
            RelationMeta {
                name: "R1".into(),
                attr_names: vec!["I".into(), "A".into()],
            },
            RelationMeta {
                name: "R2".into(),
                attr_names: vec!["I".into(), "B".into()],
            },
            RelationMeta {
                name: "R3".into(),
                attr_names: vec!["I".into(), "A".into(), "B".into()],
            },
        ];
        let q = JoinQuery::with_relations(
            rels,
            vec![
                Condition::new(AttrRef::new(0, 0), Before, AttrRef::new(1, 0)),
                Condition::new(AttrRef::new(0, 0), Overlaps, AttrRef::new(2, 0)),
                Condition::new(AttrRef::new(0, 1), Equals, AttrRef::new(2, 1)),
                Condition::new(AttrRef::new(1, 1), Equals, AttrRef::new(2, 2)),
            ],
        )
        .unwrap();
        let comps = q.components();
        // C1={R1.I,R3.I}, C2={R1.A,R3.A}, C3={R2.I}, C4={R2.B,R3.B} — four
        // components as the paper states (order here is by smallest vertex).
        assert_eq!(comps.len(), 4);
        let sizes: Vec<usize> = comps.components.iter().map(|c| c.vertices.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.contains(&1)); // the singleton ⟨R2, I⟩
                                     // R3 participates in three components via three attributes.
        assert_eq!(comps.components_of_relation(RelId(2)).len(), 3);
        assert_eq!(comps.sequence_condition_idxs, vec![0]);
    }
}
