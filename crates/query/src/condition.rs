//! Join conditions: `⟨R, A⟩ P ⟨R', A'⟩`.
//!
//! Section 9 generalizes conditions to relation-attribute pairs; the
//! single-attribute queries of Sections 4–8 are the special case where every
//! attribute is `0`.

use ij_interval::{AllenPredicate, AttrId, Interval, OperandOrder, RelId, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A ⟨relation, attribute⟩ pair — a vertex of the join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrRef {
    /// The (logical) relation.
    pub rel: RelId,
    /// The attribute within that relation.
    pub attr: AttrId,
}

impl AttrRef {
    /// Shorthand constructor.
    pub fn new(rel: u16, attr: u16) -> Self {
        AttrRef {
            rel: RelId(rel),
            attr,
        }
    }

    /// Attribute 0 of relation `rel` — the single-attribute common case.
    pub fn whole(rel: u16) -> Self {
        AttrRef::new(rel, 0)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attr == 0 {
            write!(f, "{}", self.rel)
        } else {
            write!(f, "{}.a{}", self.rel, self.attr)
        }
    }
}

/// One conjunct of a join query: `left P right`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// Left operand.
    pub left: AttrRef,
    /// The Allen predicate.
    pub pred: AllenPredicate,
    /// Right operand.
    pub right: AttrRef,
}

impl Condition {
    /// Builds `left pred right`.
    pub fn new(left: AttrRef, pred: AllenPredicate, right: AttrRef) -> Self {
        Condition { left, pred, right }
    }

    /// Single-attribute shorthand: `R{l+1} pred R{r+1}` on attribute 0.
    pub fn whole(l: u16, pred: AllenPredicate, r: u16) -> Self {
        Condition::new(AttrRef::whole(l), pred, AttrRef::whole(r))
    }

    /// Whether this is a colocation condition (paper Section 1).
    pub fn is_colocation(self) -> bool {
        self.pred.is_colocation()
    }

    /// Whether this is a sequence condition.
    pub fn is_sequence(self) -> bool {
        self.pred.is_sequence()
    }

    /// Evaluates the condition on concrete operand intervals.
    #[inline]
    pub fn holds(self, left: Interval, right: Interval) -> bool {
        self.pred.holds(left, right)
    }

    /// Evaluates the condition on whole tuples (reads the referenced
    /// attributes).
    #[inline]
    pub fn holds_tuples(self, left: &Tuple, right: &Tuple) -> bool {
        self.pred
            .holds(left.attr(self.left.attr), right.attr(self.right.attr))
    }

    /// The operand that is *less-than* the other (starts no later), per the
    /// predicate's enforced order.
    pub fn lesser(self) -> AttrRef {
        match self.pred.operand_order() {
            OperandOrder::LeftFirst => self.left,
            OperandOrder::RightFirst => self.right,
        }
    }

    /// The operand that is *greater* (starts no earlier).
    pub fn greater(self) -> AttrRef {
        match self.pred.operand_order() {
            OperandOrder::LeftFirst => self.right,
            OperandOrder::RightFirst => self.left,
        }
    }

    /// Whether the condition touches the given vertex.
    pub fn touches(self, v: AttrRef) -> bool {
        self.left == v || self.right == v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this condition.
    pub fn other(self, v: AttrRef) -> AttrRef {
        if self.left == v {
            self.right
        } else if self.right == v {
            self.left
        } else {
            panic!("{v} is not an endpoint of {self}")
        }
    }

    /// The condition with operands swapped and the predicate inverted —
    /// logically equivalent.
    pub fn flipped(self) -> Condition {
        Condition {
            left: self.right,
            pred: self.pred.inverse(),
            right: self.left,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.pred, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    #[test]
    fn lesser_greater_follow_operand_order() {
        let c = Condition::whole(0, Overlaps, 1);
        assert_eq!(c.lesser(), AttrRef::whole(0));
        assert_eq!(c.greater(), AttrRef::whole(1));
        // Finishes: R2 < R1 per Figure 1 footer.
        let c = Condition::whole(0, Finishes, 1);
        assert_eq!(c.lesser(), AttrRef::whole(1));
        assert_eq!(c.greater(), AttrRef::whole(0));
    }

    #[test]
    fn flipped_is_equivalent() {
        let a = Interval::new(0, 5).unwrap();
        let b = Interval::new(3, 8).unwrap();
        let c = Condition::whole(0, Overlaps, 1);
        let f = c.flipped();
        assert_eq!(f.pred, OverlappedBy);
        assert_eq!(c.holds(a, b), f.holds(b, a));
    }

    #[test]
    fn other_endpoint() {
        let c = Condition::whole(0, Before, 1);
        assert_eq!(c.other(AttrRef::whole(0)), AttrRef::whole(1));
        assert_eq!(c.other(AttrRef::whole(1)), AttrRef::whole(0));
        assert!(c.touches(AttrRef::whole(0)));
        assert!(!c.touches(AttrRef::whole(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        Condition::whole(0, Before, 1).other(AttrRef::whole(2));
    }

    #[test]
    fn holds_tuples_reads_attributes() {
        let t1 = Tuple::multi(
            0,
            vec![Interval::new(0, 1).unwrap(), Interval::new(0, 10).unwrap()],
        );
        let t2 = Tuple::multi(
            0,
            vec![Interval::new(50, 60).unwrap(), Interval::new(2, 5).unwrap()],
        );
        let c = Condition::new(AttrRef::new(0, 1), Contains, AttrRef::new(1, 1));
        assert!(c.holds_tuples(&t1, &t2));
        let c0 = Condition::new(AttrRef::new(0, 0), Contains, AttrRef::new(1, 0));
        assert!(!c0.holds_tuples(&t1, &t2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Condition::whole(0, Overlaps, 1).to_string(),
            "R1 overlaps R2"
        );
        let c = Condition::new(AttrRef::new(0, 2), Before, AttrRef::new(2, 0));
        assert_eq!(c.to_string(), "R1.a2 before R3");
    }
}
