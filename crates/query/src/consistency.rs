//! Consistent interval-sets (paper Section 5.2).
//!
//! A set of intervals `U` (at most one per relation) is *consistent* for a
//! query `Q` when for every pair `u ∈ R_u, v ∈ R_v` in `U`, every condition
//! of `Q` between `R_u` and `R_v` is satisfied. Every subset of a consistent
//! set is consistent, and every output tuple is a consistent set — RCCIS
//! exploits both facts.
//!
//! Assignments are partial: `assign[r] = Some(interval)` when relation `r`
//! is present in the set.

use crate::query::JoinQuery;
use ij_interval::{Interval, RelId};

/// Whether the (partial) assignment is a consistent interval-set for `q`
/// (single-attribute queries; each present relation contributes its one
/// interval).
pub fn is_consistent(q: &JoinQuery, assign: &[Option<Interval>]) -> bool {
    debug_assert_eq!(assign.len(), q.num_relations() as usize);
    q.conditions().iter().all(|c| {
        match (assign[c.left.rel.idx()], assign[c.right.rel.idx()]) {
            (Some(l), Some(r)) => c.holds(l, r),
            // Conditions touching an absent relation don't constrain the set.
            _ => true,
        }
    })
}

/// Incremental consistency: whether adding `(rel, iv)` to an already
/// consistent partial assignment keeps it consistent. Only conditions
/// touching `rel` are re-checked, so building a set of size `k` costs
/// `O(k · deg)` instead of `O(k² · deg)`.
pub fn extension_consistent(
    q: &JoinQuery,
    assign: &[Option<Interval>],
    rel: RelId,
    iv: Interval,
) -> bool {
    debug_assert!(assign[rel.idx()].is_none(), "relation already assigned");
    q.conditions_of(rel).all(|c| {
        let (other_ref, this_is_left) = if c.left.rel == rel {
            (c.right, true)
        } else {
            (c.left, false)
        };
        match assign[other_ref.rel.idx()] {
            Some(other) => {
                if this_is_left {
                    c.holds(iv, other)
                } else {
                    c.holds(other, iv)
                }
            }
            None => true,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use ij_interval::AllenPredicate::*;

    fn iv(s: i64, e: i64) -> Option<Interval> {
        Some(Interval::new(s, e).unwrap())
    }

    /// Q0 and the interval-sets of the paper's Section 5.2 example
    /// (Figure 3): U1={u3,v1,w1} is consistent, U2={u2,v1,w1,x3} is
    /// consistent, U3={u1,v1} is NOT (u1 does not overlap v1).
    ///
    /// Figure 3 coordinates are not printed in the paper; we reconstruct a
    /// layout satisfying all of its stated relationships (see
    /// `tests/figure3.rs` for the full reconstruction).
    #[test]
    fn section52_examples() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        // Reconstruction: u3=[14,23], v1=[16,29], w1=[18,26], u2=[12,17],
        // x3=[25,33], u1=[2,8].
        let u3 = iv(14, 23);
        let v1 = iv(16, 29);
        let w1 = iv(18, 26);
        let u2 = iv(12, 17);
        let x3 = iv(25, 33);
        let u1 = iv(2, 8);

        // U1 = {u3, v1, w1}: consistent.
        assert!(is_consistent(&q, &[u3, v1, w1, None]));
        // U2 = {u2, v1, w1, x3}: consistent (a full output tuple).
        assert!(is_consistent(&q, &[u2, v1, w1, x3]));
        // U3 = {u1, v1}: not consistent — u1 does not overlap v1.
        assert!(!is_consistent(&q, &[u1, v1, None, None]));
    }

    #[test]
    fn empty_and_singleton_sets_are_consistent() {
        let q = JoinQuery::chain(&[Overlaps, Contains]).unwrap();
        assert!(is_consistent(&q, &[None, None, None]));
        assert!(is_consistent(&q, &[iv(0, 5), None, None]));
    }

    #[test]
    fn subsets_of_consistent_sets_are_consistent() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        let full = [iv(0, 10), iv(5, 40), iv(12, 30), iv(20, 50)];
        assert!(is_consistent(&q, &full));
        // Drop each element in turn.
        for drop in 0..4 {
            let mut sub = full;
            sub[drop] = None;
            assert!(is_consistent(&q, &sub), "dropping {drop}");
        }
    }

    #[test]
    fn extension_matches_full_check() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        let partial = [iv(0, 10), iv(5, 40), None, None];
        assert!(is_consistent(&q, &partial));
        let w_good = Interval::new(12, 30).unwrap();
        let w_bad = Interval::new(2, 4).unwrap();
        assert!(extension_consistent(&q, &partial, RelId(2), w_good));
        assert!(!extension_consistent(&q, &partial, RelId(2), w_bad));
        // Agreement with the non-incremental check.
        let mut with_good = partial;
        with_good[2] = Some(w_good);
        assert!(is_consistent(&q, &with_good));
        let mut with_bad = partial;
        with_bad[2] = Some(w_bad);
        assert!(!is_consistent(&q, &with_bad));
    }

    #[test]
    fn extension_unconstrained_when_no_neighbor_assigned() {
        let q = JoinQuery::chain(&[Overlaps, Contains]).unwrap();
        let partial = [iv(0, 10), None, None];
        // R3 only joins R2, which is absent: anything goes.
        assert!(extension_consistent(
            &q,
            &partial,
            RelId(2),
            Interval::new(500, 600).unwrap()
        ));
    }

    #[test]
    fn multiple_conditions_between_same_pair() {
        // R1 contains R2 AND R1 finished-by R2 is contradictory
        // (contains requires e2 < e1, finished-by requires e1 == e2).
        let q = JoinQuery::new(
            2,
            vec![
                Condition::whole(0, Contains, 1),
                Condition::whole(0, FinishedBy, 1),
            ],
        )
        .unwrap();
        assert!(!is_consistent(&q, &[iv(0, 10), iv(2, 5)]));
        assert!(!is_consistent(&q, &[iv(0, 10), iv(2, 10)]));
    }
}
