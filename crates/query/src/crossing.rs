//! Crossing interval-sets (paper Section 5.3).
//!
//! An interval-set `U` (with relation-set `R_U`) *crosses* partition-interval
//! `p` when:
//!
//! 1. no two intervals belong to the same relation (guaranteed by the
//!    assignment representation),
//! 2. every interval in `U` intersects `p`,
//! 3. for every query condition between a relation `R_in ∈ R_U` and a
//!    relation `R_out ∉ R_U`, with `u` the `R_in` member of `U`:
//!    * **B1** — if the predicate orders `R_in < R_out`, then `u` crosses
//!      the *right* boundary of `p` (its end point lies in a later
//!      partition);
//!    * **B2** — if the predicate orders `R_out < R_in`, then `u` crosses
//!      the *left* boundary of `p` (its start point lies in an earlier
//!      partition).
//!
//! A consistent set that crosses `p` is one that could combine with
//! intervals outside `p` to form an output tuple — the selection criterion
//! of RCCIS.

use crate::query::JoinQuery;
use ij_interval::{Interval, PartitionIndex, Partitioning};

/// Whether the (partial, single-attribute) assignment crosses partition `p`
/// of `part` under query `q`. Conditions 2 and 3 of Section 5.3;
/// condition 1 is structural.
pub fn crosses_partition(
    q: &JoinQuery,
    part: &Partitioning,
    p: PartitionIndex,
    assign: &[Option<Interval>],
) -> bool {
    debug_assert_eq!(assign.len(), q.num_relations() as usize);
    // A set covering every relation is an output tuple, not a crossing set
    // (Section 6.1: "an output tuple is not a crossing-set and hence does
    // not satisfy the condition C2 of RCCIS") — there is nothing outside it
    // to combine with.
    if assign.iter().all(Option::is_some) {
        return false;
    }
    // Condition 2: every member intersects p.
    if !assign
        .iter()
        .flatten()
        .all(|&iv| part.intersects_partition(iv, p))
    {
        return false;
    }
    // Condition 3: boundary conditions on edges leaving the set.
    for c in q.conditions() {
        let left_in = assign[c.left.rel.idx()];
        let right_in = assign[c.right.rel.idx()];
        let (member, member_is_lesser) = match (left_in, right_in) {
            (Some(l), None) => (l, c.lesser() == c.left),
            (None, Some(r)) => (r, c.lesser() == c.right),
            // Edge fully inside or fully outside the set: no constraint.
            _ => continue,
        };
        let ok = if member_is_lesser {
            // B1: the in-set member is ordered before the outside relation.
            part.crosses_right(member, p)
        } else {
            // B2: the outside relation is ordered before the member.
            part.crosses_left(member, p)
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    fn iv(s: i64, e: i64) -> Option<Interval> {
        Some(Interval::new(s, e).unwrap())
    }

    /// Section 5.3's worked examples over Q0 and Figure 3, reconstructed
    /// (see `tests/figure3.rs`): U4={u3,v1,w2} crosses p2; U5={v3,w2}
    /// crosses p2; U6={v3,w1} does not (w1 fails B1 for `R3 overlaps R4`).
    #[test]
    fn section53_examples() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        // Partitioning with 4 partitions of width 10 over [0, 40).
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        let p2 = 1; // the paper's p2 is our index 1

        // Reconstruction: u3=[14,23], v1=[16,29], w2=[17,21]... w2 must
        // cross the right boundary of p2 ([10,20)): w2=[17,25].
        let u3 = iv(14, 23);
        let v1 = iv(16, 29);
        let w2 = iv(17, 25);
        // U4 = {u3, v1, w2}: all intersect p2; only boundary edge is
        // R3 overlaps R4 (R4 outside) => w2 must cross right; it does.
        assert!(crosses_partition(&q, &part, p2, &[u3, v1, w2, None]));

        // U5 = {v3, w2}: boundary edges are R1 ov R2 (v3 must cross left)
        // and R3 ov R4 (w2 must cross right).
        let v3 = iv(6, 19); // starts in p1 (paper p1), crosses into p2
        assert!(crosses_partition(&q, &part, p2, &[None, v3, w2, None]));

        // U6 = {v3, w1}: w1 ends inside p2 -> fails B1.
        let w1 = iv(12, 18);
        assert!(!crosses_partition(&q, &part, p2, &[None, v3, w1, None]));
    }

    #[test]
    fn members_must_intersect_partition() {
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        // Interval entirely in p0 cannot cross p2's checks (condition 2).
        assert!(!crosses_partition(&q, &part, 2, &[iv(0, 5), None]));
    }

    #[test]
    fn b2_left_boundary() {
        // R1 overlaps R2; consider the set {v} with v in R2. The boundary
        // edge orders R1 < R2, so v must cross the LEFT boundary (B2).
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        let crossing_left = iv(5, 15); // starts in p0, intersects p1
        let not_crossing = iv(12, 15); // starts inside p1
        assert!(crosses_partition(&q, &part, 1, &[None, crossing_left]));
        assert!(!crosses_partition(&q, &part, 1, &[None, not_crossing]));
    }

    #[test]
    fn full_assignment_never_crosses() {
        // Section 6.1: "an output tuple is not a crossing-set". A full
        // consistent set inside one partition is computed there directly;
        // counting it as crossing would replicate needlessly.
        let q = JoinQuery::chain(&[Overlaps]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        assert!(!crosses_partition(&q, &part, 0, &[iv(0, 5), iv(3, 8)]));
        // Even when a member crosses the boundary, the full set is still an
        // output tuple, not a crossing set.
        assert!(!crosses_partition(&q, &part, 0, &[iv(0, 15), iv(3, 18)]));
    }

    #[test]
    fn sequence_edges_also_constrain() {
        // R1 before R2: set {u} (u in R1) crossing p requires u to cross
        // the right boundary — B1 with a sequence predicate.
        let q = JoinQuery::chain(&[Before]).unwrap();
        let part = Partitioning::equi_width(0, 40, 4).unwrap();
        assert!(crosses_partition(&q, &part, 0, &[iv(5, 12), None]));
        assert!(!crosses_partition(&q, &part, 0, &[iv(5, 9), None]));
    }
}
