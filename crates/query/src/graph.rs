//! The join graph `G = (V, E)` (Sections 8–9).
//!
//! Vertices are the ⟨relation, attribute⟩ pairs appearing in conditions;
//! every condition contributes an edge classified as colocation or sequence
//! by its predicate.

use crate::condition::AttrRef;
use crate::query::JoinQuery;
use std::collections::BTreeMap;

/// Adjacency view of a query's join graph.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    vertices: Vec<AttrRef>,
    /// For each vertex (by index into `vertices`): `(neighbor index,
    /// condition index, is_colocation)`.
    adj: Vec<Vec<(usize, usize, bool)>>,
    index: BTreeMap<AttrRef, usize>,
}

impl JoinGraph {
    /// Builds the join graph of `q`.
    pub fn of(q: &JoinQuery) -> JoinGraph {
        let vertices = q.vertices();
        let index: BTreeMap<AttrRef, usize> =
            vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut adj = vec![Vec::new(); vertices.len()];
        for (ci, c) in q.conditions().iter().enumerate() {
            let l = index[&c.left];
            let r = index[&c.right];
            let coloc = c.is_colocation();
            adj[l].push((r, ci, coloc));
            adj[r].push((l, ci, coloc));
        }
        JoinGraph {
            vertices,
            adj,
            index,
        }
    }

    /// The vertices, sorted.
    pub fn vertices(&self) -> &[AttrRef] {
        &self.vertices
    }

    /// Index of a vertex, if present.
    pub fn vertex_index(&self, v: AttrRef) -> Option<usize> {
        self.index.get(&v).copied()
    }

    /// Neighbors of vertex `i` as `(neighbor index, condition index,
    /// is_colocation)` triples.
    pub fn neighbors(&self, i: usize) -> &[(usize, usize, bool)] {
        &self.adj[i]
    }

    /// Whether the whole graph (colocation + sequence edges) is connected.
    /// The paper's algorithms assume connected queries; a disconnected query
    /// contains a hidden cross product.
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return true;
        }
        let reached = self.reachable_from(0, |_coloc| true);
        reached.iter().all(|&r| r)
    }

    /// Connected components under an edge filter; returns for each vertex
    /// the id of its component (ids are dense, ordered by smallest vertex).
    pub fn component_ids(&self, keep_edge: impl Fn(bool) -> bool + Copy) -> Vec<usize> {
        let n = self.vertices.len();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let reached = self.reachable_from(start, keep_edge);
            for (v, &r) in reached.iter().enumerate() {
                if r && comp[v] == usize::MAX {
                    comp[v] = next;
                }
            }
            next += 1;
        }
        comp
    }

    fn reachable_from(&self, start: usize, keep_edge: impl Fn(bool) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for &(w, _, coloc) in &self.adj[v] {
                if keep_edge(coloc) && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    #[test]
    fn q0_graph_shape() {
        let q = JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap();
        let g = q.join_graph();
        assert_eq!(g.vertices().len(), 4);
        assert!(g.is_connected());
        // Middle vertices have degree 2.
        assert_eq!(g.neighbors(1).len(), 2);
        assert_eq!(g.neighbors(0).len(), 1);
    }

    #[test]
    fn colocation_filter_splits_hybrid_query() {
        // Q3: R1 ov R2, R2 ov R3, R2 before R4, R4 ov R5.
        let q = JoinQuery::new(
            5,
            vec![
                crate::condition::Condition::whole(0, Overlaps, 1),
                crate::condition::Condition::whole(1, Overlaps, 2),
                crate::condition::Condition::whole(1, Before, 3),
                crate::condition::Condition::whole(3, Overlaps, 4),
            ],
        )
        .unwrap();
        let g = q.join_graph();
        assert!(g.is_connected());
        let ids = g.component_ids(|coloc| coloc);
        // {R1,R2,R3} together, {R4,R5} together, different ids.
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
    }

    #[test]
    fn disconnected_query_detected() {
        let q = JoinQuery::new(
            4,
            vec![
                crate::condition::Condition::whole(0, Overlaps, 1),
                crate::condition::Condition::whole(2, Overlaps, 3),
            ],
        )
        .unwrap();
        assert!(!q.join_graph().is_connected());
    }
}
