//! Interval join query model (paper Sections 5, 8 and 9).
//!
//! A [`JoinQuery`] is a conjunction of Allen-predicate conditions over
//! ⟨relation, attribute⟩ pairs. This crate provides:
//!
//! * the query representation, validation and classification into the
//!   paper's four classes (Colocation / Sequence / Hybrid / General);
//! * the join graph and its decomposition into *colocation connected
//!   components* after dropping sequence edges (Sections 8–9);
//! * the *less-than-order* between relations and between components,
//!   inferred soundly from an event-order closure (Section 5.1; see
//!   DESIGN.md §5 for why the closure is needed);
//! * the *consistent interval-set* and *crossing interval-set* machinery
//!   that RCCIS is built on (Sections 5.2–5.3);
//! * a small text parser for queries like
//!   `"R1 overlaps R2 and R2 contains R3"`.

pub mod classify;
pub mod components;
pub mod condition;
pub mod consistency;
pub mod crossing;
pub mod graph;
pub mod order;
pub mod parser;
pub mod query;

pub use classify::QueryClass;
pub use components::{ComponentId, Components};
pub use condition::{AttrRef, Condition};
pub use crossing::crosses_partition;
pub use graph::JoinGraph;
pub use order::StartOrder;
pub use parser::parse_query;
pub use query::{JoinQuery, QueryError};
