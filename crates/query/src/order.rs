//! The less-than-order between relations and components (Section 5.1),
//! inferred soundly via an event-order closure.
//!
//! Every Allen predicate implies inequalities between the four *events* of
//! its operands (the two start and two end points) — e.g. `a overlaps b`
//! implies `s_a < s_b`, `s_b < e_a` and `e_a < e_b`. [`StartOrder`] collects
//! these implications for every condition of a query and closes them
//! transitively; `s_u <= s_v` is then *provable* exactly when every
//! satisfying assignment orders the start points that way.
//!
//! ## Why a closure, not Figure 1 alone
//!
//! For a single condition the closure reproduces Figure 1's footer orders
//! exactly (this is unit-tested). The generalization matters for the matrix
//! algorithms of Sections 7–9, which prune *inconsistent reducers* using
//! the order between relations/components. The paper derives the component
//! order directly from the sequence edge; that is sound only when every
//! member of the earlier component is provably ordered before some member
//! of the later one. A chain like `R1 ov R2 and R2 ov R3 and R1 before R4`
//! breaks the direct rule (an `R3` interval may start *after* the `R4`
//! interval), and pruning on it would silently drop outputs. The closure
//! derives exactly the constraints that hold, so pruning stays sound —
//! DESIGN.md §5 discusses this deviation.

use crate::components::Components;
use crate::condition::AttrRef;
use crate::query::JoinQuery;
use ij_interval::AllenPredicate;

/// Relation between two events in the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rel {
    /// No provable ordering.
    Unknown,
    /// Provably `<=`.
    Le,
    /// Provably `<`.
    Lt,
}

impl Rel {
    fn join_path(a: Rel, b: Rel) -> Rel {
        match (a, b) {
            (Rel::Unknown, _) | (_, Rel::Unknown) => Rel::Unknown,
            (Rel::Lt, _) | (_, Rel::Lt) => Rel::Lt,
            _ => Rel::Le,
        }
    }

    fn strengthen(self, other: Rel) -> Rel {
        match (self, other) {
            (Rel::Lt, _) | (_, Rel::Lt) => Rel::Lt,
            (Rel::Le, _) | (_, Rel::Le) => Rel::Le,
            _ => Rel::Unknown,
        }
    }
}

/// The provable partial order on the start points of a query's vertices.
#[derive(Debug, Clone)]
pub struct StartOrder {
    vertices: Vec<AttrRef>,
    /// `matrix[a][b]`: provable relation between event `a` and event `b`,
    /// where event `2i` is `s_{vertices[i]}` and event `2i+1` is
    /// `e_{vertices[i]}`.
    matrix: Vec<Vec<Rel>>,
}

impl StartOrder {
    /// Infers the order for a query.
    pub fn infer(q: &JoinQuery) -> StartOrder {
        let vertices = q.vertices();
        let n = vertices.len() * 2;
        let mut m = vec![vec![Rel::Unknown; n]; n];
        let idx = |v: AttrRef, vertices: &[AttrRef]| -> usize {
            vertices.binary_search(&v).expect("vertex present") * 2
        };
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = Rel::Le;
        }
        // s_v <= e_v for every vertex.
        for i in 0..vertices.len() {
            m[2 * i][2 * i + 1] = Rel::Le;
        }
        for c in q.conditions() {
            let (sa, ea) = {
                let b = idx(c.left, &vertices);
                (b, b + 1)
            };
            let (sb, eb) = {
                let b = idx(c.right, &vertices);
                (b, b + 1)
            };
            for (x, y, rel) in predicate_implications(c.pred, sa, ea, sb, eb) {
                m[x][y] = m[x][y].strengthen(rel);
            }
        }
        // Floyd–Warshall closure.
        for k in 0..n {
            for i in 0..n {
                if m[i][k] == Rel::Unknown {
                    continue;
                }
                for j in 0..n {
                    let via = Rel::join_path(m[i][k], m[k][j]);
                    if via != Rel::Unknown {
                        m[i][j] = m[i][j].strengthen(via);
                    }
                }
            }
        }
        StartOrder {
            vertices,
            matrix: m,
        }
    }

    fn sidx(&self, v: AttrRef) -> Option<usize> {
        self.vertices.binary_search(&v).ok().map(|i| i * 2)
    }

    /// Whether `s_a <= s_b` is provable for every satisfying assignment.
    pub fn le_start(&self, a: AttrRef, b: AttrRef) -> bool {
        match (self.sidx(a), self.sidx(b)) {
            (Some(i), Some(j)) => self.matrix[i][j] != Rel::Unknown,
            _ => false,
        }
    }

    /// Whether `s_a < s_b` (strict) is provable.
    pub fn lt_start(&self, a: AttrRef, b: AttrRef) -> bool {
        match (self.sidx(a), self.sidx(b)) {
            (Some(i), Some(j)) => self.matrix[i][j] == Rel::Lt,
            _ => false,
        }
    }

    /// Whether the query is unsatisfiable: some event is provably strictly
    /// before itself. Section 9 notes that conflicting orders make the
    /// query output null; algorithms short-circuit on this.
    pub fn contradictory(&self) -> bool {
        (0..self.matrix.len()).any(|i| self.matrix[i][i] == Rel::Lt)
    }

    /// The vertices this order is over (sorted).
    pub fn vertices(&self) -> &[AttrRef] {
        &self.vertices
    }

    /// Whether the matrix constraint `index(C_a) <= index(C_b)` is sound
    /// for the two components: every vertex of `C_a` is provably
    /// start-ordered `<=` some vertex of `C_b`.
    ///
    /// The matrix algorithms route a component's data by the partition of
    /// the *right-most* member start; `q_a <= q_b` holds for all outputs iff
    /// `max_start(C_a) <= max_start(C_b)`, which this criterion guarantees.
    pub fn component_le(
        &self,
        a: &crate::components::Component,
        b: &crate::components::Component,
    ) -> bool {
        a.vertices
            .iter()
            .all(|&va| b.vertices.iter().any(|&vb| self.le_start(va, vb)))
    }

    /// All sound pairwise component constraints `(i, j)` meaning
    /// "dimension i's index must be `<=` dimension j's" — the consistent-
    /// reducer rule of Sections 7.1 / 8.1 / 9.1.
    pub fn component_constraints(&self, comps: &Components) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in &comps.components {
            for b in &comps.components {
                if a.id != b.id && self.component_le(a, b) {
                    out.push((a.id, b.id));
                }
            }
        }
        out
    }
}

/// The event inequalities implied by `P(a, b)`, as
/// `(event_x, event_y, relation)` triples meaning `x rel y`.
fn predicate_implications(
    p: AllenPredicate,
    sa: usize,
    ea: usize,
    sb: usize,
    eb: usize,
) -> Vec<(usize, usize, Rel)> {
    use AllenPredicate::*;
    use Rel::*;
    match p {
        Before => vec![(ea, sb, Lt)],
        After => vec![(eb, sa, Lt)],
        Overlaps => vec![(sa, sb, Lt), (sb, ea, Lt), (ea, eb, Lt)],
        OverlappedBy => vec![(sb, sa, Lt), (sa, eb, Lt), (eb, ea, Lt)],
        Contains => vec![(sa, sb, Lt), (eb, ea, Lt)],
        ContainedBy => vec![(sb, sa, Lt), (ea, eb, Lt)],
        Meets => vec![(sa, sb, Lt), (ea, sb, Le), (sb, ea, Le), (ea, eb, Lt)],
        MetBy => vec![(sb, sa, Lt), (eb, sa, Le), (sa, eb, Le), (eb, ea, Lt)],
        Starts => vec![(sa, sb, Le), (sb, sa, Le), (ea, eb, Lt)],
        StartedBy => vec![(sa, sb, Le), (sb, sa, Le), (eb, ea, Lt)],
        Finishes => vec![(ea, eb, Le), (eb, ea, Le), (sb, sa, Lt)],
        FinishedBy => vec![(ea, eb, Le), (eb, ea, Le), (sa, sb, Lt)],
        Equals => vec![(sa, sb, Le), (sb, sa, Le), (ea, eb, Le), (eb, ea, Le)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use ij_interval::AllenPredicate::*;
    use ij_interval::OperandOrder;

    fn two_rel(p: AllenPredicate) -> StartOrder {
        JoinQuery::new(2, vec![Condition::whole(0, p, 1)])
            .unwrap()
            .start_order()
    }

    /// For a single condition, the closure must reproduce Figure 1's
    /// footer orders exactly.
    #[test]
    fn single_condition_matches_figure1() {
        for p in AllenPredicate::ALL {
            let o = two_rel(p);
            let (a, b) = (AttrRef::whole(0), AttrRef::whole(1));
            match p.operand_order() {
                OperandOrder::LeftFirst => {
                    assert!(o.le_start(a, b), "{p}: expected R1 <= R2")
                }
                OperandOrder::RightFirst => {
                    assert!(o.le_start(b, a), "{p}: expected R2 <= R1")
                }
            }
        }
    }

    #[test]
    fn strictness_matches_predicates() {
        let (a, b) = (AttrRef::whole(0), AttrRef::whole(1));
        assert!(two_rel(Overlaps).lt_start(a, b));
        assert!(two_rel(Before).lt_start(a, b));
        // Starts/equals give <= in both directions, strictly in neither.
        let o = two_rel(Starts);
        assert!(o.le_start(a, b) && o.le_start(b, a));
        assert!(!o.lt_start(a, b) && !o.lt_start(b, a));
    }

    #[test]
    fn transitive_chain_before() {
        // R1 before R2, R2 before R3 ==> s1 < s3 (the All-Matrix pruning).
        let q = JoinQuery::chain(&[Before, Before]).unwrap();
        let o = q.start_order();
        assert!(o.lt_start(AttrRef::whole(0), AttrRef::whole(2)));
    }

    #[test]
    fn contradiction_detected() {
        // R1 before R2 and R2 before R1 is unsatisfiable.
        let q = JoinQuery::new(
            2,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(1, Before, 0),
            ],
        )
        .unwrap();
        assert!(q.start_order().contradictory());
        // A satisfiable query is not.
        assert!(!JoinQuery::chain(&[Overlaps])
            .unwrap()
            .start_order()
            .contradictory());
    }

    #[test]
    fn q4_component_constraint_is_sound_and_derivable() {
        // Q4: R1 before R2 and R1 overlaps R3. C({R1,R3}) <= C({R2}) holds:
        // s1 < s2 via before; s3 < s2 via s3 < e1 < s2.
        let q = JoinQuery::new(
            3,
            vec![
                Condition::whole(0, Before, 1),
                Condition::whole(0, Overlaps, 2),
            ],
        )
        .unwrap();
        let comps = q.components();
        let o = q.start_order();
        let constraints = o.component_constraints(&comps);
        // Find the component ids.
        let c_r2 = comps.component_of(AttrRef::whole(1)).unwrap();
        let c_r1 = comps.component_of(AttrRef::whole(0)).unwrap();
        assert!(constraints.contains(&(c_r1, c_r2)));
        assert!(!constraints.contains(&(c_r2, c_r1)));
    }

    #[test]
    fn unsound_component_constraint_not_derived() {
        // R1 ov R2 and R2 ov R3 and R1 before R4: an R3 interval may start
        // after the R4 interval (s3 < e2, e2 unbounded vs s4), so no
        // constraint between the components may be emitted in either
        // direction. The paper's direct rule would wrongly emit C1 <= C2.
        let q = JoinQuery::new(
            4,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(0, Before, 3),
            ],
        )
        .unwrap();
        let comps = q.components();
        assert_eq!(comps.len(), 2);
        let o = q.start_order();
        assert!(
            o.component_constraints(&comps).is_empty(),
            "no sound constraint exists between the components"
        );
    }

    #[test]
    fn q3_component_constraint_derivable() {
        // Q3: R1 ov R2, R2 ov R3, R2 before R4, R4 ov R5 — here the chain
        // bounds every member of C1 before every R4 start: s1<s2, s3<e2<s4,
        // s2<=e2<s4; and s4<s5 side. So C1 <= C2 is derivable.
        let q = JoinQuery::new(
            5,
            vec![
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Overlaps, 2),
                Condition::whole(1, Before, 3),
                Condition::whole(3, Overlaps, 4),
            ],
        )
        .unwrap();
        let comps = q.components();
        let o = q.start_order();
        let c1 = comps.component_of(AttrRef::whole(0)).unwrap();
        let c2 = comps.component_of(AttrRef::whole(3)).unwrap();
        assert!(o.component_constraints(&comps).contains(&(c1, c2)));
    }

    #[test]
    fn le_start_false_for_unknown_vertices() {
        let o = two_rel(Overlaps);
        assert!(!o.le_start(AttrRef::whole(0), AttrRef::whole(7)));
    }
}
