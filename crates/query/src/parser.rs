//! A small text parser for join queries.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query     := condition ( "and" condition )*
//! condition := operand predicate operand
//! operand   := IDENT ( "." IDENT )?          // relation or relation.attr
//! predicate := "overlaps" | "before" | "contains" | … | "<" | ">" | "="
//! ```
//!
//! Relations and attributes are interned in order of first appearance, so
//! `parse_query("R1 overlaps R2 and R2 contains R3")` yields relations
//! `R1 → RelId(0)`, `R2 → RelId(1)`, `R3 → RelId(2)`.

use crate::condition::{AttrRef, Condition};
use crate::query::{JoinQuery, QueryError, RelationMeta};
use ij_interval::{AllenPredicate, RelId};
use std::fmt;

/// Error parsing a query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Ran out of tokens where more were expected.
    UnexpectedEnd,
    /// A token that is not a valid predicate where one was expected.
    BadPredicate(String),
    /// Expected `and` between conditions.
    ExpectedAnd(String),
    /// The parsed conditions failed query validation.
    Invalid(QueryError),
    /// Empty input.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of query"),
            ParseError::BadPredicate(t) => write!(f, "expected an Allen predicate, got {t:?}"),
            ParseError::ExpectedAnd(t) => write!(f, "expected 'and', got {t:?}"),
            ParseError::Invalid(e) => write!(f, "invalid query: {e}"),
            ParseError::Empty => write!(f, "empty query"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a query string into a validated [`JoinQuery`].
///
/// ```
/// use ij_query::parse_query;
/// let q = parse_query("R1 overlaps R2 and R2 contains R3").unwrap();
/// assert_eq!(q.num_relations(), 3);
/// assert_eq!(q.to_string(), "R1 overlaps R2 and R2 contains R3");
/// ```
pub fn parse_query(text: &str) -> Result<JoinQuery, ParseError> {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut rels: Vec<RelationMeta> = Vec::new();
    let mut conditions = Vec::new();
    let mut pos = 0usize;

    let intern = |rels: &mut Vec<RelationMeta>, name: &str, attr: Option<&str>| -> AttrRef {
        let rel_idx = match rels.iter().position(|r| r.name == name) {
            Some(i) => i,
            None => {
                rels.push(RelationMeta {
                    name: name.to_string(),
                    attr_names: Vec::new(),
                });
                rels.len() - 1
            }
        };
        let attr_name = attr.unwrap_or("a0");
        let meta = &mut rels[rel_idx];
        let attr_idx = match meta.attr_names.iter().position(|a| a == attr_name) {
            Some(i) => i,
            None => {
                meta.attr_names.push(attr_name.to_string());
                meta.attr_names.len() - 1
            }
        };
        AttrRef {
            rel: RelId(rel_idx as u16),
            attr: attr_idx as u16,
        }
    };

    loop {
        let left_tok = tokens.get(pos).ok_or(ParseError::UnexpectedEnd)?;
        let pred_tok = tokens.get(pos + 1).ok_or(ParseError::UnexpectedEnd)?;
        let right_tok = tokens.get(pos + 2).ok_or(ParseError::UnexpectedEnd)?;
        pos += 3;

        let (lr, la) = split_operand(left_tok);
        let (rr, ra) = split_operand(right_tok);
        let pred: AllenPredicate = pred_tok
            .parse()
            .map_err(|_| ParseError::BadPredicate(pred_tok.clone()))?;
        let left = intern(&mut rels, lr, la);
        let right = intern(&mut rels, rr, ra);
        conditions.push(Condition::new(left, pred, right));

        match tokens.get(pos) {
            None => break,
            Some(t) if t.eq_ignore_ascii_case("and") || t == "," => pos += 1,
            Some(t) => return Err(ParseError::ExpectedAnd(t.clone())),
        }
    }

    JoinQuery::with_relations(rels, conditions).map_err(ParseError::Invalid)
}

fn split_operand(tok: &str) -> (&str, Option<&str>) {
    match tok.split_once('.') {
        Some((r, a)) => (r, Some(a)),
        None => (tok, None),
    }
}

fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            ',' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(",".to_string());
            }
            '<' | '>' | '=' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;

    #[test]
    fn parses_q0() {
        let q = parse_query("R1 overlaps R2 and R2 contains R3 and R3 overlaps R4").unwrap();
        assert_eq!(q.num_relations(), 4);
        assert_eq!(
            q.conditions(),
            &[
                Condition::whole(0, Overlaps, 1),
                Condition::whole(1, Contains, 2),
                Condition::whole(2, Overlaps, 3),
            ]
        );
    }

    #[test]
    fn relation_ids_in_order_of_appearance() {
        let q = parse_query("cities overlaps rivers").unwrap();
        assert_eq!(q.relations()[0].name, "cities");
        assert_eq!(q.relations()[1].name, "rivers");
    }

    #[test]
    fn parses_attributes_and_comparisons() {
        // Q5 from Section 9.
        let q =
            parse_query("R1.I before R2.I and R1.I overlaps R3.I and R1.A = R3.A and R2.B = R3.B")
                .unwrap();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.relations()[0].attr_names, vec!["I", "A"]);
        assert_eq!(q.relations()[2].attr_names, vec!["I", "A", "B"]);
        assert_eq!(q.conditions()[2].pred, Equals);
        assert_eq!(q.components().len(), 4);
    }

    #[test]
    fn comma_separates_conditions() {
        let q = parse_query("R1 before R2, R2 before R3").unwrap();
        assert_eq!(q.conditions().len(), 2);
    }

    #[test]
    fn angle_comparators_tokenize_without_spaces() {
        let q = parse_query("R1.A<R2.A").unwrap();
        assert_eq!(q.conditions()[0].pred, Before);
    }

    #[test]
    fn errors() {
        assert_eq!(parse_query(""), Err(ParseError::Empty));
        assert_eq!(parse_query("R1 overlaps"), Err(ParseError::UnexpectedEnd));
        assert!(matches!(
            parse_query("R1 sideways R2"),
            Err(ParseError::BadPredicate(_))
        ));
        assert!(matches!(
            parse_query("R1 before R2 R2 before R3"),
            Err(ParseError::ExpectedAnd(_))
        ));
        assert!(matches!(
            parse_query("R1 before R1"),
            Err(ParseError::Invalid(QueryError::SelfCondition { .. }))
        ));
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_query("R1 OVERLAPS R2 AND R2 Before R3").unwrap();
        assert_eq!(q.conditions()[0].pred, Overlaps);
        assert_eq!(q.conditions()[1].pred, Before);
    }
}
