//! The [`JoinQuery`] type: a conjunction of Allen conditions over relations.

use crate::classify::QueryClass;
use crate::components::Components;
use crate::condition::{AttrRef, Condition};
use crate::graph::JoinGraph;
use crate::order::StartOrder;
use ij_interval::{AllenPredicate, AttrId, RelId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metadata of one (logical) relation in a query.
///
/// A self-join registers the same physical data under several logical
/// relations, each with its own `RelationMeta` (see Table 2's star
/// self-join).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationMeta {
    /// Display name (`"R1"` by default).
    pub name: String,
    /// Attribute names; length gives the relation's arity in the query.
    pub attr_names: Vec<String>,
}

impl RelationMeta {
    fn single(name: String) -> Self {
        RelationMeta {
            name,
            attr_names: vec!["a0".to_string()],
        }
    }
}

/// Error constructing a [`JoinQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A condition references a relation id outside `0..num_relations`.
    UnknownRelation { rel: RelId },
    /// A condition references an attribute outside the relation's arity.
    UnknownAttr { at: AttrRef },
    /// Both operands of a condition are the same relation. Self-joins are
    /// expressed with distinct *logical* relations over shared data.
    SelfCondition { rel: RelId },
    /// The query has no conditions.
    NoConditions,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownRelation { rel } => write!(f, "unknown relation {rel}"),
            QueryError::UnknownAttr { at } => write!(f, "unknown attribute {at}"),
            QueryError::SelfCondition { rel } => write!(
                f,
                "condition joins {rel} with itself; register a second logical relation instead"
            ),
            QueryError::NoConditions => write!(f, "query has no join conditions"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A multi-way interval join query: `m` logical relations and a conjunction
/// of Allen-predicate conditions between them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinQuery {
    relations: Vec<RelationMeta>,
    conditions: Vec<Condition>,
}

impl JoinQuery {
    /// Builds and validates a query over `num_relations` single-attribute
    /// relations named `R1..Rm`.
    pub fn new(num_relations: u16, conditions: Vec<Condition>) -> Result<Self, QueryError> {
        let relations = (0..num_relations)
            .map(|i| RelationMeta::single(format!("R{}", i + 1)))
            .collect();
        JoinQuery::with_relations(relations, conditions)
    }

    /// Builds and validates a query with explicit relation metadata
    /// (names and per-relation attribute lists).
    pub fn with_relations(
        relations: Vec<RelationMeta>,
        conditions: Vec<Condition>,
    ) -> Result<Self, QueryError> {
        if conditions.is_empty() {
            return Err(QueryError::NoConditions);
        }
        for c in &conditions {
            for at in [c.left, c.right] {
                let meta = relations
                    .get(at.rel.idx())
                    .ok_or(QueryError::UnknownRelation { rel: at.rel })?;
                if at.attr as usize >= meta.attr_names.len() {
                    return Err(QueryError::UnknownAttr { at });
                }
            }
            if c.left.rel == c.right.rel {
                return Err(QueryError::SelfCondition { rel: c.left.rel });
            }
        }
        Ok(JoinQuery {
            relations,
            conditions,
        })
    }

    /// Convenience: a chain query `R1 P1 R2 and R2 P2 R3 and …` over
    /// single-attribute relations.
    pub fn chain(preds: &[AllenPredicate]) -> Result<Self, QueryError> {
        let conditions = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| Condition::whole(i as u16, p, i as u16 + 1))
            .collect();
        JoinQuery::new(preds.len() as u16 + 1, conditions)
    }

    /// Number of logical relations `m`.
    pub fn num_relations(&self) -> u16 {
        self.relations.len() as u16
    }

    /// Relation metadata.
    pub fn relations(&self) -> &[RelationMeta] {
        &self.relations
    }

    /// The conditions, in declaration order.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// All conditions between the two given relations (either direction).
    pub fn conditions_between(&self, a: RelId, b: RelId) -> impl Iterator<Item = &Condition> + '_ {
        self.conditions.iter().filter(move |c| {
            (c.left.rel == a && c.right.rel == b) || (c.left.rel == b && c.right.rel == a)
        })
    }

    /// All conditions touching the given relation.
    pub fn conditions_of(&self, r: RelId) -> impl Iterator<Item = &Condition> + '_ {
        self.conditions
            .iter()
            .filter(move |c| c.left.rel == r || c.right.rel == r)
    }

    /// All distinct ⟨relation, attribute⟩ vertices appearing in conditions,
    /// sorted.
    pub fn vertices(&self) -> Vec<AttrRef> {
        let mut vs: Vec<AttrRef> = self
            .conditions
            .iter()
            .flat_map(|c| [c.left, c.right])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// The paper's four-way classification.
    pub fn class(&self) -> QueryClass {
        QueryClass::of(self)
    }

    /// The join graph over ⟨relation, attribute⟩ vertices.
    pub fn join_graph(&self) -> JoinGraph {
        JoinGraph::of(self)
    }

    /// The colocation connected components (graph `G'` of Sections 8–9).
    pub fn components(&self) -> Components {
        Components::of(self)
    }

    /// The inferred start-point partial order over vertices (Section 5.1's
    /// less-than-order, closed transitively; see DESIGN.md §5).
    pub fn start_order(&self) -> StartOrder {
        StartOrder::infer(self)
    }

    /// Whether `assignment` (one interval per relation, single-attribute
    /// queries) satisfies every condition. This is the oracle's acceptance
    /// test and condition A2 of consistency when all relations are present.
    pub fn satisfied_by(&self, intervals: &[ij_interval::Interval]) -> bool {
        debug_assert_eq!(intervals.len(), self.relations.len());
        self.conditions
            .iter()
            .all(|c| c.holds(intervals[c.left.rel.idx()], intervals[c.right.rel.idx()]))
    }

    /// Whether full tuples (one per relation) satisfy every condition,
    /// honoring attribute references — the multi-attribute acceptance test.
    pub fn satisfied_by_tuples(&self, tuples: &[&ij_interval::Tuple]) -> bool {
        debug_assert_eq!(tuples.len(), self.relations.len());
        self.conditions
            .iter()
            .all(|c| c.holds_tuples(tuples[c.left.rel.idx()], tuples[c.right.rel.idx()]))
    }

    /// The attributes of relation `r` that participate in some condition.
    pub fn join_attrs_of(&self, r: RelId) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .conditions
            .iter()
            .flat_map(|c| [c.left, c.right])
            .filter(|at| at.rel == r)
            .map(|at| at.attr)
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }
}

impl JoinQuery {
    /// Renders one operand with the query's relation/attribute names
    /// (single-attribute relations omit the attribute).
    fn fmt_operand(&self, f: &mut fmt::Formatter<'_>, at: AttrRef) -> fmt::Result {
        let meta = &self.relations[at.rel.idx()];
        if meta.attr_names.len() == 1 {
            write!(f, "{}", meta.name)
        } else {
            write!(f, "{}.{}", meta.name, meta.attr_names[at.attr as usize])
        }
    }
}

impl fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            self.fmt_operand(f, c.left)?;
            write!(f, " {} ", c.pred)?;
            self.fmt_operand(f, c.right)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_interval::AllenPredicate::*;
    use ij_interval::Interval;

    /// The paper's running example Q0: R1 overlaps R2 and R2 contains R3 and
    /// R3 overlaps R4.
    pub(crate) fn q0() -> JoinQuery {
        JoinQuery::chain(&[Overlaps, Contains, Overlaps]).unwrap()
    }

    #[test]
    fn chain_builds_q0() {
        let q = q0();
        assert_eq!(q.num_relations(), 4);
        assert_eq!(q.conditions().len(), 3);
        assert_eq!(
            q.to_string(),
            "R1 overlaps R2 and R2 contains R3 and R3 overlaps R4"
        );
    }

    #[test]
    fn validation_rejects_bad_refs() {
        assert_eq!(
            JoinQuery::new(2, vec![Condition::whole(0, Before, 2)]).unwrap_err(),
            QueryError::UnknownRelation { rel: RelId(2) }
        );
        assert_eq!(
            JoinQuery::new(
                2,
                vec![Condition::new(
                    AttrRef::new(0, 1),
                    Before,
                    AttrRef::whole(1)
                )]
            )
            .unwrap_err(),
            QueryError::UnknownAttr {
                at: AttrRef::new(0, 1)
            }
        );
        assert_eq!(
            JoinQuery::new(2, vec![Condition::whole(1, Before, 1)]).unwrap_err(),
            QueryError::SelfCondition { rel: RelId(1) }
        );
        assert_eq!(
            JoinQuery::new(2, vec![]).unwrap_err(),
            QueryError::NoConditions
        );
    }

    #[test]
    fn conditions_between_finds_both_directions() {
        let q = q0();
        assert_eq!(q.conditions_between(RelId(1), RelId(2)).count(), 1);
        assert_eq!(q.conditions_between(RelId(2), RelId(1)).count(), 1);
        assert_eq!(q.conditions_between(RelId(0), RelId(3)).count(), 0);
    }

    #[test]
    fn satisfied_by_checks_all_conditions() {
        let q = q0();
        let iv = |s, e| Interval::new(s, e).unwrap();
        // u overlaps v, v contains w, w overlaps x.
        let good = [iv(0, 10), iv(5, 40), iv(12, 30), iv(20, 50)];
        assert!(q.satisfied_by(&good));
        let bad = [iv(0, 10), iv(5, 40), iv(12, 30), iv(45, 50)];
        assert!(!q.satisfied_by(&bad));
    }

    #[test]
    fn vertices_and_join_attrs() {
        let q = q0();
        assert_eq!(q.vertices().len(), 4);
        assert_eq!(q.join_attrs_of(RelId(1)), vec![0]);
    }
}
