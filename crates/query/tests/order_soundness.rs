//! Property test: the start-order closure is *sound* — whenever it proves
//! `s_a <= s_b` (or strictly `<`), every satisfying assignment actually
//! orders the start points that way. Soundness is what makes the
//! inconsistent-reducer pruning of the matrix algorithms safe; an unsound
//! closure would silently drop join outputs.

use ij_interval::{AllenPredicate, Interval};
use ij_query::{AttrRef, JoinQuery};
use proptest::prelude::*;

fn iv_strategy() -> impl Strategy<Value = Interval> {
    (0i64..12, 0i64..8).prop_map(|(s, l)| Interval::new(s, s + l).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Chains of two conditions over three relations: whenever the closure
    /// claims an order between any pair of relations, a satisfying
    /// assignment must respect it. The chain's predicates are *derived*
    /// from the intervals (via `relate`), so every generated case is a
    /// satisfying assignment and the predicate space is covered naturally.
    #[test]
    fn closure_sound_on_three_relation_chains(
        ivs in proptest::array::uniform3(iv_strategy()),
    ) {
        let p1 = AllenPredicate::relate(ivs[0], ivs[1]);
        let p2 = AllenPredicate::relate(ivs[1], ivs[2]);
        let q = JoinQuery::chain(&[p1, p2]).unwrap();
        debug_assert!(q.satisfied_by(&ivs));
        let order = q.start_order();
        prop_assert!(!order.contradictory(), "satisfiable query proved contradictory");
        for a in 0..3u16 {
            for b in 0..3u16 {
                if a == b {
                    continue;
                }
                let (va, vb) = (AttrRef::whole(a), AttrRef::whole(b));
                if order.le_start(va, vb) {
                    prop_assert!(
                        ivs[a as usize].start() <= ivs[b as usize].start(),
                        "closure claims s{a} <= s{b} but {} > {} under {q}",
                        ivs[a as usize], ivs[b as usize],
                    );
                }
                if order.lt_start(va, vb) {
                    prop_assert!(
                        ivs[a as usize].start() < ivs[b as usize].start(),
                        "closure claims s{a} < s{b} strictly under {q}",
                    );
                }
            }
        }
    }

    /// Component-level constraints: when `component_constraints` emits
    /// (j, k), the right-most start of component j's members is <= that of
    /// component k's in every satisfying assignment.
    #[test]
    fn component_constraints_sound(
        ivs in proptest::array::uniform4(iv_strategy()),
    ) {
        let p1 = AllenPredicate::relate(ivs[0], ivs[1]);
        let p2 = AllenPredicate::relate(ivs[1], ivs[2]);
        let p3 = AllenPredicate::relate(ivs[2], ivs[3]);
        let q = JoinQuery::chain(&[p1, p2, p3]).unwrap();
        debug_assert!(q.satisfied_by(&ivs));
        let comps = q.components();
        let order = q.start_order();
        for (j, k) in order.component_constraints(&comps) {
            let max_start = |cid: usize| {
                comps.components[cid]
                    .vertices
                    .iter()
                    .map(|v| ivs[v.rel.idx()].start())
                    .max()
                    .unwrap()
            };
            prop_assert!(
                max_start(j) <= max_start(k),
                "constraint ({j},{k}) violated under {q}: {:?}",
                ivs
            );
        }
    }
}

/// Deterministic exhaustive variant on a tiny domain, so the property is
/// also checked without proptest's sampling (chains of every predicate
/// pair over all interval triples with endpoints in 0..=4).
#[test]
fn closure_sound_exhaustive_small_domain() {
    let mut ivs = Vec::new();
    for s in 0..=4i64 {
        for e in s..=4 {
            ivs.push(Interval::new(s, e).unwrap());
        }
    }
    for p1 in AllenPredicate::ALL {
        for p2 in AllenPredicate::ALL {
            let q = JoinQuery::chain(&[p1, p2]).unwrap();
            let order = q.start_order();
            for &a in &ivs {
                for &b in &ivs {
                    if !p1.holds(a, b) {
                        continue;
                    }
                    for &c in &ivs {
                        if !p2.holds(b, c) {
                            continue;
                        }
                        let trio = [a, b, c];
                        for x in 0..3u16 {
                            for y in 0..3u16 {
                                if x != y && order.le_start(AttrRef::whole(x), AttrRef::whole(y)) {
                                    assert!(
                                        trio[x as usize].start() <= trio[y as usize].start(),
                                        "{q}: s{x} <= s{y} violated by {a} {b} {c}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
